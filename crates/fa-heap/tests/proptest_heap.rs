//! Property-based tests: the allocator must preserve its structural
//! invariants and user data under arbitrary interleavings of malloc, free,
//! and realloc, with and without placement randomization.

use proptest::prelude::*;

use fa_heap::{Heap, HeapError, ALIGN};
use fa_mem::{Addr, SimMemory};

/// A scripted allocator operation.
#[derive(Clone, Debug)]
enum Op {
    Malloc(u16),
    /// Frees the i-th (mod len) live allocation.
    Free(u8),
    /// Reallocs the i-th (mod len) live allocation to a new size.
    Realloc(u8, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u16..2048).prop_map(Op::Malloc),
        2 => any::<u8>().prop_map(Op::Free),
        1 => (any::<u8>(), 1u16..2048).prop_map(|(i, s)| Op::Realloc(i, s)),
    ]
}

/// Runs a script against a fresh heap, checking data integrity for every
/// live object and structural integrity periodically.
fn run_script(ops: &[Op], seed: Option<u64>) {
    let mut mem = SimMemory::new();
    let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
    if let Some(seed) = seed {
        heap.randomize(seed);
    }
    // live: (user addr, fill byte, len)
    let mut live: Vec<(Addr, u8, u64)> = Vec::new();
    let mut stamp = 0u8;

    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Malloc(req) => {
                let req = u64::from(*req);
                let p = heap.malloc(&mut mem, req).expect("malloc");
                assert!(p.is_aligned(ALIGN));
                stamp = stamp.wrapping_add(1).max(1);
                mem.fill(p, req, stamp).unwrap();
                live.push((p, stamp, req));
            }
            Op::Free(idx) => {
                if live.is_empty() {
                    continue;
                }
                let (p, _, _) = live.swap_remove(*idx as usize % live.len());
                heap.free(&mut mem, p).expect("free of live object");
            }
            Op::Realloc(idx, req) => {
                if live.is_empty() {
                    continue;
                }
                let slot = *idx as usize % live.len();
                let (p, fill, old_len) = live[slot];
                let req = u64::from(*req);
                let q = heap.realloc(&mut mem, p, req).expect("realloc");
                let kept = old_len.min(req);
                let data = mem.read_bytes(q, kept).unwrap();
                assert!(
                    data.iter().all(|&b| b == fill),
                    "realloc must preserve prefix contents"
                );
                stamp = stamp.wrapping_add(1).max(1);
                mem.fill(q, req, stamp).unwrap();
                live[slot] = (q, stamp, req);
            }
        }
        // Every live object must still hold its fill pattern (no overlap,
        // no allocator scribbling into user data).
        for &(p, fill, len) in &live {
            let data = mem.read_bytes(p, len).unwrap();
            assert!(
                data.iter().all(|&b| b == fill),
                "object at {p} corrupted after op {i}"
            );
        }
        if i % 16 == 15 {
            heap.check_integrity(&mut mem).unwrap();
        }
    }
    for (p, _, _) in live {
        heap.free(&mut mem, p).unwrap();
    }
    heap.check_integrity(&mut mem).unwrap();
    let chunks = heap.walk(&mut mem).unwrap();
    assert_eq!(chunks.len(), 1, "full free must coalesce into a single top");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_script(&ops, None);
    }

    #[test]
    fn heap_invariants_hold_randomized(
        ops in prop::collection::vec(op_strategy(), 1..120),
        seed in any::<u64>(),
    ) {
        run_script(&ops, Some(seed));
    }

    #[test]
    fn usable_size_covers_request(req in 1u64..4096) {
        let mut mem = SimMemory::new();
        let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        let p = heap.malloc(&mut mem, req).unwrap();
        let usable = heap.usable_size(&mut mem, p).unwrap();
        prop_assert!(usable >= req);
        // Writing the full usable size must not corrupt the heap.
        mem.fill(p, usable, 0xcd).unwrap();
        heap.check_integrity(&mut mem).unwrap();
        heap.free(&mut mem, p).unwrap();
    }

    #[test]
    fn one_byte_overflow_is_eventually_detected(
        req in 1u64..512,
        garbage in any::<u8>(),
    ) {
        // Writing past usable size either corrupts the next boundary tag
        // (detected on the next touching operation) — it must never be
        // silently absorbed into a *live* neighbour's data when the
        // neighbour is the top chunk.
        let mut mem = SimMemory::new();
        let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        let p = heap.malloc(&mut mem, req).unwrap();
        let usable = heap.usable_size(&mut mem, p).unwrap();
        // Overflow the full 16-byte header of the next chunk.
        mem.write(p.offset(usable), &[garbage; 16]).unwrap();
        let r = heap.malloc(&mut mem, 64);
        // Either detected now (top header corrupted) or the write happened
        // to be value-preserving (only possible if garbage bytes encode the
        // same header, which the check below tolerates).
        if let Err(e) = r {
            let corrupt = matches!(e, HeapError::CorruptChunk { .. });
            prop_assert!(corrupt);
        }
    }

    #[test]
    fn snapshot_rollback_restores_heap(
        ops in prop::collection::vec(op_strategy(), 1..60),
        cut in 0usize..60,
    ) {
        // Execute a prefix, snapshot, execute the rest, roll back: the heap
        // must behave identically to never having run the suffix.
        let mut mem = SimMemory::new();
        let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        let mut live: Vec<Addr> = Vec::new();
        let cut = cut.min(ops.len());
        for op in &ops[..cut] {
            match op {
                Op::Malloc(r) => live.push(heap.malloc(&mut mem, u64::from(*r)).unwrap()),
                Op::Free(i) => {
                    if !live.is_empty() {
                        let p = live.swap_remove(*i as usize % live.len());
                        heap.free(&mut mem, p).unwrap();
                    }
                }
                Op::Realloc(i, r) => {
                    if !live.is_empty() {
                        let slot = *i as usize % live.len();
                        live[slot] = heap.realloc(&mut mem, live[slot], u64::from(*r)).unwrap();
                    }
                }
            }
        }
        let snap_mem = mem.snapshot();
        let snap_heap = heap.clone();
        let live_at_snap = live.clone();
        for op in &ops[cut..] {
            match op {
                Op::Malloc(r) => live.push(heap.malloc(&mut mem, u64::from(*r)).unwrap()),
                Op::Free(i) => {
                    if !live.is_empty() {
                        let p = live.swap_remove(*i as usize % live.len());
                        heap.free(&mut mem, p).unwrap();
                    }
                }
                Op::Realloc(i, r) => {
                    if !live.is_empty() {
                        let slot = *i as usize % live.len();
                        live[slot] = heap.realloc(&mut mem, live[slot], u64::from(*r)).unwrap();
                    }
                }
            }
        }
        mem.restore(&snap_mem);
        let mut heap = snap_heap;
        heap.check_integrity(&mut mem).unwrap();
        // All objects live at the snapshot free cleanly after rollback.
        for p in live_at_snap {
            heap.free(&mut mem, p).unwrap();
        }
        heap.check_integrity(&mut mem).unwrap();
    }
}
