//! A Lea-style (dlmalloc-like) heap allocator operating **inside**
//! [`fa_mem::SimMemory`].
//!
//! The paper's First-Aid implementation extends the Lea allocator — the
//! default allocator of the GNU C library circa 2009 (paper §7.1). Its
//! diagnosis machinery depends on allocator *realism*: buffer overflows
//! corrupt the next chunk's boundary tags, dangling writes corrupt whatever
//! object reused a freed chunk, double frees trip the allocator's own
//! integrity checks, and heap-layout disturbance can mask failures
//! (paper Fig. 3). This crate reproduces those behaviours faithfully:
//!
//! * chunk metadata (boundary tags: `prev_size`, `size | flags`) lives
//!   **in-band**, inside the simulated memory, directly before each user
//!   area, where overflowing application writes can and do corrupt it;
//! * free chunks are binned by size with best-fit selection, split on
//!   allocation and coalesced with free neighbours on deallocation;
//! * the heap ends in a *top* chunk grown with `sbrk`-style region
//!   extension;
//! * every malloc/free validates the boundary tags it touches and reports
//!   [`HeapError::CorruptChunk`] / [`HeapError::InvalidFree`] — the analog
//!   of glibc's `malloc(): corrupted size vs. prev_size` aborts that killed
//!   Squid, BC, and CVS in the paper's experiments;
//! * an optional seeded randomization mode perturbs placement, used by
//!   First-Aid's validation engine (paper §5) to check that a runtime
//!   patch's effect is consistent under memory-layout randomization.
//!
//! The free-chunk *index* (the bins) is kept out-of-band in host memory for
//! simplicity; the boundary tags that matter for bug manifestation are
//! in-band. Freeing clobbers the first 16 bytes of the user area with a
//! free-list cookie, like dlmalloc's `fd`/`bk` pointers, so dangling reads
//! of freshly freed data observe garbage.
//!
//! # Examples
//!
//! ```
//! use fa_mem::{Addr, SimMemory};
//! use fa_heap::Heap;
//!
//! let mut mem = SimMemory::new();
//! let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 30).unwrap();
//! let p = heap.malloc(&mut mem, 100).unwrap();
//! mem.write(p, b"hello").unwrap();
//! heap.free(&mut mem, p).unwrap();
//! ```

pub mod chunk;
pub mod error;
pub mod heap;
pub mod walk;

pub use chunk::{ChunkHeader, ALIGN, HDR_SIZE, MIN_CHUNK};
pub use error::{CorruptKind, HeapError, InvalidFreeKind};
pub use heap::{Heap, HeapConfig, HeapStats};
pub use walk::ChunkInfo;
