//! In-band chunk headers (boundary tags).
//!
//! Every chunk starts with a 16-byte header stored in simulated memory:
//!
//! ```text
//!  chunk addr ──►  ┌──────────────────────────┐
//!                  │ prev_size         (u64)  │   size of the previous
//!                  ├──────────────────────────┤   chunk in bytes
//!                  │ size | flags      (u64)  │   total chunk size + flags
//!  user addr  ──►  ├──────────────────────────┤
//!                  │ user data ...            │
//!                  └──────────────────────────┘
//! ```
//!
//! Flag bit 0 (`THIS_INUSE`) marks the chunk allocated; flag bit 1
//! (`PREV_INUSE`) marks the previous chunk allocated (so coalescing knows
//! whether `prev_size` leads to a free chunk). An application write that
//! runs past the end of its object lands on the *next* chunk's header and
//! corrupts these fields — which is exactly how real-world overflow bugs
//! (Squid, Pine, Mutt, BC in the paper) turn into allocator aborts.

use fa_mem::{Addr, MemFault, SimMemory};

/// Allocation alignment and granularity in bytes.
pub const ALIGN: u64 = 16;

/// Size of the in-band chunk header in bytes.
pub const HDR_SIZE: u64 = 16;

/// Minimum total chunk size (header + smallest user area).
pub const MIN_CHUNK: u64 = 32;

/// Flag bit: this chunk is allocated.
pub const THIS_INUSE: u64 = 0x1;

/// Flag bit: the chunk physically before this one is allocated.
pub const PREV_INUSE: u64 = 0x2;

const FLAG_MASK: u64 = THIS_INUSE | PREV_INUSE;

/// A decoded chunk header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChunkHeader {
    /// Size of the physically preceding chunk in bytes.
    pub prev_size: u64,
    /// Total size of this chunk (header included) in bytes.
    pub size: u64,
    /// This chunk is allocated.
    pub in_use: bool,
    /// The preceding chunk is allocated.
    pub prev_in_use: bool,
}

impl ChunkHeader {
    /// Reads and decodes the header of the chunk starting at `chunk`.
    pub fn read(mem: &mut SimMemory, chunk: Addr) -> Result<ChunkHeader, MemFault> {
        let prev_size = mem.read_u64(chunk)?;
        let raw = mem.read_u64(chunk.offset(8))?;
        Ok(ChunkHeader {
            prev_size,
            size: raw & !FLAG_MASK,
            in_use: raw & THIS_INUSE != 0,
            prev_in_use: raw & PREV_INUSE != 0,
        })
    }

    /// Encodes and writes this header at `chunk`.
    pub fn write(&self, mem: &mut SimMemory, chunk: Addr) -> Result<(), MemFault> {
        let mut raw = self.size;
        if self.in_use {
            raw |= THIS_INUSE;
        }
        if self.prev_in_use {
            raw |= PREV_INUSE;
        }
        mem.write_u64(chunk, self.prev_size)?;
        mem.write_u64(chunk.offset(8), raw)
    }

    /// Returns the user-data address of the chunk at `chunk`.
    #[inline]
    pub fn user_of(chunk: Addr) -> Addr {
        chunk.offset(HDR_SIZE)
    }

    /// Returns the chunk address owning the user pointer `user`.
    #[inline]
    pub fn chunk_of(user: Addr) -> Addr {
        user.back(HDR_SIZE)
    }

    /// Returns the usable user-area size of a chunk of total size `size`.
    #[inline]
    pub fn usable(size: u64) -> u64 {
        size - HDR_SIZE
    }
}

/// Rounds a user request up to a legal total chunk size.
#[inline]
pub fn request_to_chunk_size(req: u64) -> u64 {
    let user = req.max(ALIGN).div_ceil(ALIGN) * ALIGN;
    user + HDR_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with_heap() -> SimMemory {
        let mut mem = SimMemory::new();
        mem.map(Addr(0x1000), 1 << 16, "heap").unwrap();
        mem
    }

    #[test]
    fn header_roundtrip() {
        let mut mem = mem_with_heap();
        let hdr = ChunkHeader {
            prev_size: 128,
            size: 64,
            in_use: true,
            prev_in_use: false,
        };
        hdr.write(&mut mem, Addr(0x1000)).unwrap();
        assert_eq!(ChunkHeader::read(&mut mem, Addr(0x1000)).unwrap(), hdr);
    }

    #[test]
    fn flags_do_not_leak_into_size() {
        let mut mem = mem_with_heap();
        let hdr = ChunkHeader {
            prev_size: 0,
            size: 48,
            in_use: true,
            prev_in_use: true,
        };
        hdr.write(&mut mem, Addr(0x1000)).unwrap();
        let back = ChunkHeader::read(&mut mem, Addr(0x1000)).unwrap();
        assert_eq!(back.size, 48);
        assert!(back.in_use && back.prev_in_use);
    }

    #[test]
    fn user_chunk_conversions() {
        let chunk = Addr(0x2000);
        assert_eq!(ChunkHeader::user_of(chunk), Addr(0x2010));
        assert_eq!(ChunkHeader::chunk_of(Addr(0x2010)), chunk);
        assert_eq!(ChunkHeader::usable(64), 48);
    }

    #[test]
    fn request_rounding() {
        assert_eq!(request_to_chunk_size(0), 16 + 16);
        assert_eq!(request_to_chunk_size(1), 32);
        assert_eq!(request_to_chunk_size(16), 32);
        assert_eq!(request_to_chunk_size(17), 48);
        assert_eq!(request_to_chunk_size(100), 112 + 16);
    }
}
