//! The allocator proper: best-fit binned allocation, splitting, coalescing,
//! `sbrk`-style growth, and integrity checks.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use fa_mem::{Addr, Perms, RegionId, SimMemory, PAGE_SIZE};

use crate::chunk::{request_to_chunk_size, ChunkHeader, ALIGN, HDR_SIZE, MIN_CHUNK};
use crate::error::{CorruptKind, HeapError, InvalidFreeKind};

/// Free-list cookie written over the first user bytes of a freed chunk,
/// like dlmalloc's `fd`/`bk` pointers. Dangling reads of freshly freed
/// memory observe this garbage instead of the old contents.
const FREE_COOKIE: u64 = 0xfeed_face_cafe_beef;

/// Bytes of free-list cookie at the start of a freed chunk's user area
/// (two `u64`s, see [`FREE_COOKIE`]). Freed-page poisoning must spare
/// them alongside the header.
const COOKIE_SPAN: u64 = 16;

/// Tuning knobs for a [`Heap`].
#[derive(Clone, Debug)]
pub struct HeapConfig {
    /// Initial mapped size in bytes.
    pub initial: u64,
    /// Granularity of `sbrk` growth in bytes.
    pub grow_granularity: u64,
    /// Maximum heap size in bytes; growth beyond this reports
    /// [`HeapError::OutOfMemory`].
    pub limit: u64,
    /// Flip pages of binned free chunks to [`Perms::POISONED`] so
    /// dangling accesses trap ([`fa_mem::MemFault::GuardTrap`]) instead
    /// of silently reading stale contents — an "electric fence" on the
    /// ordinary heap, complementing the sentry arena. Only pages lying
    /// fully inside a chunk's interior (past the boundary tag and the
    /// free-list cookies) are flipped, so allocator metadata stays
    /// accessible; small chunks therefore contribute nothing. Off by
    /// default: production and diagnosis runs expect freed memory to
    /// stay readable (quarantine scans, heap marking).
    pub poison_freed_pages: bool,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            initial: 64 * 1024,
            grow_granularity: 64 * 1024,
            limit: 1 << 30,
            poison_freed_pages: false,
        }
    }
}

/// Aggregate allocator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Current heap extent (`brk - base`) in bytes.
    pub heap_bytes: u64,
    /// Sum of user-visible bytes in live chunks.
    pub in_use_user_bytes: u64,
    /// Number of live chunks.
    pub in_use_chunks: u64,
    /// Total successful `malloc` calls.
    pub allocs: u64,
    /// Total successful `free` calls.
    pub frees: u64,
}

/// A Lea-style best-fit allocator over a region of simulated memory.
///
/// The heap is a contiguous run of chunks from `base` to the break; the
/// final chunk is the *top*, grown on demand. Free chunks (except the top)
/// are indexed by size in best-fit bins. All boundary tags live in-band
/// and are validated on every operation — corruption caused by application
/// bugs surfaces as [`HeapError`]s, which the First-Aid error monitor
/// treats as failures.
///
/// The host-side state (`bins`, `top`, stats) is `Clone`, so a heap can be
/// checkpointed alongside a [`fa_mem::MemSnapshot`] and rolled back.
#[derive(Clone)]
pub struct Heap {
    base: Addr,
    brk: Addr,
    region: RegionId,
    config: HeapConfig,
    /// Address of the top chunk; spans `[top, brk)`.
    top: Addr,
    /// Free chunks (excluding top): total size → chunk addresses.
    bins: BTreeMap<u64, BTreeSet<u64>>,
    /// Placement randomization for validation mode (paper §5).
    rng: Option<SmallRng>,
    /// Sampling hook on the alloc fast path (sentry tier).
    sentry: Option<SentryHook>,
    stats: HeapStats,
}

/// Seeded countdown deciding which allocations the sentry tier samples
/// (GWP-ASan style): the next sample is `U[1, 2·rate)` allocations away,
/// so the long-run frequency is `1/rate` without a fixed stride an
/// allocation pattern could alias against. The state is a splitmix64
/// stream, so cloning the heap (checkpointing) clones the exact decision
/// sequence — replay determinism.
#[derive(Clone, Debug)]
struct SentryHook {
    rate: u32,
    state: u64,
    countdown: u32,
}

impl SentryHook {
    fn next_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_interval(state: &mut u64, rate: u32) -> u32 {
        let span = (2 * rate.max(1) as u64).saturating_sub(1).max(1);
        1 + (Self::next_u64(state) % span) as u32
    }

    fn new(rate: u32, seed: u64) -> SentryHook {
        let mut state = seed ^ 0x5e17_a1d5_e17a_1d05;
        let countdown = Self::next_interval(&mut state, rate);
        SentryHook {
            rate,
            state,
            countdown,
        }
    }

    fn tick(&mut self) -> bool {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = Self::next_interval(&mut self.state, self.rate);
            true
        } else {
            false
        }
    }
}

impl Heap {
    /// Creates a heap at `base` with the default configuration and the
    /// given size `limit`.
    pub fn new(mem: &mut SimMemory, base: Addr, limit: u64) -> Result<Heap, HeapError> {
        let config = HeapConfig {
            limit,
            ..HeapConfig::default()
        };
        Heap::with_config(mem, base, config)
    }

    /// Creates a heap at `base` with an explicit configuration.
    pub fn with_config(
        mem: &mut SimMemory,
        base: Addr,
        config: HeapConfig,
    ) -> Result<Heap, HeapError> {
        assert!(base.is_aligned(ALIGN), "heap base must be 16-byte aligned");
        assert!(config.initial >= MIN_CHUNK + HDR_SIZE);
        let region = mem.map(base, config.initial, "heap")?;
        let brk = base.offset(config.initial);
        ChunkHeader {
            prev_size: 0,
            size: config.initial,
            in_use: false,
            // There is no previous chunk; claiming it is in use stops
            // coalescing from walking off the heap start.
            prev_in_use: true,
        }
        .write(mem, base)?;
        Ok(Heap {
            base,
            brk,
            region,
            top: base,
            bins: BTreeMap::new(),
            rng: None,
            sentry: None,
            stats: HeapStats {
                heap_bytes: config.initial,
                ..HeapStats::default()
            },
            config,
        })
    }

    /// Enables seeded placement randomization (validation mode).
    ///
    /// Randomization adds small amounts of slack to requests and sometimes
    /// prefers a larger bin over the best fit, so object addresses differ
    /// between re-executions with different seeds while allocator behaviour
    /// stays legal. First-Aid's validation engine uses this to confirm a
    /// runtime patch's effect is layout-independent.
    pub fn randomize(&mut self, seed: u64) {
        self.rng = Some(SmallRng::seed_from_u64(seed));
    }

    /// Disables placement randomization.
    pub fn derandomize(&mut self) {
        self.rng = None;
    }

    /// Arms the sentry sampling hook: roughly one in `rate` allocations
    /// reported through [`Heap::sentry_tick`] is selected, on a seeded
    /// deterministic schedule. `rate == 0` disarms the hook.
    pub fn set_sentry_rate(&mut self, rate: u32, seed: u64) {
        self.sentry = (rate > 0).then(|| SentryHook::new(rate, seed));
    }

    /// Fast-path sampling decision for one allocation: `true` if the
    /// sentry tier should redirect it into a guarded slot. Costs one
    /// decrement on the non-sampled path.
    pub fn sentry_tick(&mut self) -> bool {
        match &mut self.sentry {
            Some(hook) => hook.tick(),
            None => false,
        }
    }

    /// Returns the heap base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Returns the current break (end of the heap).
    pub fn brk(&self) -> Addr {
        self.brk
    }

    /// Returns the address of the top chunk header.
    pub fn top(&self) -> Addr {
        self.top
    }

    /// Returns a copy of the allocator statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Returns the addresses and sizes of all binned free chunks.
    pub fn free_chunks(&self) -> Vec<(Addr, u64)> {
        self.bins
            .iter()
            .flat_map(|(&size, set)| set.iter().map(move |&a| (Addr(a), size)))
            .collect()
    }

    /// Returns `true` if `addr` lies within the heap extent.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.brk
    }

    // ------------------------------------------------------------------
    // malloc
    // ------------------------------------------------------------------

    /// Allocates `req` bytes and returns the user pointer.
    pub fn malloc(&mut self, mem: &mut SimMemory, req: u64) -> Result<Addr, HeapError> {
        if req > self.config.limit {
            return Err(HeapError::OutOfMemory { requested: req });
        }
        let mut csize = request_to_chunk_size(req);
        if let Some(rng) = &mut self.rng {
            // Random slack keeps requests legal but shifts later layout.
            csize += u64::from(rng.random_range(0u32..4)) * ALIGN;
        }
        let user = match self.pick_bin(mem, csize) {
            Some((bin_size, chunk)) => self.alloc_from_bin(mem, chunk, bin_size, csize)?,
            None => self.alloc_from_top(mem, csize)?,
        };
        self.stats.allocs += 1;
        self.stats.in_use_chunks += 1;
        self.stats.in_use_user_bytes += ChunkHeader::usable(csize);
        Ok(user)
    }

    /// Allocates `req` bytes of zero-filled memory (`calloc` analog).
    ///
    /// Unlike plain [`Self::malloc`], the returned memory is always zero —
    /// reused chunks would otherwise expose stale contents, which is
    /// precisely the uninitialized-read hazard the paper patches with
    /// zero-filling.
    pub fn malloc_zeroed(&mut self, mem: &mut SimMemory, req: u64) -> Result<Addr, HeapError> {
        let user = self.malloc(mem, req)?;
        let usable = self.usable_size(mem, user)?;
        mem.fill(user, usable, 0)?;
        Ok(user)
    }

    /// Picks the best-fit bin chunk for `csize`, honouring randomization.
    fn pick_bin(&mut self, mem: &mut SimMemory, csize: u64) -> Option<(u64, u64)> {
        let skip = match &mut self.rng {
            Some(rng) => rng.random_range(0u32..3) as usize,
            None => 0,
        };
        let candidates: Vec<u64> = self
            .bins
            .range(csize..)
            .take(skip + 1)
            .map(|(&s, _)| s)
            .collect();
        let &bin_size = candidates.get(skip).or_else(|| candidates.first())?;
        let set = self.bins.get_mut(&bin_size)?;
        let &chunk = set.iter().next()?;
        set.remove(&chunk);
        if set.is_empty() {
            self.bins.remove(&bin_size);
        }
        self.set_binned_poison(mem, Addr(chunk), bin_size, false);
        Some((bin_size, chunk))
    }

    fn alloc_from_bin(
        &mut self,
        mem: &mut SimMemory,
        chunk: u64,
        bin_size: u64,
        csize: u64,
    ) -> Result<Addr, HeapError> {
        let chunk = Addr(chunk);
        let hdr = ChunkHeader::read(mem, chunk)?;
        if hdr.in_use || hdr.size != bin_size {
            return Err(HeapError::CorruptChunk {
                chunk,
                kind: CorruptKind::BinInconsistency,
            });
        }
        if chunk.0 + bin_size > self.brk.0 {
            return Err(HeapError::CorruptChunk {
                chunk,
                kind: CorruptKind::OutOfHeap,
            });
        }
        let next = chunk.offset(bin_size);
        if bin_size - csize >= MIN_CHUNK {
            // Split: allocate the front, bin the remainder.
            let rem_size = bin_size - csize;
            let rem = chunk.offset(csize);
            ChunkHeader {
                prev_size: hdr.prev_size,
                size: csize,
                in_use: true,
                prev_in_use: hdr.prev_in_use,
            }
            .write(mem, chunk)?;
            ChunkHeader {
                prev_size: csize,
                size: rem_size,
                in_use: false,
                prev_in_use: true,
            }
            .write(mem, rem)?;
            let mut next_hdr = ChunkHeader::read(mem, next)?;
            next_hdr.prev_size = rem_size;
            next_hdr.prev_in_use = false;
            next_hdr.write(mem, next)?;
            self.bins.entry(rem_size).or_default().insert(rem.0);
            self.set_binned_poison(mem, rem, rem_size, true);
        } else {
            ChunkHeader {
                in_use: true,
                ..hdr
            }
            .write(mem, chunk)?;
            let mut next_hdr = ChunkHeader::read(mem, next)?;
            next_hdr.prev_in_use = true;
            next_hdr.write(mem, next)?;
        }
        Ok(ChunkHeader::user_of(chunk))
    }

    fn alloc_from_top(&mut self, mem: &mut SimMemory, csize: u64) -> Result<Addr, HeapError> {
        let top_size = self.brk - self.top;
        // Validate the top header before trusting it; an overflow from the
        // last allocated chunk lands exactly here.
        let top_hdr = ChunkHeader::read(mem, self.top)?;
        if top_hdr.in_use || top_hdr.size != top_size {
            return Err(HeapError::CorruptChunk {
                chunk: self.top,
                kind: CorruptKind::BoundaryTagMismatch,
            });
        }
        // Placement randomization: occasionally leave a small free gap
        // chunk before the allocation, so object *addresses* differ
        // between seeds even for identical request sequences. This is
        // what lets the validation engine detect layout-dependent
        // (semantic) bugs masquerading as memory bugs (paper §5).
        #[allow(clippy::collapsible_match)]
        let gap = match &mut self.rng {
            Some(rng) => {
                if rng.random_bool(0.5) {
                    MIN_CHUNK * u64::from(rng.random_range(1u32..4))
                } else {
                    0
                }
            }
            None => 0,
        };
        let need = csize + gap + MIN_CHUNK;
        if top_size < need {
            let grow = (need - top_size).div_ceil(self.config.grow_granularity)
                * self.config.grow_granularity;
            let new_brk = self.brk.offset(grow);
            if new_brk - self.base > self.config.limit {
                return Err(HeapError::OutOfMemory { requested: csize });
            }
            mem.grow_region(self.region, new_brk)?;
            self.brk = new_brk;
            self.stats.heap_bytes = self.brk - self.base;
        }
        let mut chunk = self.top;
        let mut prev_size = top_hdr.prev_size;
        let mut prev_in_use = top_hdr.prev_in_use;
        if gap > 0 {
            // The gap stays behind as a small binned free chunk.
            ChunkHeader {
                prev_size,
                size: gap,
                in_use: false,
                prev_in_use,
            }
            .write(mem, chunk)?;
            self.bins.entry(gap).or_default().insert(chunk.0);
            self.set_binned_poison(mem, chunk, gap, true);
            chunk = chunk.offset(gap);
            prev_size = gap;
            prev_in_use = false;
        }
        ChunkHeader {
            prev_size,
            size: csize,
            in_use: true,
            prev_in_use,
        }
        .write(mem, chunk)?;
        let new_top = chunk.offset(csize);
        ChunkHeader {
            prev_size: csize,
            size: self.brk - new_top,
            in_use: false,
            prev_in_use: true,
        }
        .write(mem, new_top)?;
        self.top = new_top;
        Ok(ChunkHeader::user_of(chunk))
    }

    // ------------------------------------------------------------------
    // free
    // ------------------------------------------------------------------

    /// Frees the chunk owning the user pointer `user`.
    pub fn free(&mut self, mem: &mut SimMemory, user: Addr) -> Result<(), HeapError> {
        if !user.is_aligned(ALIGN) || user.0 < self.base.0 + HDR_SIZE || user >= self.brk {
            return Err(HeapError::InvalidFree {
                addr: user,
                kind: InvalidFreeKind::WildPointer,
            });
        }
        let chunk = ChunkHeader::chunk_of(user);
        let hdr = self.validated_header(mem, chunk)?;
        if !hdr.in_use {
            return Err(HeapError::InvalidFree {
                addr: user,
                kind: InvalidFreeKind::DoubleFree,
            });
        }
        let next = chunk.offset(hdr.size);
        let next_hdr = ChunkHeader::read(mem, next)?;
        if next_hdr.prev_size != hdr.size || !next_hdr.prev_in_use {
            return Err(HeapError::CorruptChunk {
                chunk,
                kind: CorruptKind::BoundaryTagMismatch,
            });
        }

        let mut start = chunk;
        let mut size = hdr.size;
        let mut prev_in_use = hdr.prev_in_use;
        let mut prev_size = hdr.prev_size;

        // Coalesce with the previous chunk if it is free.
        if !hdr.prev_in_use {
            let prev = chunk.back(hdr.prev_size);
            if prev < self.base {
                return Err(HeapError::CorruptChunk {
                    chunk,
                    kind: CorruptKind::BadSize,
                });
            }
            let prev_hdr = ChunkHeader::read(mem, prev)?;
            if prev_hdr.in_use || prev_hdr.size != hdr.prev_size {
                return Err(HeapError::CorruptChunk {
                    chunk: prev,
                    kind: CorruptKind::BoundaryTagMismatch,
                });
            }
            if !self.unbin(mem, prev, prev_hdr.size) {
                return Err(HeapError::CorruptChunk {
                    chunk: prev,
                    kind: CorruptKind::BinInconsistency,
                });
            }
            start = prev;
            size += prev_hdr.size;
            prev_in_use = prev_hdr.prev_in_use;
            prev_size = prev_hdr.prev_size;
        }

        self.stats.frees += 1;
        self.stats.in_use_chunks = self.stats.in_use_chunks.saturating_sub(1);
        self.stats.in_use_user_bytes = self
            .stats
            .in_use_user_bytes
            .saturating_sub(ChunkHeader::usable(hdr.size));

        if next == self.top {
            // Merge into the top chunk.
            self.top = start;
            ChunkHeader {
                prev_size,
                size: self.brk - start,
                in_use: false,
                prev_in_use,
            }
            .write(mem, start)?;
            self.clobber_freed(mem, start)?;
            return Ok(());
        }

        let mut merged_next = next;
        if !next_hdr.in_use {
            // Coalesce with the following free chunk.
            if !self.unbin(mem, next, next_hdr.size) {
                return Err(HeapError::CorruptChunk {
                    chunk: next,
                    kind: CorruptKind::BinInconsistency,
                });
            }
            size += next_hdr.size;
            merged_next = next.offset(next_hdr.size);
        }
        ChunkHeader {
            prev_size,
            size,
            in_use: false,
            prev_in_use,
        }
        .write(mem, start)?;
        let mut after = ChunkHeader::read(mem, merged_next)?;
        after.prev_size = size;
        after.prev_in_use = false;
        after.write(mem, merged_next)?;
        self.bins.entry(size).or_default().insert(start.0);
        self.clobber_freed(mem, start)?;
        self.set_binned_poison(mem, start, size, true);
        Ok(())
    }

    /// Writes the free-list cookie over the first user bytes of a freed
    /// chunk, mimicking dlmalloc's in-band `fd`/`bk` pointers.
    fn clobber_freed(&self, mem: &mut SimMemory, chunk: Addr) -> Result<(), HeapError> {
        let user = ChunkHeader::user_of(chunk);
        mem.write_u64(user, FREE_COOKIE ^ chunk.0)?;
        mem.write_u64(user.offset(8), FREE_COOKIE.rotate_left(17) ^ chunk.0)?;
        Ok(())
    }

    fn unbin(&mut self, mem: &mut SimMemory, chunk: Addr, size: u64) -> bool {
        match self.bins.get_mut(&size) {
            Some(set) => {
                let present = set.remove(&chunk.0);
                if set.is_empty() {
                    self.bins.remove(&size);
                }
                if present {
                    self.set_binned_poison(mem, chunk, size, false);
                }
                present
            }
            None => false,
        }
    }

    /// Returns the pages lying fully inside the poisonable interior of a
    /// free chunk — past the header and free-list cookies, up to (and
    /// excluding the page straddling) the chunk end — as a byte range.
    fn poison_span(chunk: Addr, size: u64) -> Option<(Addr, u64)> {
        let page = PAGE_SIZE as u64;
        let lo = (ChunkHeader::user_of(chunk).0 + COOKIE_SPAN).next_multiple_of(page);
        let hi = (chunk.0 + size) / page * page;
        (lo < hi).then(|| (Addr(lo), hi - lo))
    }

    /// Flips (or restores) the permission bits of a binned chunk's
    /// interior pages, when [`HeapConfig::poison_freed_pages`] is on.
    /// Pure permission flips: no page data is touched, so the chunk's
    /// boundary tags and cookies survive the round trip.
    fn set_binned_poison(&self, mem: &mut SimMemory, chunk: Addr, size: u64, poison: bool) {
        if !self.config.poison_freed_pages {
            return;
        }
        if let Some((start, len)) = Self::poison_span(chunk, size) {
            let perms = if poison { Perms::POISONED } else { Perms::RW };
            mem.protect(start, len, perms)
                .expect("binned chunk pages are mapped");
        }
    }

    fn validated_header(&self, mem: &mut SimMemory, chunk: Addr) -> Result<ChunkHeader, HeapError> {
        let hdr = ChunkHeader::read(mem, chunk)?;
        if hdr.size < MIN_CHUNK || hdr.size % ALIGN != 0 {
            return Err(HeapError::CorruptChunk {
                chunk,
                kind: CorruptKind::BadSize,
            });
        }
        if chunk.0 + hdr.size > self.brk.0 {
            return Err(HeapError::CorruptChunk {
                chunk,
                kind: CorruptKind::OutOfHeap,
            });
        }
        Ok(hdr)
    }

    // ------------------------------------------------------------------
    // realloc / introspection
    // ------------------------------------------------------------------

    /// Resizes an allocation, moving it if necessary (`realloc` analog).
    pub fn realloc(
        &mut self,
        mem: &mut SimMemory,
        user: Addr,
        new_req: u64,
    ) -> Result<Addr, HeapError> {
        let chunk = ChunkHeader::chunk_of(user);
        let hdr = self.validated_header(mem, chunk)?;
        if !hdr.in_use {
            return Err(HeapError::InvalidFree {
                addr: user,
                kind: InvalidFreeKind::DoubleFree,
            });
        }
        if request_to_chunk_size(new_req) <= hdr.size {
            return Ok(user);
        }
        let new_user = self.malloc(mem, new_req)?;
        let old_usable = ChunkHeader::usable(hdr.size);
        mem.copy(new_user, user, old_usable.min(new_req))?;
        self.free(mem, user)?;
        Ok(new_user)
    }

    /// Returns the usable size of a live allocation.
    pub fn usable_size(&self, mem: &mut SimMemory, user: Addr) -> Result<u64, HeapError> {
        let chunk = ChunkHeader::chunk_of(user);
        let hdr = self.validated_header(mem, chunk)?;
        Ok(ChunkHeader::usable(hdr.size))
    }

    /// Returns the region id backing this heap.
    pub fn region(&self) -> RegionId {
        self.region
    }
}

#[cfg(test)]
mod sentry_tests {
    use super::*;

    fn heap() -> (SimMemory, Heap) {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        (mem, heap)
    }

    #[test]
    fn disarmed_hook_never_samples() {
        let (_mem, mut h) = heap();
        assert!((0..10_000).all(|_| !h.sentry_tick()));
    }

    #[test]
    fn sampling_frequency_tracks_rate() {
        let (_mem, mut h) = heap();
        h.set_sentry_rate(64, 42);
        let hits = (0..64_000).filter(|_| h.sentry_tick()).count();
        // Mean interval is `rate`; allow generous slack for variance.
        assert!((700..1300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn tick_sequence_is_deterministic_and_cloned() {
        let (_mem, mut a) = heap();
        a.set_sentry_rate(8, 7);
        let mut b = a.clone();
        let sa: Vec<bool> = (0..1000).map(|_| a.sentry_tick()).collect();
        let sb: Vec<bool> = (0..1000).map(|_| b.sentry_tick()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&s| s));
    }

    #[test]
    fn rate_zero_disarms() {
        let (_mem, mut h) = heap();
        h.set_sentry_rate(4, 1);
        assert!((0..100).any(|_| h.sentry_tick()));
        h.set_sentry_rate(0, 1);
        assert!((0..100).all(|_| !h.sentry_tick()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimMemory, Heap) {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        (mem, heap)
    }

    #[test]
    fn malloc_returns_aligned_disjoint_chunks() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        let b = heap.malloc(&mut mem, 200).unwrap();
        assert!(a.is_aligned(ALIGN) && b.is_aligned(ALIGN));
        let a_end = a.0 + heap.usable_size(&mut mem, a).unwrap();
        assert!(a_end <= b.0 - HDR_SIZE);
    }

    #[test]
    fn write_read_full_allocation() {
        let (mut mem, mut heap) = setup();
        let p = heap.malloc(&mut mem, 64).unwrap();
        let data: Vec<u8> = (0..64).collect();
        mem.write(p, &data).unwrap();
        assert_eq!(mem.read_bytes(p, 64).unwrap(), data);
    }

    #[test]
    fn free_then_reuse_same_size() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        let _b = heap.malloc(&mut mem, 100).unwrap(); // keep top away
        heap.free(&mut mem, a).unwrap();
        let c = heap.malloc(&mut mem, 100).unwrap();
        assert_eq!(a, c, "freed chunk must be reused for an equal request");
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 1000).unwrap();
        let _hold = heap.malloc(&mut mem, 16).unwrap();
        heap.free(&mut mem, a).unwrap();
        let small = heap.malloc(&mut mem, 100).unwrap();
        assert_eq!(
            small, a,
            "split should allocate the front of the free chunk"
        );
        // The remainder is immediately reusable.
        let rest = heap.malloc(&mut mem, 500).unwrap();
        assert!(rest.0 > small.0 && rest.0 < a.0 + 1200);
    }

    #[test]
    fn coalesce_with_next() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        let b = heap.malloc(&mut mem, 100).unwrap();
        let _hold = heap.malloc(&mut mem, 16).unwrap();
        heap.free(&mut mem, b).unwrap();
        heap.free(&mut mem, a).unwrap();
        // a+b coalesced: a request spanning both fits at a.
        let big = heap.malloc(&mut mem, 210).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn coalesce_with_prev() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        let b = heap.malloc(&mut mem, 100).unwrap();
        let _hold = heap.malloc(&mut mem, 16).unwrap();
        heap.free(&mut mem, a).unwrap();
        heap.free(&mut mem, b).unwrap(); // merges backwards into a
        let big = heap.malloc(&mut mem, 210).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn free_last_chunk_merges_into_top() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        let top_before = heap.top();
        heap.free(&mut mem, a).unwrap();
        assert!(heap.top() < top_before, "top must absorb the freed chunk");
        assert!(heap.free_chunks().is_empty());
    }

    #[test]
    fn double_free_detected() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        let _b = heap.malloc(&mut mem, 100).unwrap();
        heap.free(&mut mem, a).unwrap();
        let err = heap.free(&mut mem, a).unwrap_err();
        assert!(
            matches!(
                err,
                HeapError::InvalidFree {
                    kind: InvalidFreeKind::DoubleFree,
                    ..
                } | HeapError::CorruptChunk { .. }
            ),
            "double free must abort: {err}"
        );
    }

    #[test]
    fn wild_free_detected() {
        let (mut mem, mut heap) = setup();
        let err = heap.free(&mut mem, Addr(0x10)).unwrap_err();
        assert!(matches!(
            err,
            HeapError::InvalidFree {
                kind: InvalidFreeKind::WildPointer,
                ..
            }
        ));
        let err = heap.free(&mut mem, Addr(0x1000_0000 + 24)).unwrap_err();
        assert!(matches!(err, HeapError::InvalidFree { .. }));
    }

    #[test]
    fn overflow_corrupts_next_and_is_caught_on_free() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        let b = heap.malloc(&mut mem, 64).unwrap();
        let usable = heap.usable_size(&mut mem, a).unwrap();
        // Application bug: write 24 bytes past the end of `a`, trampling
        // b's boundary tag.
        mem.write(a.offset(usable), &[0xaa; 24]).unwrap();
        let err = heap.free(&mut mem, b).unwrap_err();
        assert!(
            matches!(err, HeapError::CorruptChunk { .. }),
            "overflow must be detected as metadata corruption: {err}"
        );
    }

    #[test]
    fn overflow_into_top_is_caught_on_malloc() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        let usable = heap.usable_size(&mut mem, a).unwrap();
        mem.write(a.offset(usable), &[0xbb; 32]).unwrap(); // tramples top header
        let err = heap.malloc(&mut mem, 64).unwrap_err();
        assert!(matches!(err, HeapError::CorruptChunk { .. }));
    }

    #[test]
    fn heap_grows_on_demand() {
        let (mut mem, mut heap) = setup();
        let before = heap.stats().heap_bytes;
        let p = heap.malloc(&mut mem, 200 * 1024).unwrap();
        assert!(heap.stats().heap_bytes > before);
        mem.write_u8(p.offset(200 * 1024 - 1), 1).unwrap();
    }

    #[test]
    fn out_of_memory_reported() {
        let mut mem = SimMemory::new();
        let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 128 * 1024).unwrap();
        let err = heap.malloc(&mut mem, 1 << 20).unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
    }

    #[test]
    fn freed_contents_clobbered() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        let _b = heap.malloc(&mut mem, 64).unwrap();
        mem.write(a, b"sensitive-data-here-1234").unwrap();
        heap.free(&mut mem, a).unwrap();
        let after = mem.read_bytes(a, 16).unwrap();
        assert_ne!(&after[..], b"sensitive-data-h", "cookie must clobber head");
    }

    #[test]
    fn dangling_read_sees_reused_data() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        let _b = heap.malloc(&mut mem, 64).unwrap();
        mem.write(a.offset(32), b"old-old-").unwrap();
        heap.free(&mut mem, a).unwrap();
        let c = heap.malloc(&mut mem, 64).unwrap();
        assert_eq!(c, a, "chunk reuse expected");
        mem.write(c.offset(32), b"new-new-").unwrap();
        // A dangling pointer to `a` now reads the new owner's data.
        assert_eq!(mem.read_bytes(a.offset(32), 8).unwrap(), b"new-new-");
    }

    #[test]
    fn realloc_grows_and_preserves() {
        let (mut mem, mut heap) = setup();
        let p = heap.malloc(&mut mem, 32).unwrap();
        mem.write(p, b"0123456789abcdef").unwrap();
        let q = heap.realloc(&mut mem, p, 4096).unwrap();
        assert_ne!(p, q);
        assert_eq!(mem.read_bytes(q, 16).unwrap(), b"0123456789abcdef");
    }

    #[test]
    fn realloc_within_chunk_is_in_place() {
        let (mut mem, mut heap) = setup();
        let p = heap.malloc(&mut mem, 64).unwrap();
        let q = heap.realloc(&mut mem, p, 48).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn malloc_zeroed_zeroes_reused_chunk() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        mem.fill(a, 64, 0xff).unwrap();
        let _b = heap.malloc(&mut mem, 16).unwrap();
        heap.free(&mut mem, a).unwrap();
        let c = heap.malloc_zeroed(&mut mem, 64).unwrap();
        assert_eq!(c, a);
        assert!(mem.read_bytes(c, 64).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn stats_track_usage() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 100).unwrap();
        let s = heap.stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.in_use_chunks, 1);
        assert!(s.in_use_user_bytes >= 100);
        heap.free(&mut mem, a).unwrap();
        let s = heap.stats();
        assert_eq!(s.frees, 1);
        assert_eq!(s.in_use_chunks, 0);
        assert_eq!(s.in_use_user_bytes, 0);
    }

    #[test]
    fn randomized_heaps_differ_across_seeds() {
        let mut layouts = Vec::new();
        for seed in [1u64, 2, 3] {
            let mut mem = SimMemory::new();
            let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
            heap.randomize(seed);
            let mut addrs = Vec::new();
            let mut live = Vec::new();
            for i in 0..40u64 {
                let p = heap.malloc(&mut mem, 32 + (i % 7) * 24).unwrap();
                live.push(p);
                addrs.push(p.0);
                if i % 3 == 0 {
                    let victim = live.remove(0);
                    heap.free(&mut mem, victim).unwrap();
                }
            }
            layouts.push(addrs);
        }
        assert!(
            layouts[0] != layouts[1] || layouts[1] != layouts[2],
            "seeds must perturb placement"
        );
    }

    #[test]
    fn poison_freed_pages_traps_dangling_access_until_reuse() {
        use fa_mem::MemFault;
        let mut mem = SimMemory::new();
        let mut heap = Heap::with_config(
            &mut mem,
            Addr(0x1000_0000),
            HeapConfig {
                poison_freed_pages: true,
                ..HeapConfig::default()
            },
        )
        .unwrap();
        let page = PAGE_SIZE as u64;
        let p = heap.malloc(&mut mem, 4 * page).unwrap();
        // A plug behind it keeps the freed chunk off the top, so it lands
        // in a bin.
        let plug = heap.malloc(&mut mem, 64).unwrap();
        mem.write_u64(p.offset(2 * page), 7).unwrap();
        heap.free(&mut mem, p).unwrap();
        // Interior pages of the binned chunk trap on access...
        assert!(matches!(
            mem.read_u8(p.offset(2 * page)),
            Err(MemFault::GuardTrap { .. })
        ));
        // ...while the free-list cookies (and boundary tags) stay
        // readable for the allocator.
        assert_eq!(mem.read_u64(p).unwrap(), FREE_COOKIE ^ (p.0 - HDR_SIZE));
        // Reuse restores plain read/write pages.
        let q = heap.malloc(&mut mem, 4 * page).unwrap();
        assert_eq!(q, p, "best fit reuses the freed chunk");
        mem.write_u8(q.offset(2 * page), 1).unwrap();
        heap.free(&mut mem, q).unwrap();
        heap.free(&mut mem, plug).unwrap();
        heap.check_integrity(&mut mem).unwrap();
    }

    #[test]
    fn poisoning_off_by_default_keeps_freed_pages_readable() {
        let (mut mem, mut heap) = setup();
        let page = PAGE_SIZE as u64;
        let p = heap.malloc(&mut mem, 4 * page).unwrap();
        let plug = heap.malloc(&mut mem, 64).unwrap();
        heap.free(&mut mem, p).unwrap();
        assert!(mem.read_u8(p.offset(2 * page)).is_ok());
        let _ = plug;
    }

    #[test]
    fn randomized_heap_stays_consistent() {
        let mut mem = SimMemory::new();
        let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        heap.randomize(42);
        let mut live = Vec::new();
        for i in 0..200u64 {
            let p = heap.malloc(&mut mem, 16 + (i * 13) % 500).unwrap();
            live.push(p);
            if i % 2 == 1 {
                let victim = live.swap_remove((i as usize * 7) % live.len());
                heap.free(&mut mem, victim).unwrap();
            }
        }
        for p in live {
            heap.free(&mut mem, p).unwrap();
        }
        assert_eq!(heap.stats().in_use_chunks, 0);
    }

    #[test]
    fn poisoned_heap_survives_random_workload() {
        // Same workload as `randomized_heap_stays_consistent`, with
        // freed-page poisoning on: every split, gap, coalesce, and reuse
        // must flip permissions symmetrically or the allocator's own
        // metadata writes (and this test's data writes) would trap.
        let mut mem = SimMemory::new();
        let mut heap = Heap::with_config(
            &mut mem,
            Addr(0x1000_0000),
            HeapConfig {
                poison_freed_pages: true,
                limit: 1 << 26,
                ..HeapConfig::default()
            },
        )
        .unwrap();
        heap.randomize(42);
        let mut live = Vec::new();
        for i in 0..200u64 {
            let req = 16 + (i * 379) % (3 * PAGE_SIZE as u64);
            let p = heap.malloc(&mut mem, req).unwrap();
            mem.fill(p, req, i as u8).unwrap();
            live.push(p);
            if i % 2 == 1 {
                let victim = live.swap_remove((i as usize * 7) % live.len());
                heap.free(&mut mem, victim).unwrap();
            }
        }
        for p in live {
            heap.free(&mut mem, p).unwrap();
        }
        assert_eq!(heap.stats().in_use_chunks, 0);
        heap.check_integrity(&mut mem).unwrap();
    }
}
