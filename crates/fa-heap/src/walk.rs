//! Heap walking and whole-heap integrity checking.
//!
//! Walking the chunk sequence is what First-Aid's *heap marking* technique
//! (paper §4.1, Fig. 3) is built on: before re-executing from a checkpoint,
//! every free chunk is canary-filled so bugs that triggered *before* the
//! checkpoint still manifest as canary corruption during re-execution.

use fa_mem::{Addr, SimMemory};

use crate::chunk::{ChunkHeader, ALIGN, HDR_SIZE, MIN_CHUNK};
use crate::error::{CorruptKind, HeapError};
use crate::heap::Heap;

/// A chunk observed during a heap walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Address of the chunk header.
    pub chunk: Addr,
    /// Address of the user area.
    pub user: Addr,
    /// Total chunk size (header included).
    pub size: u64,
    /// The chunk is allocated.
    pub in_use: bool,
    /// The previous chunk is allocated.
    pub prev_in_use: bool,
    /// This chunk is the top chunk.
    pub is_top: bool,
}

impl ChunkInfo {
    /// Returns the usable user-area size.
    pub fn usable(&self) -> u64 {
        self.size - HDR_SIZE
    }
}

impl Heap {
    /// Walks the heap from base to break, returning every chunk in address
    /// order.
    ///
    /// The walk validates basic header sanity as it goes so corruption
    /// cannot send it into an endless loop; a bad header yields
    /// [`HeapError::CorruptChunk`].
    pub fn walk(&self, mem: &mut SimMemory) -> Result<Vec<ChunkInfo>, HeapError> {
        let mut out = Vec::new();
        let mut cursor = self.base();
        let mut prev_size = 0u64;
        let mut prev_in_use = true;
        while cursor < self.brk() {
            let hdr = ChunkHeader::read(mem, cursor)?;
            if hdr.size < MIN_CHUNK || hdr.size % ALIGN != 0 {
                return Err(HeapError::CorruptChunk {
                    chunk: cursor,
                    kind: CorruptKind::BadSize,
                });
            }
            if cursor.0 + hdr.size > self.brk().0 {
                return Err(HeapError::CorruptChunk {
                    chunk: cursor,
                    kind: CorruptKind::OutOfHeap,
                });
            }
            if hdr.prev_size != prev_size || hdr.prev_in_use != prev_in_use {
                return Err(HeapError::CorruptChunk {
                    chunk: cursor,
                    kind: CorruptKind::BoundaryTagMismatch,
                });
            }
            out.push(ChunkInfo {
                chunk: cursor,
                user: ChunkHeader::user_of(cursor),
                size: hdr.size,
                in_use: hdr.in_use,
                prev_in_use: hdr.prev_in_use,
                is_top: cursor == self.top(),
            });
            prev_size = hdr.size;
            prev_in_use = hdr.in_use;
            cursor = cursor.offset(hdr.size);
        }
        Ok(out)
    }

    /// Performs a full consistency check of boundary tags and free bins.
    ///
    /// Verifies that chunks tile the heap exactly, every boundary tag
    /// agrees with its physical neighbour, the final chunk is the free top
    /// chunk, and the bin index matches the set of free non-top chunks.
    pub fn check_integrity(&self, mem: &mut SimMemory) -> Result<(), HeapError> {
        let chunks = self.walk(mem)?;
        let last = chunks.last().ok_or(HeapError::CorruptChunk {
            chunk: self.base(),
            kind: CorruptKind::BadSize,
        })?;
        if !last.is_top || last.in_use || last.chunk.0 + last.size != self.brk().0 {
            return Err(HeapError::CorruptChunk {
                chunk: last.chunk,
                kind: CorruptKind::OutOfHeap,
            });
        }
        let mut free: Vec<(Addr, u64)> = chunks
            .iter()
            .filter(|c| !c.in_use && !c.is_top)
            .map(|c| (c.chunk, c.size))
            .collect();
        free.sort();
        let mut binned = self.free_chunks();
        binned.sort();
        if free != binned {
            return Err(HeapError::CorruptChunk {
                chunk: free
                    .first()
                    .or(binned.first())
                    .map(|&(a, _)| a)
                    .unwrap_or(self.base()),
                kind: CorruptKind::BinInconsistency,
            });
        }
        // No two adjacent free chunks (coalescing invariant).
        for pair in chunks.windows(2) {
            if !pair[0].in_use && !pair[1].in_use && !pair[1].is_top {
                return Err(HeapError::CorruptChunk {
                    chunk: pair[1].chunk,
                    kind: CorruptKind::BinInconsistency,
                });
            }
        }
        Ok(())
    }

    /// Returns the chunk containing `addr`, if any (linear scan).
    pub fn find_chunk(&self, mem: &mut SimMemory, addr: Addr) -> Option<ChunkInfo> {
        if !self.contains(addr) {
            return None;
        }
        self.walk(mem)
            .ok()?
            .into_iter()
            .find(|c| addr >= c.chunk && addr.0 < c.chunk.0 + c.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;

    fn setup() -> (SimMemory, Heap) {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        (mem, heap)
    }

    #[test]
    fn fresh_heap_is_single_top_chunk() {
        let (mut mem, heap) = setup();
        let chunks = heap.walk(&mut mem).unwrap();
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_top && !chunks[0].in_use);
        heap.check_integrity(&mut mem).unwrap();
    }

    #[test]
    fn walk_reflects_allocations() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        let b = heap.malloc(&mut mem, 128).unwrap();
        heap.free(&mut mem, a).unwrap();
        let chunks = heap.walk(&mut mem).unwrap();
        assert_eq!(chunks.len(), 3); // free(a), live(b), top
        assert!(!chunks[0].in_use);
        assert!(chunks[1].in_use);
        assert_eq!(chunks[1].user, b);
        heap.check_integrity(&mut mem).unwrap();
    }

    #[test]
    fn integrity_detects_corruption() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        let _b = heap.malloc(&mut mem, 64).unwrap();
        let usable = heap.usable_size(&mut mem, a).unwrap();
        mem.write(a.offset(usable), &[0x77; 16]).unwrap();
        assert!(heap.check_integrity(&mut mem).is_err());
    }

    #[test]
    fn find_chunk_locates_owner() {
        let (mut mem, mut heap) = setup();
        let a = heap.malloc(&mut mem, 64).unwrap();
        let info = heap.find_chunk(&mut mem, a.offset(10)).unwrap();
        assert_eq!(info.user, a);
        assert!(heap.find_chunk(&mut mem, Addr(0x10)).is_none());
    }

    #[test]
    fn integrity_holds_under_churn() {
        let (mut mem, mut heap) = setup();
        let mut live = Vec::new();
        for i in 0..300u64 {
            let p = heap.malloc(&mut mem, 16 + (i * 37) % 700).unwrap();
            live.push(p);
            if i % 3 == 2 {
                let victim = live.remove(((i as usize) * 11) % live.len());
                heap.free(&mut mem, victim).unwrap();
            }
            if i % 50 == 49 {
                heap.check_integrity(&mut mem).unwrap();
            }
        }
        for p in live {
            heap.free(&mut mem, p).unwrap();
        }
        heap.check_integrity(&mut mem).unwrap();
        let chunks = heap.walk(&mut mem).unwrap();
        assert_eq!(chunks.len(), 1, "everything must coalesce back into top");
    }
}
