//! Heap failure modes.
//!
//! These are the allocator-side crashes First-Aid's error monitors catch:
//! metadata corruption discovered during malloc/free (the fate of the
//! paper's buffer-overflow bugs) and invalid/double frees (the CVS bug).

use core::fmt;

use fa_mem::{Addr, MemFault};

/// Why a chunk header failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CorruptKind {
    /// The size field is not a legal chunk size (alignment / minimum).
    BadSize,
    /// The chunk extends past the heap break.
    OutOfHeap,
    /// `next.prev_size` disagrees with this chunk's size — the classic
    /// footprint of an overflow into the next chunk's boundary tag.
    BoundaryTagMismatch,
    /// A chunk the bins claim is free is not marked free in memory (or
    /// vice versa).
    BinInconsistency,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptKind::BadSize => "corrupted size field",
            CorruptKind::OutOfHeap => "chunk extends past heap break",
            CorruptKind::BoundaryTagMismatch => "corrupted size vs. prev_size",
            CorruptKind::BinInconsistency => "free-bin inconsistency",
        };
        f.write_str(s)
    }
}

/// Why a `free` call was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvalidFreeKind {
    /// Pointer not inside the heap or unaligned.
    WildPointer,
    /// The chunk is already marked free — a double free.
    DoubleFree,
}

impl fmt::Display for InvalidFreeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvalidFreeKind::WildPointer => "invalid pointer",
            InvalidFreeKind::DoubleFree => "double free or corruption",
        };
        f.write_str(s)
    }
}

/// An allocator failure.
///
/// `CorruptChunk` and `InvalidFree` correspond to glibc's runtime abort
/// messages; they terminate the simulated process and are caught by
/// First-Aid's error monitor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HeapError {
    /// Chunk metadata failed an integrity check.
    CorruptChunk {
        /// Address of the offending chunk header.
        chunk: Addr,
        /// Which invariant was violated.
        kind: CorruptKind,
    },
    /// A `free` call had an illegal argument.
    InvalidFree {
        /// The user pointer passed to `free`.
        addr: Addr,
        /// Why it was rejected.
        kind: InvalidFreeKind,
    },
    /// The heap could not grow any further.
    OutOfMemory {
        /// The request that could not be satisfied, in bytes.
        requested: u64,
    },
    /// The underlying simulated memory faulted.
    Mem(MemFault),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::CorruptChunk { chunk, kind } => {
                write!(f, "malloc(): {kind} (chunk {chunk})")
            }
            HeapError::InvalidFree { addr, kind } => write!(f, "free(): {kind} ({addr})"),
            HeapError::OutOfMemory { requested } => {
                write!(f, "out of memory (requested {requested} bytes)")
            }
            HeapError::Mem(e) => write!(f, "memory fault: {e}"),
        }
    }
}

impl std::error::Error for HeapError {}

impl From<MemFault> for HeapError {
    fn from(e: MemFault) -> Self {
        HeapError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_glibc_style() {
        let e = HeapError::CorruptChunk {
            chunk: Addr(0x10),
            kind: CorruptKind::BoundaryTagMismatch,
        };
        assert_eq!(
            e.to_string(),
            "malloc(): corrupted size vs. prev_size (chunk 0x10)"
        );
        let e = HeapError::InvalidFree {
            addr: Addr(0x20),
            kind: InvalidFreeKind::DoubleFree,
        };
        assert_eq!(e.to_string(), "free(): double free or corruption (0x20)");
    }
}
