//! Property-based tests for the journal's replay guarantees.
//!
//! The crash-safety argument rests on two byte-level properties of the
//! on-disk log, independent of any consumer:
//!
//! * **prefix-closed** — cutting the file at ANY byte offset (a crash
//!   can tear at most the tail, but corruption could in principle land
//!   anywhere) decodes to an exact record-prefix of the full log,
//!   never to a reordered, duplicated, or fabricated record;
//! * **replay-idempotent** — parsing is a pure function of the bytes:
//!   replaying the same image twice yields the same records, and a
//!   repaired-and-reopened journal continues the sequence exactly
//!   where the valid prefix ended.

use proptest::prelude::*;

use fa_allocext::{BugType, Patch};
use fa_proc::{CallSite, SymbolTable};
use fa_wal::{parse_prefix, truncate_to_records, PublishOp, RevokeOp, Wal, WalOp, WorkerOp};

#[derive(Clone, Debug)]
enum Op {
    Publish { program: u8, patches: u8 },
    Revoke { program: u8, site: u8 },
    WorkerJoin { worker: u8 },
    WorkerLeave { worker: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), 0u8..4).prop_map(|(program, patches)| Op::Publish { program, patches }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(program, site)| Op::Revoke { program, site }),
        1 => any::<u8>().prop_map(|worker| Op::WorkerJoin { worker }),
        1 => any::<u8>().prop_map(|worker| Op::WorkerLeave { worker }),
    ]
}

fn program_name(id: u8) -> String {
    format!("app-{}", id % 5)
}

fn to_wal_op(op: &Op) -> WalOp {
    match *op {
        Op::Publish { program, patches } => WalOp::PatchPublish(PublishOp {
            program: program_name(program),
            patches: (0..patches)
                .map(|i| {
                    Patch::new(
                        BugType::BufferOverflow,
                        CallSite([u64::from(i) + 1, 7, 0]),
                        &SymbolTable::new(),
                    )
                })
                .collect(),
        }),
        Op::Revoke { program, site } => WalOp::PatchRevoke(RevokeOp {
            program: program_name(program),
            site: CallSite([u64::from(site) + 1, 7, 0]),
            flaps: 1,
            window: 1,
            quarantined: false,
        }),
        Op::WorkerJoin { worker } => WalOp::WorkerJoin(WorkerOp {
            worker: u64::from(worker),
        }),
        Op::WorkerLeave { worker } => WalOp::WorkerLeave(WorkerOp {
            worker: u64::from(worker),
        }),
    }
}

fn scratch(name: &str, tag: u64) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fa-wal-props-{name}-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("journal.wal")
}

/// Writes `ops` through a fresh journal and returns its raw bytes plus
/// the decoded full record list.
fn journal_bytes(name: &str, tag: u64, ops: &[Op]) -> (Vec<u8>, Vec<fa_wal::WalRecord>) {
    let path = scratch(name, tag);
    let wal = Wal::open(&path).unwrap();
    for op in ops {
        wal.append(to_wal_op(op))
            .expect("clean journal accepts appends");
    }
    let bytes = std::fs::read(&path).unwrap();
    let records = wal.replay();
    (bytes, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any byte-level cut of the log decodes to an exact record-prefix:
    /// same seqs, same ops, in order — never a phantom or reordered
    /// record. This is the property that makes "crash anywhere" safe.
    #[test]
    fn any_byte_truncation_decodes_to_an_exact_record_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        cut_permille in 0u16..=1000,
    ) {
        let (bytes, full) = journal_bytes("prefix", ops.len() as u64, &ops);
        prop_assert_eq!(full.len(), ops.len());
        let cut = (bytes.len() * usize::from(cut_permille)) / 1000;
        let (records, valid_len) = parse_prefix(&bytes[..cut]);
        prop_assert!(valid_len <= cut);
        prop_assert!(records.len() <= full.len());
        for (got, want) in records.iter().zip(full.iter()) {
            prop_assert_eq!(got, want);
        }
        // Re-parsing the valid prefix is a fixpoint (idempotent).
        let (again, len_again) = parse_prefix(&bytes[..valid_len]);
        prop_assert_eq!(len_again, valid_len);
        prop_assert_eq!(again, records);
    }

    /// Opening a truncated image repairs the torn tail and resumes the
    /// sequence exactly after the surviving prefix; a second open (and
    /// a second replay) observes the identical state.
    #[test]
    fn reopen_after_any_cut_resumes_the_sequence_idempotently(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        cut_permille in 0u16..=1000,
    ) {
        let (bytes, _) = journal_bytes("reopen", ops.len() as u64, &ops);
        let cut = (bytes.len() * usize::from(cut_permille)) / 1000;
        let (prefix_records, _) = parse_prefix(&bytes[..cut]);
        let last_seq = prefix_records.last().map_or(0, |r| r.seq);

        let path = scratch("reopen-img", (ops.len() as u64) << 16 | u64::from(cut_permille));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let wal = Wal::open(&path).unwrap();
        prop_assert_eq!(wal.next_seq(), last_seq + 1);
        prop_assert_eq!(wal.replay().len(), prefix_records.len());
        // Replay twice == replay once: parsing is pure.
        prop_assert_eq!(wal.replay(), prefix_records.clone());

        // The repaired journal accepts appends that extend the prefix.
        let appended = wal.append(WalOp::WorkerJoin(WorkerOp { worker: 9 }));
        prop_assert_eq!(appended, Some(last_seq + 1));
        prop_assert_eq!(wal.replay().len(), prefix_records.len() + 1);
    }

    /// Record-boundary truncation (the kill-sweep's view of "crash right
    /// after append n") and byte-level parsing agree for every n.
    #[test]
    fn record_truncation_agrees_with_byte_parsing(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        n in 0usize..20,
    ) {
        let (bytes, full) = journal_bytes("records", ops.len() as u64, &ops);
        let img = truncate_to_records(&bytes, n);
        let (records, valid_len) = parse_prefix(&img);
        prop_assert_eq!(valid_len, img.len());
        prop_assert_eq!(records.len(), n.min(full.len()));
        prop_assert_eq!(records, full[..n.min(full.len())].to_vec());
    }
}
