//! Torn-write-safe whole-file replacement.
//!
//! The one correct way to replace a file's contents on a crashy system:
//! write a temporary in the same directory, fsync it, then atomically
//! rename over the destination. A reader can then observe either the
//! old contents or the new contents, never a torn mixture. The journal
//! uses this for compaction snapshots and the patch pool routes its
//! JSON persistence through it (replacing its bespoke tmp-file dance).

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `bytes` (write temp + fsync +
/// rename). The temporary lives in `path`'s directory so the rename
/// cannot cross filesystems; it is removed on failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp_name = format!(".{}.tmp-{}", name, std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let write = || -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // Durability first: the rename must not be reorderable before
        // the data it publishes.
        f.sync_all()?;
        fs::rename(&tmp, path)
    };
    write().inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_contents_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("fa-wal-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_a_directory_path() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
