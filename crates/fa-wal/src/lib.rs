//! # fa-wal — the crash-safe supervision journal
//!
//! First-Aid's value proposition is that production runs survive their
//! bugs, but the supervisor itself used to be the weakest link: if the
//! fleet supervisor or a worker's runtime died mid-diagnosis, every
//! in-flight patch epoch, quarantine counter, sentry suppression, and
//! checkpoint registration evaporated — the "immunize once, survive
//! forever" guarantee reset to zero. This crate makes all of that
//! supervision state durable:
//!
//! * [`WalOp`] / [`WalRecord`] — the record vocabulary: patch-pool
//!   publish/revoke/tombstone epochs, quarantine and canary
//!   transitions, checkpoint registration/pruning, sentry
//!   suppressions, ladder descents, fleet worker membership;
//! * [`Wal`] — the append-only, checksummed, torn-write-safe journal
//!   with snapshot compaction ([`PoolSnapshot`]) and built-in crash
//!   injection ([`Wal::arm_kill`] takes a
//!   [`KillPoint`](fa_faults::KillPoint) from the supervisor-kill
//!   schedule, [`FaultStage::WalAppendIo`](fa_faults::FaultStage)
//!   injects append I/O errors);
//! * [`write_atomic`] — the one torn-write-safe whole-file replacement
//!   (write temp + fsync + rename), shared with the patch pool's JSON
//!   persistence;
//! * [`parse_prefix`] / [`truncate_to_records`] — byte-level replay
//!   plumbing for recovery and for the kill-point acceptance sweep.
//!
//! Replay is *prefix-closed*: any truncation of the log (including a
//! torn final record) decodes to a valid earlier state, never a
//! corrupt one. Consumers replay with a sequence-number watermark,
//! which makes recovery idempotent — replaying twice is the same as
//! replaying once.

mod atomic;
mod journal;
mod record;

pub use atomic::write_atomic;
pub use journal::{digest, parse_prefix, truncate_to_records, Wal, WAL_MAGIC};
pub use record::{
    CanaryOp, CheckpointOp, DenyOp, LadderOp, PoolSnapshot, ProgramSnapshot, PublishOp,
    QuarantineEntry, RevokeOp, SentryOp, SiteOp, WalOp, WalRecord, WorkerOp,
};
