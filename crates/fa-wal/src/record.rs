//! The journal record vocabulary.
//!
//! Every supervision-state transition that used to live only in memory
//! is one [`WalOp`]; a [`WalRecord`] is an op stamped with its journal
//! sequence number. Ops are externally-tagged JSON enums with newtype
//! payloads (named-field structs), so the on-disk format is
//! self-describing: `{"PatchPublish":{"program":...,"patches":[...]}}`.
//!
//! Replay contract: each *epoch-bumping* op (see
//! [`WalOp::bumps_epoch`]) advances its program's patch epoch by
//! exactly one, mirroring the single bump the live mutation performed.
//! Quarantine records carry their resulting counters (`flaps`,
//! `window`, `denials`) rather than the inputs that produced them, so
//! replay restores the exact bookkeeping without needing the policy
//! that was active at append time.

use fa_allocext::Patch;
use fa_proc::CallSite;
use serde::{Deserialize, Serialize};

/// A patch set published (added) for a program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PublishOp {
    /// Program executable name.
    pub program: String,
    /// The patches admitted by this mutation (deduplicated).
    pub patches: Vec<Patch>,
}

/// A call-site revocation (tombstone + patch removal), with the
/// flap-quarantine counters *after* the revoke.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RevokeOp {
    /// Program executable name.
    pub program: String,
    /// The revoked call-site.
    pub site: CallSite,
    /// Fleet-wide revocations of this site so far (0 = quarantine
    /// policy disabled at append time).
    pub flaps: u32,
    /// Denial window before the next re-admission attempt is accepted.
    pub window: u32,
    /// Whether the site is now quarantined (canary-only re-admission).
    pub quarantined: bool,
}

/// A simple per-site op (patch removal, canary promote/reject target).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteOp {
    /// Program executable name.
    pub program: String,
    /// The call-site concerned.
    pub site: CallSite,
}

/// A refused re-admission attempt inside the denial window. Not an
/// epoch bump (a refused add is not a mutation of the patch set), but
/// journaled so recovered denial counters match the live pool exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenyOp {
    /// Program executable name.
    pub program: String,
    /// The site whose re-admission was refused.
    pub site: CallSite,
    /// Denials recorded so far in the current window.
    pub denials: u32,
}

/// A quarantined site's canary admission on a single worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CanaryOp {
    /// Program executable name.
    pub program: String,
    /// The quarantined call-site under canary.
    pub site: CallSite,
    /// The worker the canary is scoped to.
    pub worker: u64,
    /// The candidate patches, visible only to that worker until
    /// promoted.
    pub patches: Vec<Patch>,
}

/// A checkpoint registered or pruned by the runtime.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointOp {
    /// Program executable name.
    pub program: String,
    /// Worker scope (0 for an unscoped runtime).
    pub worker: u64,
    /// Checkpoint id.
    pub ckpt: u64,
}

/// A sentry sampler suppression change (synced at patch install).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SentryOp {
    /// Program executable name.
    pub program: String,
    /// Precisely-patched sites withdrawn from sentry sampling.
    pub sites: Vec<CallSite>,
    /// Whether a generic patch suppressed sampling entirely.
    pub all: bool,
}

/// A degradation-ladder descent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LadderOp {
    /// Program executable name.
    pub program: String,
    /// The rung descended to ("generic", "dropped", "restart").
    pub rung: String,
    /// The bug signature that drove the descent.
    pub signature: String,
}

/// Fleet worker membership change.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerOp {
    /// Worker index within the fleet.
    pub worker: u64,
}

/// Quarantine bookkeeping for one site, as carried by snapshots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The tracked call-site.
    pub site: CallSite,
    /// Fleet-wide revocations of this site.
    pub flaps: u32,
    /// Current denial window (doubles per flap).
    pub window: u32,
    /// Denials recorded in the current window.
    pub denials: u32,
    /// Whether the site is quarantined.
    pub quarantined: bool,
    /// Canary worker, if a canary is in flight.
    pub canary_worker: Option<u64>,
    /// The canary's candidate patches.
    pub canary_patches: Vec<Patch>,
}

/// One program's full pool state, as carried by snapshots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgramSnapshot {
    /// Program executable name.
    pub program: String,
    /// Patch epoch at snapshot time.
    pub epoch: u64,
    /// Published patches.
    pub patches: Vec<Patch>,
    /// Tombstoned call-sites.
    pub revoked: Vec<CallSite>,
    /// Quarantine bookkeeping, sorted by site.
    pub quarantine: Vec<QuarantineEntry>,
}

/// A compaction snapshot: the entire pool state at one journal
/// sequence point. Replay of a snapshot replaces all prior state; any
/// records after it apply incrementally. (`Vec`-based rather than
/// map-based so it round-trips through the vendored serde derive.)
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// Per-program state, sorted by program name.
    pub programs: Vec<ProgramSnapshot>,
}

/// One journaled supervision-state transition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// Patches published for a program (epoch bump).
    PatchPublish(PublishOp),
    /// A call-site revoked: tombstone + removal (epoch bump).
    PatchRevoke(RevokeOp),
    /// A site's patches removed without tombstoning (epoch bump).
    PatchRemove(SiteOp),
    /// A re-admission attempt refused inside the denial window.
    SiteDenied(DenyOp),
    /// A quarantined site admitted a canary on one worker (epoch bump —
    /// the canary worker's view changes).
    CanaryAdmit(CanaryOp),
    /// A canary validated: its patches published fleet-wide, tombstone
    /// cleared (epoch bump).
    CanaryPromote(SiteOp),
    /// A canary revoked before validation; the denial window doubles.
    CanaryReject(SiteOp),
    /// A checkpoint registered by the runtime.
    CheckpointRegister(CheckpointOp),
    /// A checkpoint pruned (rollback truncated the ring past it).
    CheckpointPrune(CheckpointOp),
    /// Sentry sampler suppressions synced after a patch install.
    SentrySuppress(SentryOp),
    /// A degradation-ladder descent.
    LadderDescend(LadderOp),
    /// A fleet worker joined.
    WorkerJoin(WorkerOp),
    /// A fleet worker left (clean shutdown or fold).
    WorkerLeave(WorkerOp),
    /// A compaction snapshot of the entire pool state.
    Snapshot(PoolSnapshot),
}

impl WalOp {
    /// Whether replaying this op advances the program's patch epoch by
    /// one (the live mutation bumped it exactly once when journaling).
    pub fn bumps_epoch(&self) -> bool {
        matches!(
            self,
            WalOp::PatchPublish(_)
                | WalOp::PatchRevoke(_)
                | WalOp::PatchRemove(_)
                | WalOp::CanaryAdmit(_)
                | WalOp::CanaryPromote(_)
        )
    }

    /// Stable label for logs and debugging.
    pub fn label(&self) -> &'static str {
        match self {
            WalOp::PatchPublish(_) => "patch-publish",
            WalOp::PatchRevoke(_) => "patch-revoke",
            WalOp::PatchRemove(_) => "patch-remove",
            WalOp::SiteDenied(_) => "site-denied",
            WalOp::CanaryAdmit(_) => "canary-admit",
            WalOp::CanaryPromote(_) => "canary-promote",
            WalOp::CanaryReject(_) => "canary-reject",
            WalOp::CheckpointRegister(_) => "checkpoint-register",
            WalOp::CheckpointPrune(_) => "checkpoint-prune",
            WalOp::SentrySuppress(_) => "sentry-suppress",
            WalOp::LadderDescend(_) => "ladder-descend",
            WalOp::WorkerJoin(_) => "worker-join",
            WalOp::WorkerLeave(_) => "worker-leave",
            WalOp::Snapshot(_) => "snapshot",
        }
    }
}

/// A journal record: an op stamped with its sequence number.
///
/// Sequence numbers are strictly increasing within a journal; replay
/// stops at the first gap, checksum mismatch, or non-monotone record
/// (whichever comes first), which is what makes recovery prefix-closed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Strictly-increasing journal sequence number (1-based).
    pub seq: u64,
    /// The journaled transition.
    pub op: WalOp,
}
