//! The append-only, checksummed, torn-write-safe journal.
//!
//! One record per line: `fawal1 <checksum> <json>\n`, where the
//! checksum is a 16-hex-digit digest of the JSON bytes. Appends go to
//! the end of the file and are fsynced; compaction rewrites the whole
//! file as a single snapshot record through the atomic
//! write-temp/fsync/rename path. A crash can therefore leave at most
//! one torn record, and only at the tail — replay walks the valid
//! prefix and stops at the first line that fails the prefix test
//! (bad magic, bad checksum, undecodable JSON, or a non-monotone
//! sequence number), which is what makes recovery prefix-closed.
//!
//! Crash injection is built in: [`Wal::arm_kill`] arms a
//! [`KillPoint`] from the supervisor-kill schedule, after which the
//! journal "dies" at the scheduled append — cleanly, or mid-append
//! with a deliberately torn final record. Append I/O errors are
//! injected through [`FaultStage::WalAppendIo`] and retried on the
//! shared [`Backoff`] policy before the journal degrades to
//! memory-only operation (mirroring the patch pool's own degrade).

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Arc;

use fa_exec::Backoff;
use fa_faults::{FaultPlan, FaultStage, KillPoint};
use parking_lot::Mutex;

use crate::record::{PoolSnapshot, WalOp, WalRecord};

/// Magic prefix of every journal line (format version 1).
pub const WAL_MAGIC: &str = "fawal1";

/// Append retry attempts before the journal degrades to memory-only.
const APPEND_ATTEMPTS: u32 = 3;

/// Base virtual-time backoff between append retries (1 ms).
const APPEND_RETRY_BASE_NS: u64 = 1_000_000;

/// FNV-1a over the record bytes, finished through splitmix64 so short
/// records still change every checksum bit.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    fa_faults::splitmix64(h)
}

fn encode_line(record: &WalRecord) -> String {
    let json = serde_json::to_string(record).expect("journal records always serialize");
    format!("{WAL_MAGIC} {:016x} {json}\n", digest(json.as_bytes()))
}

fn parse_line(line: &str) -> Option<WalRecord> {
    let rest = line.strip_prefix(WAL_MAGIC)?.strip_prefix(' ')?;
    let (sum_hex, json) = rest.split_once(' ')?;
    if sum_hex.len() != 16 {
        return None;
    }
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if digest(json.as_bytes()) != sum {
        return None;
    }
    serde_json::from_str::<WalRecord>(json).ok()
}

/// Parses the valid prefix of raw journal bytes: the decoded records
/// and the byte length of the prefix they occupy. Everything after the
/// returned length is a torn tail (or garbage) and is ignored — and
/// truncated on [`Wal::open`].
pub fn parse_prefix(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    let mut last_seq = 0u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        // A complete record owns its trailing newline; a tail without
        // one is torn by definition.
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let line = &bytes[offset..offset + nl];
        let Some(record) = std::str::from_utf8(line).ok().and_then(parse_line) else {
            break;
        };
        if record.seq <= last_seq {
            break;
        }
        last_seq = record.seq;
        records.push(record);
        offset += nl + 1;
        valid_len = offset;
    }
    (records, valid_len)
}

#[derive(Debug)]
struct Inner {
    path: PathBuf,
    /// Sequence number the next append will carry (1-based).
    next_seq: u64,
    /// Successful appends since open (compactions included) — the
    /// coordinate system of [`KillPoint::after_appends`].
    appends: u64,
    since_compact: u64,
    compact_every: u64,
    kill: Option<KillPoint>,
    dead: bool,
    degraded: bool,
    io_errors: u64,
    retry_backoff_ns: u64,
    faults: FaultPlan,
}

/// A crash-safe supervision journal. Clones share state (one journal,
/// many writers: the pool, the runtime, the fleet supervisor).
#[derive(Clone, Debug)]
pub struct Wal {
    inner: Arc<Mutex<Inner>>,
}

impl Wal {
    /// Opens (or creates) the journal at `path`, repairing a torn tail
    /// by truncating the file to its valid prefix so later appends
    /// cannot concatenate onto half a record.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Wal> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, valid_len) = parse_prefix(&bytes);
        if valid_len < bytes.len() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            let _ = f.sync_all();
        }
        let last_seq = records.last().map_or(0, |r| r.seq);
        Ok(Wal {
            inner: Arc::new(Mutex::new(Inner {
                path,
                next_seq: last_seq + 1,
                appends: 0,
                since_compact: records.len() as u64,
                compact_every: 0,
                kill: None,
                dead: false,
                degraded: false,
                io_errors: 0,
                retry_backoff_ns: 0,
                faults: FaultPlan::none(),
            })),
        })
    }

    /// Attaches a fault plan; [`FaultStage::WalAppendIo`] decides which
    /// appends fail and must be retried.
    pub fn with_faults(self, faults: FaultPlan) -> Wal {
        self.inner.lock().faults = faults;
        self
    }

    /// Arms a supervisor kill point: the journal dies at the scheduled
    /// append (cleanly or mid-record), after which every append is a
    /// silent no-op — exactly what a crashed supervisor would write.
    pub fn arm_kill(&self, kill: KillPoint) {
        self.inner.lock().kill = Some(kill);
    }

    /// Enables automatic compaction: [`Wal::maybe_compact`] fires once
    /// `every` records accumulate past the last snapshot. `0` disables.
    pub fn set_compact_every(&self, every: u64) {
        self.inner.lock().compact_every = every;
    }

    fn die(inner: &mut Inner, line: Option<&str>) {
        inner.dead = true;
        if let Some(line) = line {
            // Torn mid-append: half the record reaches the disk, no
            // newline. Best-effort — the journal is dying anyway.
            let torn = &line.as_bytes()[..(line.len() / 2).max(1)];
            if let Ok(mut f) = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&inner.path)
            {
                let _ = f.write_all(torn);
                let _ = f.sync_data();
            }
        }
    }

    /// Appends one op, returning its sequence number — or `None` if the
    /// journal is dead (killed), degraded (persistent I/O errors), or
    /// dies at this very append per the armed kill point.
    pub fn append(&self, op: WalOp) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.dead || inner.degraded {
            return None;
        }
        let record = WalRecord {
            seq: inner.next_seq,
            op,
        };
        let line = encode_line(&record);
        if let Some(kill) = inner.kill {
            if inner.appends >= kill.after_appends {
                let torn = kill.torn.then_some(line.as_str());
                Self::die(&mut inner, torn);
                return None;
            }
        }
        let mut backoff = Backoff::new(APPEND_RETRY_BASE_NS, APPEND_RETRY_BASE_NS << 8);
        for _ in 0..APPEND_ATTEMPTS {
            let injected = inner.faults.should_fail(FaultStage::WalAppendIo);
            let outcome = if injected {
                Err(io::Error::other("injected journal append failure"))
            } else {
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&inner.path)
                    .and_then(|mut f| {
                        f.write_all(line.as_bytes())?;
                        f.sync_data()
                    })
            };
            match outcome {
                Ok(()) => {
                    let seq = record.seq;
                    inner.next_seq += 1;
                    inner.appends += 1;
                    inner.since_compact += 1;
                    return Some(seq);
                }
                Err(_) => {
                    inner.io_errors += 1;
                    inner.retry_backoff_ns = inner
                        .retry_backoff_ns
                        .saturating_add(backoff.next_delay_ns());
                }
            }
        }
        inner.degraded = true;
        None
    }

    /// Compacts the journal: the whole file is atomically replaced by a
    /// single snapshot record carrying `state`. Counts as one append
    /// for kill scheduling; a kill here (torn or clean) leaves the old
    /// journal intact, exactly as a crash before the rename would.
    pub fn compact(&self, state: PoolSnapshot) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.dead || inner.degraded {
            return None;
        }
        if let Some(kill) = inner.kill {
            if inner.appends >= kill.after_appends {
                // Compaction is atomic: tearing it means the rename
                // never happened, so torn and clean kills look the same.
                Self::die(&mut inner, None);
                return None;
            }
        }
        let record = WalRecord {
            seq: inner.next_seq,
            op: WalOp::Snapshot(state),
        };
        let line = encode_line(&record);
        let mut backoff = Backoff::new(APPEND_RETRY_BASE_NS, APPEND_RETRY_BASE_NS << 8);
        for _ in 0..APPEND_ATTEMPTS {
            let injected = inner.faults.should_fail(FaultStage::WalAppendIo);
            let outcome = if injected {
                Err(io::Error::other("injected journal compaction failure"))
            } else {
                crate::atomic::write_atomic(&inner.path, line.as_bytes())
            };
            match outcome {
                Ok(()) => {
                    let seq = record.seq;
                    inner.next_seq += 1;
                    inner.appends += 1;
                    inner.since_compact = 0;
                    return Some(seq);
                }
                Err(_) => {
                    inner.io_errors += 1;
                    inner.retry_backoff_ns = inner
                        .retry_backoff_ns
                        .saturating_add(backoff.next_delay_ns());
                }
            }
        }
        inner.degraded = true;
        None
    }

    /// Replays the journal from disk: the valid record prefix, in
    /// append order. A torn tail (from a mid-append crash) is ignored.
    pub fn replay(&self) -> Vec<WalRecord> {
        let path = self.inner.lock().path.clone();
        match fs::read(&path) {
            Ok(bytes) => parse_prefix(&bytes).0,
            Err(_) => Vec::new(),
        }
    }

    /// True once compaction is due (`set_compact_every` reached).
    pub fn needs_compaction(&self) -> bool {
        let inner = self.inner.lock();
        inner.compact_every > 0 && inner.since_compact >= inner.compact_every
    }

    /// True after an armed kill point fired.
    pub fn is_dead(&self) -> bool {
        self.inner.lock().dead
    }

    /// True after persistent append I/O errors disabled journaling.
    pub fn is_degraded(&self) -> bool {
        self.inner.lock().degraded
    }

    /// Append I/O errors seen (injected or real), including retried ones.
    pub fn io_errors(&self) -> u64 {
        self.inner.lock().io_errors
    }

    /// Virtual time charged to append-retry backoff so far.
    pub fn retry_backoff_ns(&self) -> u64 {
        self.inner.lock().retry_backoff_ns
    }

    /// Successful appends since open (compactions included).
    pub fn appends(&self) -> u64 {
        self.inner.lock().appends
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> PathBuf {
        self.inner.lock().path.clone()
    }
}

/// Truncates journal `bytes` to its first `n` whole records and returns
/// the truncated image — the byte-level "crash right after append `n`"
/// view used by the kill-point acceptance sweep to synthesize every
/// prefix without re-running the workload per point.
pub fn truncate_to_records(bytes: &[u8], n: usize) -> Vec<u8> {
    let mut offset = 0usize;
    let mut seen = 0usize;
    while seen < n && offset < bytes.len() {
        match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                offset += nl + 1;
                seen += 1;
            }
            None => break,
        }
    }
    bytes[..offset].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PublishOp, WorkerOp};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fa-wal-{}-{}", name, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("journal.wal")
    }

    fn publish(program: &str) -> WalOp {
        WalOp::PatchPublish(PublishOp {
            program: program.to_owned(),
            patches: Vec::new(),
        })
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip");
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.append(publish("squid")), Some(1));
        assert_eq!(
            wal.append(WalOp::WorkerJoin(WorkerOp { worker: 3 })),
            Some(2)
        );
        let records = wal.replay();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].op.label(), "patch-publish");
        assert_eq!(records[1].op, WalOp::WorkerJoin(WorkerOp { worker: 3 }));
        // A reopened journal continues the sequence.
        let reopened = Wal::open(&path).unwrap();
        assert_eq!(reopened.next_seq(), 3);
        assert_eq!(reopened.append(publish("squid")), Some(3));
    }

    #[test]
    fn torn_tail_is_ignored_and_repaired_on_open() {
        let path = tmp("torn");
        let wal = Wal::open(&path).unwrap();
        wal.append(publish("a"));
        wal.append(publish("b"));
        // Simulate a mid-append crash by hand: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"fawal1 0123456789abcdef {\"seq\":3,").unwrap();
        drop(f);
        assert_eq!(wal.replay().len(), 2, "torn tail excluded from replay");
        let reopened = Wal::open(&path).unwrap();
        assert_eq!(reopened.next_seq(), 3, "repair resumes after the prefix");
        reopened.append(publish("c"));
        assert_eq!(reopened.replay().len(), 3, "append after repair is clean");
    }

    #[test]
    fn corrupt_middle_record_cuts_the_prefix_there() {
        let path = tmp("corrupt");
        let wal = Wal::open(&path).unwrap();
        for p in ["a", "b", "c"] {
            wal.append(publish(p));
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the second record's JSON.
        let second_start = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        bytes[second_start + 30] ^= 0x20;
        let (records, _) = parse_prefix(&bytes);
        assert_eq!(records.len(), 1, "prefix stops at the corrupt record");
    }

    #[test]
    fn clean_kill_stops_all_journaling() {
        let path = tmp("kill-clean");
        let wal = Wal::open(&path).unwrap();
        wal.arm_kill(KillPoint::clean(1));
        assert_eq!(wal.append(publish("a")), Some(1));
        assert_eq!(wal.append(publish("b")), None, "dies at the kill point");
        assert!(wal.is_dead());
        assert_eq!(wal.append(publish("c")), None, "stays dead");
        assert_eq!(wal.replay().len(), 1);
    }

    #[test]
    fn torn_kill_leaves_half_a_record_that_replay_ignores() {
        let path = tmp("kill-torn");
        let wal = Wal::open(&path).unwrap();
        wal.arm_kill(KillPoint::torn(1));
        assert_eq!(wal.append(publish("a")), Some(1));
        assert_eq!(wal.append(publish("b")), None);
        assert!(wal.is_dead());
        let bytes = fs::read(&path).unwrap();
        let (records, valid_len) = parse_prefix(&bytes);
        assert_eq!(records.len(), 1);
        assert!(valid_len < bytes.len(), "torn bytes really hit the disk");
        let recovered = Wal::open(&path).unwrap();
        assert_eq!(recovered.next_seq(), 2);
    }

    #[test]
    fn compaction_replaces_the_log_with_one_snapshot() {
        let path = tmp("compact");
        let wal = Wal::open(&path).unwrap();
        for p in ["a", "b", "c"] {
            wal.append(publish(p));
        }
        assert_eq!(wal.compact(PoolSnapshot::default()), Some(4));
        let records = wal.replay();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 4);
        assert!(matches!(records[0].op, WalOp::Snapshot(_)));
        // Appends continue past the snapshot and replay sees both.
        assert_eq!(wal.append(publish("d")), Some(5));
        assert_eq!(wal.replay().len(), 2);
    }

    #[test]
    fn auto_compaction_trigger_tracks_appends() {
        let path = tmp("auto-compact");
        let wal = Wal::open(&path).unwrap();
        wal.set_compact_every(2);
        assert!(!wal.needs_compaction());
        wal.append(publish("a"));
        wal.append(publish("b"));
        assert!(wal.needs_compaction());
        wal.compact(PoolSnapshot::default());
        assert!(!wal.needs_compaction(), "compaction resets the counter");
    }

    #[test]
    fn injected_append_errors_retry_then_degrade() {
        use fa_faults::Injection;
        let path = tmp("inject");
        // First append: one flake, retried. Second append: all three
        // attempts fail -> degraded.
        let plan = FaultPlan::builder(5)
            .inject(FaultStage::WalAppendIo, Injection::Nth(vec![0, 2, 3, 4]))
            .build();
        let wal = Wal::open(&path).unwrap().with_faults(plan);
        assert_eq!(wal.append(publish("a")), Some(1), "one flake is retried");
        assert!(wal.retry_backoff_ns() > 0, "retry charged virtual backoff");
        assert_eq!(
            wal.append(publish("b")),
            None,
            "persistent failure degrades"
        );
        assert!(wal.is_degraded());
        assert_eq!(wal.io_errors(), 4);
        assert_eq!(wal.replay().len(), 1, "degraded journal keeps its prefix");
    }

    #[test]
    fn truncate_to_records_slices_on_line_boundaries() {
        let path = tmp("truncate");
        let wal = Wal::open(&path).unwrap();
        for p in ["a", "b", "c"] {
            wal.append(publish(p));
        }
        let bytes = fs::read(&path).unwrap();
        for n in 0..=3 {
            let img = truncate_to_records(&bytes, n);
            let (records, len) = parse_prefix(&img);
            assert_eq!(records.len(), n);
            assert_eq!(len, img.len(), "truncated image is fully valid");
        }
        assert_eq!(
            truncate_to_records(&bytes, 9),
            bytes,
            "n past the end is identity"
        );
    }
}
