//! **First-Aid** — surviving and preventing memory management bugs during
//! production runs (EuroSys 2009 reproduction).
//!
//! First-Aid is a lightweight runtime system that, upon a failure caused by
//! a common memory management bug (buffer overflow, dangling pointer
//! read/write, double free, uninitialized read):
//!
//! 1. **diagnoses** the bug type and the memory objects that trigger it by
//!    rolling the program back to previous checkpoints and re-executing it
//!    under combinations of *preventive* and *exposing* environmental
//!    changes ([`DiagnosisEngine`], paper §4);
//! 2. **generates and applies runtime patches** — preventive changes bound
//!    to allocation/deallocation call-sites — that both recover the current
//!    execution and prevent future failures from the same bug
//!    ([`Patch`], [`PatchPool`], paper §2);
//! 3. **validates** that the patches have consistent effects under memory
//!    layout randomization, in parallel on a fork of the process
//!    ([`ValidationEngine`], paper §5);
//! 4. **reports** — produces an on-site diagnostic report with the bug
//!    type, the triggering call-sites, allocation/deallocation traces, and
//!    the illegal accesses the patch neutralizes ([`BugReport`],
//!    paper Fig. 5).
//!
//! The [`FirstAidRuntime`] ties everything together as a supervisor for a
//! simulated process. [`baselines`] provides the two comparison systems of
//! the paper's evaluation: Rx-style recovery (survives but does not
//! prevent) and whole-process restart.
//!
//! # Examples
//!
//! ```
//! use fa_proc::{App, BoxedApp, Fault, Input, ProcessCtx, Response};
//! use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool};
//!
//! #[derive(Clone, Default)]
//! struct Demo;
//! impl App for Demo {
//!     fn name(&self) -> &'static str { "demo" }
//!     fn handle(&mut self, ctx: &mut ProcessCtx, i: &Input) -> Result<Response, Fault> {
//!         let p = ctx.malloc(i.a.max(8))?;
//!         ctx.fill(p, i.a.max(8), 1)?;
//!         ctx.free(p)?;
//!         Ok(Response::bytes(i.a))
//!     }
//!     fn clone_app(&self) -> BoxedApp { Box::new(self.clone()) }
//! }
//!
//! let pool = PatchPool::in_memory();
//! let mut fa = FirstAidRuntime::launch(
//!     Box::new(Demo),
//!     FirstAidConfig::default(),
//!     pool,
//! ).unwrap();
//! let out = fa.feed(fa_proc::InputBuilder::op(0).a(64).build());
//! assert!(out.served);
//! ```

pub mod baselines;
pub mod diagnose;
pub mod harness;
pub mod log;
pub mod metrics;
pub mod patchpool;
pub mod report;
pub mod runtime;
pub mod validate;

pub use baselines::{RestartRuntime, RxRuntime};
pub use diagnose::{
    trap_bug_type, trap_seed_site, DiagnosedBug, Diagnosis, DiagnosisEngine, DiagnosisOutcome,
    EngineConfig,
};
pub use harness::{ReexecOptions, ReplayHarness, RunReport};
pub use metrics::{DegradationMetrics, ThroughputSampler};
pub use patchpool::{
    EventCursor, EventPoll, PatchPool, PoolEvent, PoolEventKind, PoolEvents, QuarantinePolicy,
};
pub use report::BugReport;
pub use runtime::{
    FeedOutcome, FirstAidConfig, FirstAidRuntime, RecoveryKind, RecoveryRecord, RunSummary,
    RuntimeHealth,
};
pub use validate::{ValidationEngine, ValidationOutcome};

// Re-export the trial-execution substrate so drivers (sentry fast paths,
// fleet workers, benches) can run trials without depending on fa-exec
// directly.
pub use fa_exec::{
    Backoff, FaError, FaResult, FaultGate, ManagedSubstrate, ProcessSlab, SlabSubstrate,
    TrialLedger, TrialOutcome, TrialSpec, TrialSubstrate, Watchdog, ROLLBACK_COST_NS,
};

// Re-export the patch and bug-type vocabulary for downstream users.
pub use fa_allocext::{BugType, Patch, PatchSet, PreventiveChange, GENERIC_SITE};
// Re-export the sentry-tier vocabulary (configs, metrics, trap records)
// so supervisors and benches need not depend on fa-sentry directly.
pub use fa_allocext::{SentryConfig, SentryMetrics, TrapKind, TrapRecord};
// Re-export the fault-injection vocabulary so harnesses need not depend
// on fa-faults directly.
pub use fa_faults::{FaultPlan, FaultPlanBuilder, FaultStage, Injection, KillPoint, KillSchedule};
// Re-export the supervision journal so fleet supervisors and benches can
// arm kill points and replay records without depending on fa-wal directly.
pub use fa_wal::{parse_prefix, truncate_to_records, Wal, WalOp, WalRecord};
