//! The central patch pool (paper §3, "Patch management").
//!
//! "Once the diagnostic engine generates a patch, the patch management
//! component stores it in a central patch pool based on the call-site
//! information. First-Aid maintains a patch pool for each program so that
//! the patches do not mix for different programs." Patches are persisted
//! per program executable so subsequent runs and *other processes of the
//! same program* start protected.
//!
//! For fleet operation the pool carries a cheap change signal: a global
//! atomic [`PatchPool::version`] plus a per-program [`PatchPool::epoch`],
//! both bumped on every effective mutation. Idle workers poll the atomic
//! (one relaxed load per input) and re-read their program's patch set
//! only when it moved — no re-launch, no broadcast channel.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use fa_allocext::{Patch, PatchSet};
use fa_faults::{FaultPlan, FaultStage};
use fa_proc::CallSite;

use crate::log;

/// Persistence attempts before the pool gives up and goes in-memory.
const PERSIST_ATTEMPTS: u32 = 3;

#[derive(Default)]
struct Pools {
    by_program: HashMap<String, Vec<Patch>>,
    epoch_by_program: HashMap<String, u64>,
    /// Call-sites whose patches the health monitor revoked as
    /// ineffective. Tombstones: `add` refuses to re-admit patches at
    /// these sites, so a revoked patch can never re-propagate through
    /// the fleet. In-memory only (a fresh deployment may retry).
    revoked_by_program: HashMap<String, HashSet<CallSite>>,
}

/// A shared, optionally persistent pool of runtime patches, keyed by
/// program name.
///
/// Clones share the same underlying pool, so multiple supervised processes
/// of the same program observe each other's patches immediately.
#[derive(Clone)]
pub struct PatchPool {
    inner: Arc<Mutex<Pools>>,
    /// Bumped on every effective `add`/`remove_site`/`revoke`, across
    /// all programs.
    version: Arc<AtomicU64>,
    /// Serializes persistence so concurrent writers cannot rename a stale
    /// snapshot over a newer one.
    io_lock: Arc<Mutex<()>>,
    dir: Option<PathBuf>,
    /// Fault plan consulted before each persistence write.
    faults: FaultPlan,
    /// Set once persistence has failed `PERSIST_ATTEMPTS` times in a
    /// row; from then on the pool operates in-memory only.
    degraded: Arc<AtomicBool>,
    /// Persistence I/O errors absorbed so far (injected or real).
    io_errors: Arc<AtomicU64>,
}

impl PatchPool {
    /// Creates a pool that lives only in memory.
    pub fn in_memory() -> PatchPool {
        PatchPool {
            inner: Arc::new(Mutex::new(Pools::default())),
            version: Arc::new(AtomicU64::new(0)),
            io_lock: Arc::new(Mutex::new(())),
            dir: None,
            faults: FaultPlan::none(),
            degraded: Arc::new(AtomicBool::new(false)),
            io_errors: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a pool persisted as one JSON file per program in `dir`,
    /// loading any existing patch files. Only an unusable directory is
    /// an error; unreadable or damaged individual files are logged and
    /// skipped so a half-broken pool directory never bricks a launch.
    pub fn persistent(dir: impl Into<PathBuf>) -> std::io::Result<PatchPool> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut pools = Pools::default();
        match std::fs::read_dir(&dir) {
            Ok(entries) => {
                for entry in entries {
                    let path = match entry {
                        Ok(e) => e.path(),
                        Err(e) => {
                            log::warn(format!("skipping unreadable entry in {dir:?}: {e}"));
                            continue;
                        }
                    };
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    let Some(program) = name.strip_suffix(".patches.json") else {
                        continue;
                    };
                    let data = match std::fs::read_to_string(&path) {
                        Ok(data) => data,
                        Err(e) => {
                            log::warn(format!("skipping unreadable patch file {path:?}: {e}"));
                            continue;
                        }
                    };
                    match serde_json::from_str::<Vec<Patch>>(&data) {
                        Ok(patches) => {
                            pools.by_program.insert(program.to_owned(), patches);
                        }
                        Err(e) => {
                            // A damaged pool file must not brick the runtime.
                            log::warn(format!("ignoring damaged patch file {path:?}: {e}"));
                        }
                    }
                }
            }
            Err(e) => {
                log::warn(format!(
                    "cannot list patch pool {dir:?}: {e}; starting empty"
                ));
            }
        }
        Ok(PatchPool {
            inner: Arc::new(Mutex::new(pools)),
            version: Arc::new(AtomicU64::new(0)),
            io_lock: Arc::new(Mutex::new(())),
            dir: Some(dir),
            faults: FaultPlan::none(),
            degraded: Arc::new(AtomicBool::new(false)),
            io_errors: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Subjects this pool's persistence writes to `faults`.
    pub fn with_faults(mut self, faults: FaultPlan) -> PatchPool {
        self.faults = faults;
        self
    }

    /// True once the pool gave up on persistence and went in-memory.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Persistence I/O errors absorbed so far.
    pub fn io_error_count(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Returns the patch set for a program (empty if none).
    pub fn get(&self, program: &str) -> PatchSet {
        let pools = self.inner.lock();
        match pools.by_program.get(program) {
            Some(patches) => PatchSet::from_patches(patches.iter().cloned()),
            None => PatchSet::new(),
        }
    }

    /// Returns the patch set and epoch for a program in one lock hold,
    /// so a reader can never observe a set newer than its epoch.
    pub fn get_with_epoch(&self, program: &str) -> (PatchSet, u64) {
        let pools = self.inner.lock();
        let set = match pools.by_program.get(program) {
            Some(patches) => PatchSet::from_patches(patches.iter().cloned()),
            None => PatchSet::new(),
        };
        let epoch = pools.epoch_by_program.get(program).copied().unwrap_or(0);
        (set, epoch)
    }

    /// Returns the global mutation counter (any program).
    ///
    /// One relaxed atomic load — cheap enough to poll per input from
    /// every fleet worker.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Returns the per-program mutation counter.
    pub fn epoch(&self, program: &str) -> u64 {
        self.inner
            .lock()
            .epoch_by_program
            .get(program)
            .copied()
            .unwrap_or(0)
    }

    /// Returns the number of patches stored for a program.
    pub fn len(&self, program: &str) -> usize {
        self.inner
            .lock()
            .by_program
            .get(program)
            .map_or(0, Vec::len)
    }

    /// Returns `true` if no patches are stored for the program.
    pub fn is_empty(&self, program: &str) -> bool {
        self.len(program) == 0
    }

    /// Adds patches for a program, skipping exact duplicates and
    /// patches at revoked call-sites (tombstoned by the health
    /// monitor), and persists. Returns how many patches were actually
    /// admitted.
    pub fn add(&self, program: &str, patches: impl IntoIterator<Item = Patch>) -> usize {
        let mut pools = self.inner.lock();
        let revoked = pools
            .revoked_by_program
            .get(program)
            .cloned()
            .unwrap_or_default();
        let list = pools.by_program.entry(program.to_owned()).or_default();
        let mut added = 0;
        let mut skipped_revoked = 0;
        for p in patches {
            if revoked.contains(&p.site) {
                skipped_revoked += 1;
                continue;
            }
            if !list.contains(&p) {
                list.push(p);
                added += 1;
            }
        }
        if skipped_revoked > 0 {
            log::warn(format!(
                "patch pool for {program}: refused {skipped_revoked} patch(es) at revoked call-site(s)"
            ));
        }
        if added == 0 {
            return 0;
        }
        *pools
            .epoch_by_program
            .entry(program.to_owned())
            .or_insert(0) += 1;
        drop(pools);
        self.version.fetch_add(1, Ordering::AcqRel);
        self.persist(program);
        added
    }

    /// Revokes all patches at `site`: removes them from the pool and
    /// tombstones the site so `add` refuses to re-admit them (one
    /// worker's ineffective patch must not keep re-poisoning the
    /// fleet). Bumps the epoch so sibling workers uninstall the patch
    /// on their next refresh. Returns `false` if the site was already
    /// revoked and held no patches.
    pub fn revoke(&self, program: &str, site: CallSite) -> bool {
        let mut pools = self.inner.lock();
        let newly_tombstoned = pools
            .revoked_by_program
            .entry(program.to_owned())
            .or_default()
            .insert(site);
        let removed = match pools.by_program.get_mut(program) {
            Some(list) => {
                let before = list.len();
                list.retain(|p| p.site != site);
                list.len() != before
            }
            None => false,
        };
        if !newly_tombstoned && !removed {
            return false;
        }
        *pools
            .epoch_by_program
            .entry(program.to_owned())
            .or_insert(0) += 1;
        drop(pools);
        self.version.fetch_add(1, Ordering::AcqRel);
        self.persist(program);
        true
    }

    /// Returns `true` if patches at `site` have been revoked.
    pub fn is_revoked(&self, program: &str, site: CallSite) -> bool {
        self.inner
            .lock()
            .revoked_by_program
            .get(program)
            .is_some_and(|s| s.contains(&site))
    }

    /// Number of revoked (tombstoned) call-sites for a program.
    pub fn revoked_count(&self, program: &str) -> usize {
        self.inner
            .lock()
            .revoked_by_program
            .get(program)
            .map_or(0, HashSet::len)
    }

    /// Removes all patches at the given call-site (validation failure).
    pub fn remove_site(&self, program: &str, site: fa_proc::CallSite) {
        let mut pools = self.inner.lock();
        let Some(list) = pools.by_program.get_mut(program) else {
            return;
        };
        let before = list.len();
        list.retain(|p| p.site != site);
        if list.len() == before {
            return;
        }
        *pools
            .epoch_by_program
            .entry(program.to_owned())
            .or_insert(0) += 1;
        drop(pools);
        self.version.fetch_add(1, Ordering::AcqRel);
        self.persist(program);
    }

    /// Persists atomically: write a temp file in the same directory, then
    /// rename over the target, so a crash mid-write can never leave a
    /// torn `*.patches.json` for the loader to discard.
    ///
    /// Takes the pool's IO lock and re-reads the current patch list under
    /// it, so the file on disk always ends at the newest state even when
    /// several workers persist concurrently.
    ///
    /// I/O errors (injected via the fault plan or real) are retried up
    /// to [`PERSIST_ATTEMPTS`] times; after that the pool flips to
    /// degraded in-memory operation — patches keep working for this
    /// deployment, they just will not survive it.
    fn persist(&self, program: &str) {
        let Some(dir) = &self.dir else { return };
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let _io = self.io_lock.lock();
        let snapshot = self
            .inner
            .lock()
            .by_program
            .get(program)
            .cloned()
            .unwrap_or_default();
        let path = dir.join(format!("{program}.patches.json"));
        let json = match serde_json::to_string_pretty(&snapshot) {
            Ok(json) => json,
            Err(e) => {
                log::warn(format!("failed to serialize patches: {e}"));
                return;
            }
        };
        let tmp = dir.join(format!(
            ".{program}.patches.json.tmp-{}",
            std::process::id()
        ));
        for attempt in 1..=PERSIST_ATTEMPTS {
            match self.try_write(&tmp, &path, &json) {
                Ok(()) => return,
                Err(e) => {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    log::warn(format!(
                        "patch persistence for {program} failed \
                         (attempt {attempt}/{PERSIST_ATTEMPTS}): {e}"
                    ));
                }
            }
        }
        self.degraded.store(true, Ordering::Relaxed);
        log::warn(format!(
            "patch persistence for {program} failed {PERSIST_ATTEMPTS} times; \
             continuing in-memory (degraded)"
        ));
    }

    /// One temp-write + rename attempt, subject to the fault plan.
    fn try_write(&self, tmp: &Path, path: &Path, json: &str) -> std::io::Result<()> {
        if self.faults.should_fail(FaultStage::PoolPersistIo) {
            return Err(std::io::Error::other("injected pool persistence fault"));
        }
        std::fs::write(tmp, json)?;
        if let Err(e) = std::fs::rename(tmp, path) {
            let _ = std::fs::remove_file(tmp);
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::BugType;
    use fa_proc::{CallSite, SymbolTable};

    fn patch(bug: BugType, id: u64) -> Patch {
        Patch::new(bug, CallSite([id, 0, 0]), &SymbolTable::new())
    }

    #[test]
    fn per_program_isolation() {
        let pool = PatchPool::in_memory();
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        pool.add("squid", [patch(BugType::BufferOverflow, 2)]);
        assert_eq!(pool.len("apache"), 1);
        assert_eq!(pool.len("squid"), 1);
        assert!(pool
            .get("apache")
            .match_dealloc(CallSite([1, 0, 0]))
            .is_some());
        assert!(pool
            .get("apache")
            .match_alloc(CallSite([2, 0, 0]))
            .is_none());
    }

    #[test]
    fn duplicates_skipped() {
        let pool = PatchPool::in_memory();
        pool.add("m4", [patch(BugType::DanglingRead, 1)]);
        pool.add("m4", [patch(BugType::DanglingRead, 1)]);
        assert_eq!(pool.len("m4"), 1);
    }

    #[test]
    fn clones_share_state() {
        let pool = PatchPool::in_memory();
        let other = pool.clone();
        pool.add("cvs", [patch(BugType::DoubleFree, 3)]);
        assert_eq!(other.len("cvs"), 1, "other process sees the patch");
    }

    #[test]
    fn remove_site_deletes() {
        let pool = PatchPool::in_memory();
        pool.add(
            "bc",
            [
                patch(BugType::BufferOverflow, 1),
                patch(BugType::BufferOverflow, 2),
            ],
        );
        pool.remove_site("bc", CallSite([1, 0, 0]));
        assert_eq!(pool.len("bc"), 1);
    }

    #[test]
    fn version_and_epoch_track_effective_mutations() {
        let pool = PatchPool::in_memory();
        assert_eq!(pool.version(), 0);
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        assert_eq!(pool.version(), 1);
        assert_eq!(pool.epoch("apache"), 1);
        assert_eq!(pool.epoch("squid"), 0, "other programs unaffected");

        // A duplicate add is not a mutation: no spurious re-reads.
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        assert_eq!(pool.version(), 1);
        assert_eq!(pool.epoch("apache"), 1);

        // Removing a missing site is not a mutation either.
        pool.remove_site("apache", CallSite([99, 0, 0]));
        assert_eq!(pool.version(), 1);

        pool.remove_site("apache", CallSite([1, 0, 0]));
        assert_eq!(pool.version(), 2);
        assert_eq!(pool.epoch("apache"), 2);

        let (set, epoch) = pool.get_with_epoch("apache");
        assert!(set.is_empty());
        assert_eq!(epoch, 2);
    }

    #[test]
    fn concurrent_adds_and_gets_lose_nothing() {
        // Seeds the fleet's sharing guarantee: many threads add distinct
        // patches for one program while readers snapshot continuously;
        // every patch must survive and every snapshot must be internally
        // consistent (alloc/dealloc indexes agree with its patch list).
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 25;
        let pool = PatchPool::in_memory();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for k in 0..PER_WRITER {
                        let id = 1 + w * PER_WRITER + k;
                        let bug = if id.is_multiple_of(2) {
                            BugType::BufferOverflow
                        } else {
                            BugType::DanglingRead
                        };
                        pool.add("apache", [patch(bug, id)]);
                        // Duplicate adds from racing diagnoses must stay
                        // idempotent under contention too.
                        pool.add("apache", [patch(bug, id)]);
                    }
                })
            })
            .collect();

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let mut last_len = 0;
                    let mut last_epoch = 0;
                    while last_len < (WRITERS * PER_WRITER) as usize {
                        let (set, epoch) = pool.get_with_epoch("apache");
                        // Sizes and epochs only grow (no lost updates).
                        assert!(set.len() >= last_len, "snapshot shrank");
                        assert!(epoch >= last_epoch, "epoch went backwards");
                        // Internal consistency: every patch in the
                        // snapshot is findable through its index.
                        for p in set.patches() {
                            let hit = if p.at_allocation() {
                                set.match_alloc(p.site)
                            } else {
                                set.match_dealloc(p.site)
                            };
                            assert!(hit.is_some(), "snapshot lost its own patch");
                        }
                        last_len = set.len();
                        last_epoch = epoch;
                    }
                })
            })
            .collect();

        for t in writers {
            t.join().unwrap();
        }
        for t in readers {
            t.join().unwrap();
        }

        assert_eq!(pool.len("apache"), (WRITERS * PER_WRITER) as usize);
        assert_eq!(pool.epoch("apache"), WRITERS * PER_WRITER);
        assert_eq!(pool.version(), WRITERS * PER_WRITER);
    }

    #[test]
    fn revoked_sites_tombstone_and_block_readdition() {
        let pool = PatchPool::in_memory();
        assert_eq!(pool.add("apache", [patch(BugType::DanglingRead, 1)]), 1);
        assert!(!pool.is_revoked("apache", CallSite([1, 0, 0])));

        assert!(pool.revoke("apache", CallSite([1, 0, 0])));
        assert_eq!(pool.len("apache"), 0);
        assert!(pool.is_revoked("apache", CallSite([1, 0, 0])));
        assert_eq!(pool.revoked_count("apache"), 1);
        let epoch_after_revoke = pool.epoch("apache");

        // Re-adding the same patch is refused with a warning.
        let (added, lines) =
            log::captured(|| pool.add("apache", [patch(BugType::DanglingRead, 1)]));
        assert_eq!(added, 0);
        assert_eq!(pool.len("apache"), 0);
        assert!(
            lines.iter().any(|l| l.contains("revoked")),
            "refusal is logged: {lines:?}"
        );
        assert_eq!(
            pool.epoch("apache"),
            epoch_after_revoke,
            "a refused add is not a mutation"
        );

        // Revoking again is a no-op; other sites are unaffected.
        assert!(!pool.revoke("apache", CallSite([1, 0, 0])));
        assert_eq!(pool.add("apache", [patch(BugType::DanglingRead, 2)]), 1);
        assert!(!pool.is_revoked("squid", CallSite([1, 0, 0])));
    }

    #[test]
    fn revoke_and_rediagnosis_land_within_one_reader_refresh() {
        // The race the epoch protocol must survive: a worker's patch for
        // a bug signature is revoked as ineffective, and — before any
        // sibling refreshes — another worker re-diagnoses the *same*
        // signature, offering both its stale copy of the revoked patch
        // and a fresh patch at the true call-site. A reader's next
        // refresh must see the tombstone and the replacement at once;
        // the refused stale copy must not count as a mutation.
        let pool = PatchPool::in_memory();
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);

        // One reader refresh window starts here.
        let (set0, epoch0) = pool.get_with_epoch("apache");
        assert_eq!(set0.patches().len(), 1);

        assert!(pool.revoke("apache", CallSite([1, 0, 0])));
        let version_after_revoke = pool.version();
        assert_eq!(pool.epoch("apache"), epoch0 + 1);

        let (added, lines) = log::captured(|| {
            pool.add(
                "apache",
                [
                    patch(BugType::DanglingRead, 1), // stale copy of the revoked patch
                    patch(BugType::DanglingRead, 7), // fresh patch, same signature
                ],
            )
        });
        assert_eq!(added, 1, "only the fresh call-site is admitted");
        assert!(
            lines.iter().any(|l| l.contains("revoked")),
            "the refused stale copy is logged: {lines:?}"
        );
        assert_eq!(
            pool.version(),
            version_after_revoke + 1,
            "one bump for the fresh patch; the refused copy is no mutation"
        );

        // The reader's next refresh observes both effects atomically:
        // exactly two epoch steps (revoke, fresh add), the revoked site
        // gone, the replacement present.
        let (set1, epoch1) = pool.get_with_epoch("apache");
        assert_eq!(epoch1, epoch0 + 2);
        assert!(
            !set1.patches().iter().any(|p| p.site == CallSite([1, 0, 0])),
            "revoked site must be absent after refresh"
        );
        assert!(
            set1.patches().iter().any(|p| p.site == CallSite([7, 0, 0])),
            "replacement patch for the same signature must be visible"
        );
        assert!(pool.is_revoked("apache", CallSite([1, 0, 0])));
    }

    #[test]
    fn pool_io_failures_retry_then_degrade_in_memory() {
        use fa_faults::{FaultPlan, FaultStage, Injection};

        let dir = std::env::temp_dir().join(format!("fa-pool-io-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::builder(9)
            .inject(FaultStage::PoolPersistIo, Injection::EveryNth(1))
            .build();
        let pool = PatchPool::persistent(&dir).unwrap().with_faults(plan);

        let (_, lines) = log::captured(|| pool.add("squid", [patch(BugType::BufferOverflow, 1)]));
        assert_eq!(pool.io_error_count(), 3, "three attempts, three errors");
        assert!(pool.is_degraded());
        assert!(
            lines.iter().any(|l| l.contains("continuing in-memory")),
            "degradation is logged: {lines:?}"
        );

        // The pool still works — in memory.
        assert_eq!(pool.len("squid"), 1);
        pool.add("squid", [patch(BugType::BufferOverflow, 2)]);
        assert_eq!(pool.len("squid"), 2);
        assert_eq!(
            pool.io_error_count(),
            3,
            "a degraded pool stops attempting I/O"
        );
        assert!(
            !dir.join("squid.patches.json").exists(),
            "nothing reached disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fa-pool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let pool = PatchPool::persistent(&dir).unwrap();
            pool.add("pine", [patch(BugType::BufferOverflow, 7)]);
        }
        {
            // A fresh pool (a later run of the program) sees the patch.
            let pool = PatchPool::persistent(&dir).unwrap();
            assert_eq!(pool.len("pine"), 1);
            assert!(pool.get("pine").match_alloc(CallSite([7, 0, 0])).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("fa-pool-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pool = PatchPool::persistent(&dir).unwrap();
        for id in 1..=20 {
            pool.add("mutt", [patch(BugType::BufferOverflow, id)]);
        }
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["mutt.patches.json".to_string()], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_pool_file_is_ignored_with_a_warning() {
        let dir = std::env::temp_dir().join(format!("fa-pool-dmg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("mutt.patches.json"), b"{not json").unwrap();
        let (pool, lines) = log::captured(|| PatchPool::persistent(&dir).unwrap());
        assert_eq!(pool.len("mutt"), 0);
        assert!(
            lines.iter().any(|l| l.contains("damaged patch file")),
            "warning goes through the log facility: {lines:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
