//! The central patch pool (paper §3, "Patch management").
//!
//! "Once the diagnostic engine generates a patch, the patch management
//! component stores it in a central patch pool based on the call-site
//! information. First-Aid maintains a patch pool for each program so that
//! the patches do not mix for different programs." Patches are persisted
//! per program executable so subsequent runs and *other processes of the
//! same program* start protected.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use fa_allocext::{Patch, PatchSet};

#[derive(Default)]
struct Pools {
    by_program: HashMap<String, Vec<Patch>>,
}

/// A shared, optionally persistent pool of runtime patches, keyed by
/// program name.
///
/// Clones share the same underlying pool, so multiple supervised processes
/// of the same program observe each other's patches immediately.
#[derive(Clone)]
pub struct PatchPool {
    inner: Arc<Mutex<Pools>>,
    dir: Option<PathBuf>,
}

impl PatchPool {
    /// Creates a pool that lives only in memory.
    pub fn in_memory() -> PatchPool {
        PatchPool {
            inner: Arc::new(Mutex::new(Pools::default())),
            dir: None,
        }
    }

    /// Creates a pool persisted as one JSON file per program in `dir`,
    /// loading any existing patch files.
    pub fn persistent(dir: impl Into<PathBuf>) -> std::io::Result<PatchPool> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut pools = Pools::default();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(program) = name.strip_suffix(".patches.json") else {
                continue;
            };
            let data = std::fs::read_to_string(&path)?;
            match serde_json::from_str::<Vec<Patch>>(&data) {
                Ok(patches) => {
                    pools.by_program.insert(program.to_owned(), patches);
                }
                Err(e) => {
                    // A damaged pool file must not brick the runtime.
                    eprintln!("first-aid: ignoring damaged patch file {path:?}: {e}");
                }
            }
        }
        Ok(PatchPool {
            inner: Arc::new(Mutex::new(pools)),
            dir: Some(dir),
        })
    }

    /// Returns the patch set for a program (empty if none).
    pub fn get(&self, program: &str) -> PatchSet {
        let pools = self.inner.lock();
        match pools.by_program.get(program) {
            Some(patches) => PatchSet::from_patches(patches.iter().cloned()),
            None => PatchSet::new(),
        }
    }

    /// Returns the number of patches stored for a program.
    pub fn len(&self, program: &str) -> usize {
        self.inner
            .lock()
            .by_program
            .get(program)
            .map_or(0, Vec::len)
    }

    /// Returns `true` if no patches are stored for the program.
    pub fn is_empty(&self, program: &str) -> bool {
        self.len(program) == 0
    }

    /// Adds patches for a program, skipping exact duplicates, and persists.
    pub fn add(&self, program: &str, patches: impl IntoIterator<Item = Patch>) {
        let mut pools = self.inner.lock();
        let list = pools.by_program.entry(program.to_owned()).or_default();
        for p in patches {
            if !list.contains(&p) {
                list.push(p);
            }
        }
        let snapshot = list.clone();
        drop(pools);
        self.persist(program, &snapshot);
    }

    /// Removes all patches at the given call-site (validation failure).
    pub fn remove_site(&self, program: &str, site: fa_proc::CallSite) {
        let mut pools = self.inner.lock();
        let Some(list) = pools.by_program.get_mut(program) else {
            return;
        };
        list.retain(|p| p.site != site);
        let snapshot = list.clone();
        drop(pools);
        self.persist(program, &snapshot);
    }

    fn persist(&self, program: &str, patches: &[Patch]) {
        let Some(dir) = &self.dir else { return };
        let path = dir.join(format!("{program}.patches.json"));
        match serde_json::to_string_pretty(patches) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("first-aid: failed to persist patches to {path:?}: {e}");
                }
            }
            Err(e) => eprintln!("first-aid: failed to serialize patches: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::BugType;
    use fa_proc::{CallSite, SymbolTable};

    fn patch(bug: BugType, id: u64) -> Patch {
        Patch::new(bug, CallSite([id, 0, 0]), &SymbolTable::new())
    }

    #[test]
    fn per_program_isolation() {
        let pool = PatchPool::in_memory();
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        pool.add("squid", [patch(BugType::BufferOverflow, 2)]);
        assert_eq!(pool.len("apache"), 1);
        assert_eq!(pool.len("squid"), 1);
        assert!(pool.get("apache").match_dealloc(CallSite([1, 0, 0])).is_some());
        assert!(pool.get("apache").match_alloc(CallSite([2, 0, 0])).is_none());
    }

    #[test]
    fn duplicates_skipped() {
        let pool = PatchPool::in_memory();
        pool.add("m4", [patch(BugType::DanglingRead, 1)]);
        pool.add("m4", [patch(BugType::DanglingRead, 1)]);
        assert_eq!(pool.len("m4"), 1);
    }

    #[test]
    fn clones_share_state() {
        let pool = PatchPool::in_memory();
        let other = pool.clone();
        pool.add("cvs", [patch(BugType::DoubleFree, 3)]);
        assert_eq!(other.len("cvs"), 1, "other process sees the patch");
    }

    #[test]
    fn remove_site_deletes() {
        let pool = PatchPool::in_memory();
        pool.add(
            "bc",
            [patch(BugType::BufferOverflow, 1), patch(BugType::BufferOverflow, 2)],
        );
        pool.remove_site("bc", CallSite([1, 0, 0]));
        assert_eq!(pool.len("bc"), 1);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fa-pool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let pool = PatchPool::persistent(&dir).unwrap();
            pool.add("pine", [patch(BugType::BufferOverflow, 7)]);
        }
        {
            // A fresh pool (a later run of the program) sees the patch.
            let pool = PatchPool::persistent(&dir).unwrap();
            assert_eq!(pool.len("pine"), 1);
            assert!(pool.get("pine").match_alloc(CallSite([7, 0, 0])).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_pool_file_is_ignored() {
        let dir = std::env::temp_dir().join(format!("fa-pool-dmg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("mutt.patches.json"), b"{not json").unwrap();
        let pool = PatchPool::persistent(&dir).unwrap();
        assert_eq!(pool.len("mutt"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
