//! Runtime diagnostics with a swappable sink.
//!
//! First-Aid emits a handful of operational warnings (damaged patch
//! files, failed persistence). With one supervised process these used to
//! go straight to stderr; a fleet of workers would interleave them
//! mid-line, and tests could not observe them at all. Every diagnostic
//! now goes through [`warn`], and the process-wide sink can be swapped:
//! stderr (default), discard, or capture into a buffer that tests and
//! the fleet supervisor drain via [`capture`] / [`Capture::drain`].
//!
//! The sink lock is a `parking_lot` mutex: panic-transparent, so a
//! worker thread that dies mid-trial cannot poison the sink and turn
//! every later diagnostic into a second panic.

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

/// Where diagnostics go.
enum Sink {
    /// Write each line to stderr (the default).
    Stderr,
    /// Drop diagnostics.
    Discard,
    /// Append lines to a shared buffer.
    Capture(Capture),
}

/// A shared, drainable diagnostic buffer.
#[derive(Clone, Default)]
pub struct Capture {
    lines: Arc<Mutex<Vec<String>>>,
}

impl Capture {
    /// Creates an empty capture buffer.
    pub fn new() -> Capture {
        Capture::default()
    }

    /// Takes all captured lines, leaving the buffer empty.
    pub fn drain(&self) -> Vec<String> {
        std::mem::take(&mut self.lines.lock())
    }

    /// Returns the number of captured lines.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// Returns `true` if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::Stderr))
}

/// Emits one diagnostic line (no trailing newline needed).
pub fn warn(line: impl AsRef<str>) {
    let line = line.as_ref();
    match &*sink().lock() {
        Sink::Stderr => eprintln!("first-aid: {line}"),
        Sink::Discard => {}
        Sink::Capture(capture) => {
            capture.lines.lock().push(line.to_owned());
        }
    }
}

/// Routes diagnostics to stderr (the default).
pub fn use_stderr() {
    *sink().lock() = Sink::Stderr;
}

/// Silences diagnostics.
pub fn use_discard() {
    *sink().lock() = Sink::Discard;
}

/// Routes diagnostics into a fresh capture buffer and returns it.
///
/// The sink is process-wide; tests that capture should restore
/// [`use_stderr`] when done (see [`captured`] for a scoped helper).
pub fn capture() -> Capture {
    let cap = Capture::new();
    *sink().lock() = Sink::Capture(cap.clone());
    cap
}

/// Runs `f` with diagnostics captured, restoring the stderr sink after.
///
/// Returns `f`'s result alongside the captured lines. Note the sink is
/// process-global: concurrent tests capturing simultaneously will see
/// each other's lines.
pub fn captured<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    let cap = capture();
    let result = f();
    let lines = cap.drain();
    use_stderr();
    (result, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_and_drains() {
        let ((), lines) = captured(|| {
            warn("one");
            warn(format!("two {}", 2));
        });
        assert_eq!(lines, vec!["one".to_string(), "two 2".to_string()]);
    }
}
