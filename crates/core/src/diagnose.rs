//! The diagnosis engine (paper §4).
//!
//! Phase 1 identifies the latest checkpoint before the bug-triggering
//! point; phase 2 identifies the bug types (the `Su`/`Si` probe algorithm)
//! and the bug-triggering call-sites — directly from canary corruption and
//! deallocation parameters for overflow / dangling write / double free, and
//! by O(M·log N) binary search over call-sites for dangling read and
//! uninitialized read.
//!
//! # Parallel speculative trials
//!
//! With [`EngineConfig::parallelism`] > 1 the engine runs *waves* of
//! rollback/re-execution trials concurrently. Every trial is a pure
//! function of its [`TrialSpec`] (re-execution always begins with a
//! rollback, so no state leaks between trials), which makes it sound to
//! execute the trials the sequential algorithm *would* run next — both
//! branches of upcoming decisions — speculatively on forked processes
//! restored from cloned checkpoint snapshots (cheap: COW `Arc` clones per
//! page). The driver then consumes results from the wave cache in the
//! exact sequential order; a prediction miss discards the cache and starts
//! a new wave. Virtual time is charged as the running *maximum* over the
//! trials of a wave rather than their sum, modelling concurrent execution;
//! every other ledger quantity (rollback count, log, fault-plan
//! consultation order, and the resulting [`Diagnosis`]) is identical to
//! the sequential engine's.

use std::cell::Cell;
use std::collections::{HashSet, VecDeque};

use fa_allocext::{BugType, ChangePlan, Manifestation, Mode, Patch, TrapKind, TrapRecord};
use fa_checkpoint::CheckpointManager;
use fa_faults::{FaultPlan, FaultStage};
use fa_mem::AccessKind;
use fa_proc::{CallSite, Process};

use crate::harness::{ReexecOptions, ReplayHarness, RunReport};

/// Maps a sentry trap to the bug type it evidences.
pub fn trap_bug_type(trap: &TrapRecord) -> BugType {
    match trap.kind {
        TrapKind::GuardHit | TrapKind::CanaryOnFree => BugType::BufferOverflow,
        TrapKind::DoubleFreeSlot => BugType::DoubleFree,
        TrapKind::UninitReadSlot => BugType::UninitRead,
        TrapKind::PoisonAccess => match trap.access {
            Some(AccessKind::Write) => BugType::DanglingWrite,
            _ => BugType::DanglingRead,
        },
    }
}

/// The call-site a sentry trap suggests as the patch point for `bug`.
pub fn trap_seed_site(trap: &TrapRecord, bug: BugType) -> Option<CallSite> {
    if bug.patches_at_allocation() {
        Some(trap.alloc_site)
    } else {
        trap.free_site
    }
}

/// Tunables of the diagnosis engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Success margin past the failure point, as a multiple of the
    /// checkpoint interval (the paper uses 3).
    pub margin_intervals: u64,
    /// How many checkpoints phase 1 tries before declaring the bug
    /// non-patchable.
    pub max_checkpoint_tries: usize,
    /// Hard cap on total re-executions (the diagnosis timeout).
    pub max_reexecutions: usize,
    /// Run the heap-integrity monitor during re-executions (must match
    /// the deployment's normal-execution monitors).
    pub integrity_check: bool,
    /// Hard deadline on total diagnosis time (virtual ns); `0` means
    /// unlimited. A diagnosis that blows the deadline is abandoned as
    /// non-patchable and the runtime descends the degradation ladder.
    pub deadline_ns: u64,
    /// How many times a flaky re-execution (one that dies for reasons
    /// unrelated to the bug) is retried before the iteration is
    /// written off as failed.
    pub reexec_retries: u32,
    /// Base backoff charged per flaky retry; doubles per attempt.
    pub retry_backoff_ns: u64,
    /// Width of a speculative trial wave (worker threads running
    /// independent rollback/re-execution trials concurrently). `1`
    /// reproduces the sequential engine byte for byte; larger widths
    /// produce the identical [`Diagnosis`] while charging less virtual
    /// time (max over a wave instead of the sum).
    pub parallelism: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            margin_intervals: 3,
            max_checkpoint_tries: 8,
            max_reexecutions: 96,
            integrity_check: false,
            deadline_ns: 120_000_000_000,
            reexec_retries: 2,
            retry_backoff_ns: 2_000_000,
            parallelism: 1,
        }
    }
}

/// One diagnosed bug: its type, triggering call-sites, and evidence.
#[derive(Clone, Debug)]
pub struct DiagnosedBug {
    /// The bug type.
    pub bug: BugType,
    /// Allocation or deallocation call-sites of the bug-triggering
    /// objects (the patch application points).
    pub sites: Vec<CallSite>,
    /// Manifestations supporting the conclusion.
    pub evidence: Vec<Manifestation>,
}

/// The result of a completed diagnosis.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// All diagnosed bugs (the identified set `Si` with call-sites).
    pub bugs: Vec<DiagnosedBug>,
    /// The checkpoint the patches take effect from.
    pub checkpoint_id: u64,
    /// Number of rollback/re-execution iterations performed.
    pub rollbacks: usize,
    /// Virtual time consumed by diagnosis.
    pub elapsed_ns: u64,
    /// Human-readable diagnosis log (part of the bug report).
    pub log: Vec<String>,
    /// End of the success region used as the re-execution criterion.
    pub until_cursor: usize,
}

/// What the diagnosis concluded.
#[derive(Clone, Debug)]
pub enum DiagnosisOutcome {
    /// Deterministic memory bugs were identified; patches follow.
    Diagnosed(Diagnosis),
    /// A plain re-execution with only timing changes succeeded: the
    /// failure was non-deterministic; execution simply continues.
    NonDeterministic {
        /// Iterations used.
        rollbacks: usize,
        /// Virtual time consumed.
        elapsed_ns: u64,
        /// Diagnosis log.
        log: Vec<String>,
    },
    /// The engine timed out or no checkpoint survives the region; other
    /// recovery schemes (e.g. restart) must take over.
    NonPatchable {
        /// Iterations used.
        rollbacks: usize,
        /// Virtual time consumed.
        elapsed_ns: u64,
        /// Diagnosis log.
        log: Vec<String>,
    },
}

impl Diagnosis {
    /// Generates the runtime patches for this diagnosis.
    pub fn patches(&self, symbols: &fa_proc::SymbolTable) -> Vec<Patch> {
        self.bugs
            .iter()
            .flat_map(|d| d.sites.iter().map(|&s| Patch::new(d.bug, s, symbols)))
            .collect()
    }
}

/// A fully-specified re-execution trial: everything that determines a
/// [`RunReport`]. Re-executions always begin with a rollback, so a trial's
/// outcome is a pure function of this spec — the property that makes
/// speculative execution sound.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TrialSpec {
    ckpt_id: u64,
    plan: ChangePlan,
    mark: bool,
    timing_seed: u64,
    until: usize,
}

/// Results of the most recent speculative wave, keyed by trial spec.
#[derive(Default)]
struct SpecCache {
    entries: Vec<(TrialSpec, RunReport)>,
    /// Virtual time already charged for the current wave. Committing a
    /// trial charges only the increment over this running maximum, so a
    /// fully-consumed wave costs `max` over its trials instead of the sum
    /// — the trials ran concurrently.
    charged: u64,
}

/// The diagnosis engine. Almost stateless; state lives in the process,
/// the checkpoint manager, and the returned [`Diagnosis`] — the engine
/// itself only tracks the flaky-retry and speculation counters of the
/// current diagnosis and holds the fault plan it consults before each
/// committed re-execution.
pub struct DiagnosisEngine {
    config: EngineConfig,
    faults: FaultPlan,
    retries: Cell<usize>,
    spec_launched: Cell<usize>,
    spec_hits: Cell<usize>,
    spec_wasted: Cell<usize>,
    waves: Cell<usize>,
}

struct Ledger {
    rollbacks: usize,
    elapsed_ns: u64,
    log: Vec<String>,
}

impl Ledger {
    fn charge(&mut self, r: &RunReport) {
        self.rollbacks += 1;
        self.elapsed_ns += r.elapsed_ns;
    }
}

impl DiagnosisEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_faults(config, FaultPlan::none())
    }

    /// Creates an engine whose re-executions are subject to `faults`.
    pub fn with_faults(config: EngineConfig, faults: FaultPlan) -> Self {
        DiagnosisEngine {
            config,
            faults,
            retries: Cell::new(0),
            spec_launched: Cell::new(0),
            spec_hits: Cell::new(0),
            spec_wasted: Cell::new(0),
            waves: Cell::new(0),
        }
    }

    /// Flaky re-executions retried so far by this engine.
    pub fn retries_used(&self) -> usize {
        self.retries.get()
    }

    /// Speculative trials launched by the parallel scheduler.
    pub fn speculative_trials(&self) -> usize {
        self.spec_launched.get()
    }

    /// Speculative results consumed by later diagnosis steps.
    pub fn speculative_hits(&self) -> usize {
        self.spec_hits.get()
    }

    /// Speculative results discarded (mispredicted or superseded).
    pub fn speculative_wasted(&self) -> usize {
        self.spec_wasted.get()
    }

    /// Waves that ran with at least one speculative trial.
    pub fn parallel_waves(&self) -> usize {
        self.waves.get()
    }

    /// True once the ledger has consumed the diagnosis deadline.
    fn past_deadline(&self, ledger: &Ledger) -> bool {
        self.config.deadline_ns > 0 && ledger.elapsed_ns >= self.config.deadline_ns
    }

    /// Diagnoses the pending failure of `process`.
    ///
    /// On return the process is in some rolled-back re-executed state; the
    /// caller (the runtime) is expected to roll back once more to the
    /// diagnosis checkpoint, install patches, and resume.
    ///
    /// # Panics
    ///
    /// Panics if the process has no pending failure.
    pub fn diagnose(&self, process: &mut Process, manager: &CheckpointManager) -> DiagnosisOutcome {
        let failure = process
            .failure
            .clone()
            .expect("diagnose requires a pending failure");
        let f_idx = failure.input_index;
        let margin_ns = self.config.margin_intervals * manager.interval_ns();
        let until = ReplayHarness::success_end_cursor(process, f_idx, margin_ns);
        let mut ledger = Ledger {
            rollbacks: 0,
            elapsed_ns: 0,
            log: vec![format!(
                "failure: {} at input #{f_idx} (t={:.3}s); success region ends at #{until}",
                failure.fault,
                failure.at_ns as f64 / 1e9
            )],
        };
        let mut cache = SpecCache::default();

        // Injected wedge: the whole diagnosis hangs and blows its
        // deadline without producing anything.
        if self.faults.should_fail(FaultStage::DiagnosisTimeout) {
            let budget = if self.config.deadline_ns > 0 {
                self.config.deadline_ns
            } else {
                1_000_000_000
            };
            ledger.elapsed_ns += budget;
            ledger.log.push(format!(
                "diagnosis deadline exceeded after {:.3}s (injected wedge); non-patchable",
                budget as f64 / 1e9
            ));
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }

        // --------------------------------------------------------------
        // Phase 0: non-determinism probe at the latest checkpoint.
        // --------------------------------------------------------------
        let Some(newest) = manager.nth_newest(0) else {
            ledger
                .log
                .push("no checkpoints retained; non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        };
        let newest_id = newest.id;
        let spec = TrialSpec {
            ckpt_id: newest_id,
            plan: ChangePlan::none(),
            mark: false,
            timing_seed: 0xfa11,
            until,
        };
        // Speculate the deterministic branch: phase 1 at the newest
        // checkpoint, then the phase-2 probe chain assuming it survives.
        let mut tail = vec![Self::phase1_spec(newest_id, until)];
        tail.extend(Self::phase2_tail(newest_id, &BugType::ALL, &[], until));
        let r = self.fetch(process, manager, &mut cache, &mut ledger, spec, tail);
        if r.passed {
            ledger.log.push(
                "plain re-execution with timing changes passed: non-deterministic bug".into(),
            );
            return DiagnosisOutcome::NonDeterministic {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }
        ledger
            .log
            .push("plain re-execution failed again: deterministic bug".into());

        // --------------------------------------------------------------
        // Phase 1: find the latest checkpoint before the trigger point.
        // --------------------------------------------------------------
        let mut chosen: Option<u64> = None;
        for k in 0..self.config.max_checkpoint_tries {
            if self.past_deadline(&ledger) {
                ledger
                    .log
                    .push("diagnosis deadline exceeded during phase 1; non-patchable".into());
                return DiagnosisOutcome::NonPatchable {
                    rollbacks: ledger.rollbacks,
                    elapsed_ns: ledger.elapsed_ns,
                    log: ledger.log,
                };
            }
            let Some(ckpt) = manager.nth_newest(k) else {
                break;
            };
            let id = ckpt.id;
            let spec = Self::phase1_spec(id, until);
            // Speculate both branches: this checkpoint fails (try the
            // older ones) and this checkpoint survives (probe here).
            let mut tail: Vec<TrialSpec> = Vec::new();
            for kk in k + 1..self.config.max_checkpoint_tries {
                match manager.nth_newest(kk) {
                    Some(c) => tail.push(Self::phase1_spec(c.id, until)),
                    None => break,
                }
            }
            tail.extend(Self::phase2_tail(id, &BugType::ALL, &[], until));
            let r = self.fetch(process, manager, &mut cache, &mut ledger, spec, tail);
            if r.passed && !r.mark_corrupt() {
                ledger.log.push(format!(
                    "phase 1: checkpoint {id} (-{k}) survives with all preventive changes \
                     and clean heap marks"
                ));
                chosen = Some(id);
                break;
            }
            ledger.log.push(format!(
                "phase 1: checkpoint {id} (-{k}) insufficient (passed={}, marks corrupt={})",
                r.passed,
                r.mark_corrupt()
            ));
        }
        let Some(ckpt_id) = chosen else {
            ledger
                .log
                .push("phase 1 exhausted checkpoints: non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        };

        // --------------------------------------------------------------
        // Phase 2: identify bug types (Su/Si) and call-sites.
        // --------------------------------------------------------------
        let mut su: Vec<BugType> = BugType::ALL.to_vec();
        let mut si: Vec<DiagnosedBug> = Vec::new();
        while let Some(&probe_bug) = su.first() {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(&ledger) {
                ledger.log.push(if self.past_deadline(&ledger) {
                    "diagnosis deadline exceeded during phase 2; non-patchable".into()
                } else {
                    "re-execution budget exhausted".into()
                });
                return DiagnosisOutcome::NonPatchable {
                    rollbacks: ledger.rollbacks,
                    elapsed_ns: ledger.elapsed_ns,
                    log: ledger.log,
                };
            }
            let si_bugs: Vec<BugType> = si.iter().map(|d| d.bug).collect();
            let prevent: Vec<BugType> = su.iter().chain(si_bugs.iter()).copied().collect();
            let spec = TrialSpec {
                ckpt_id,
                plan: ChangePlan::probe(probe_bug, &prevent),
                mark: false,
                timing_seed: 0,
                until,
            };
            let tail = Self::phase2_tail(ckpt_id, &su, &si_bugs, until);
            let r = self.fetch(process, manager, &mut cache, &mut ledger, spec, tail);
            let manifested = Self::manifested(probe_bug, &r);
            ledger.log.push(format!(
                "phase 2: probe {probe_bug}: {}",
                if manifested {
                    "manifested"
                } else {
                    "ruled out"
                }
            ));
            su.retain(|&b| b != probe_bug);
            if manifested {
                let (sites, evidence) = if probe_bug.directly_identifiable() {
                    (Self::direct_sites(probe_bug, &r), r.manifests.clone())
                } else {
                    let prevent_rest: Vec<BugType> = su
                        .iter()
                        .chain(si.iter().map(|d| &d.bug))
                        .copied()
                        .collect();
                    let sites = self.binary_search_sites(
                        process,
                        manager,
                        &mut cache,
                        ckpt_id,
                        probe_bug,
                        &prevent_rest,
                        &r,
                        until,
                        &mut ledger,
                        &[],
                    );
                    (sites, r.manifests.clone())
                };
                ledger.log.push(format!(
                    "phase 2: {probe_bug} triggered at {} call-site(s)",
                    sites.len()
                ));
                si.push(DiagnosedBug {
                    bug: probe_bug,
                    sites,
                    evidence,
                });

                // Coverage check: preventive for Si, exposing for Su.
                if !su.is_empty() {
                    let si_bugs: Vec<BugType> = si.iter().map(|d| d.bug).collect();
                    let spec = Self::coverage_spec(ckpt_id, &su, &si_bugs, until);
                    // Residue branch: the probe chain continues.
                    let tail = Self::phase2_tail(ckpt_id, &su, &si_bugs, until);
                    let r = self.fetch(process, manager, &mut cache, &mut ledger, spec, tail);
                    if r.passed && r.manifests.is_empty() {
                        ledger
                            .log
                            .push("coverage check clean: all bug types identified".into());
                        su.clear();
                    } else {
                        ledger
                            .log
                            .push("coverage check found residue: continuing".into());
                    }
                }
            }
        }

        if si.is_empty() || si.iter().all(|d| d.sites.is_empty()) {
            ledger
                .log
                .push("no memory bug type manifested: non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }
        DiagnosisOutcome::Diagnosed(Diagnosis {
            bugs: si,
            checkpoint_id: ckpt_id,
            rollbacks: ledger.rollbacks,
            elapsed_ns: ledger.elapsed_ns,
            log: ledger.log,
            until_cursor: until,
        })
    }

    /// Sentry fast-path diagnosis: a trapped failure arrives with the bug
    /// type and triggering call-site already suggested, so instead of the
    /// full ladder (non-determinism probe, phase-1 checkpoint scan, the
    /// `Su` rule-out chain) the engine runs one confirming re-execution
    /// with the suspected type exposing and everything else preventive.
    /// For directly-identifiable types the manifestations name the sites;
    /// for the read bugs the trapped site seeds the search: a clean
    /// `ExposeExcept({site})` run pins the whole bug on it, and only a
    /// residue falls back to the (seeded) binary search.
    ///
    /// Returns `None` when the trap does not confirm — a wedged engine,
    /// an expired deadline, or a probe that never manifests — in which
    /// case the caller falls back to [`DiagnosisEngine::diagnose`].
    pub fn diagnose_fast(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        trap: &TrapRecord,
    ) -> Option<Diagnosis> {
        let failure = process.failure.clone()?;
        let f_idx = failure.input_index;
        let margin_ns = self.config.margin_intervals * manager.interval_ns();
        let until = ReplayHarness::success_end_cursor(process, f_idx, margin_ns);
        let bug = trap_bug_type(trap);
        let mut ledger = Ledger {
            rollbacks: 0,
            elapsed_ns: 0,
            log: vec![format!(
                "sentry fast path: {} trap at input #{f_idx} suggests {bug}",
                trap.kind
            )],
        };
        // A wedged engine degrades to the full ladder (which will consult
        // the same gate) instead of hanging the fast path.
        if self.faults.should_fail(FaultStage::DiagnosisTimeout) {
            return None;
        }
        let mut cache = SpecCache::default();
        // Checkpoint selection follows the ladder's phase-1 rule (latest
        // checkpoint that survives all-preventive with clean marks) so
        // both paths bisect over the same re-execution window — a later
        // checkpoint would see only a suffix of the triggering sites.
        let mut chosen: Option<u64> = None;
        for k in 0..self.config.max_checkpoint_tries {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(&ledger) {
                return None;
            }
            let Some(ckpt) = manager.nth_newest(k) else {
                break;
            };
            let id = ckpt.id;
            let r = self.run(process, manager, &Self::phase1_spec(id, until));
            ledger.charge(&r);
            if r.passed && !r.mark_corrupt() {
                ledger.log.push(format!(
                    "fast path: checkpoint {id} (-{k}) precedes the trigger"
                ));
                chosen = Some(id);
                break;
            }
        }
        let ckpt_id = chosen?;
        {
            // One confirming re-execution: the suspected type exposing,
            // everything else preventive.
            let spec = TrialSpec {
                ckpt_id,
                plan: ChangePlan::probe(bug, &BugType::ALL),
                mark: false,
                timing_seed: 0,
                until,
            };
            let r = self.run(process, manager, &spec);
            ledger.charge(&r);
            if !Self::manifested(bug, &r) {
                ledger.log.push(format!(
                    "fast path: {bug} did not manifest from checkpoint {ckpt_id}; full ladder"
                ));
                return None;
            }
            ledger.log.push(format!(
                "fast path: {bug} confirmed from checkpoint {ckpt_id}"
            ));
            let sites = if bug.directly_identifiable() {
                Self::direct_sites(bug, &r)
            } else {
                let seed = trap_seed_site(trap, bug)?;
                let mut plan = ChangePlan::probe(bug, &BugType::ALL);
                *plan.mode_mut(bug) = Mode::ExposeExcept([seed].into_iter().collect());
                let spec = TrialSpec {
                    ckpt_id,
                    plan,
                    mark: false,
                    timing_seed: 0,
                    until,
                };
                let r2 = self.run(process, manager, &spec);
                ledger.charge(&r2);
                if !Self::manifested(bug, &r2) {
                    ledger.log.push(format!(
                        "fast path: trapped call-site {:x?} alone accounts for the bug",
                        seed.0
                    ));
                    vec![seed]
                } else {
                    ledger
                        .log
                        .push("fast path: residue beyond the trapped site; seeded search".into());
                    self.binary_search_sites(
                        process,
                        manager,
                        &mut cache,
                        ckpt_id,
                        bug,
                        &BugType::ALL,
                        &r,
                        until,
                        &mut ledger,
                        &[seed],
                    )
                }
            };
            if sites.is_empty() {
                return None;
            }
            ledger.log.push(format!(
                "fast path: {bug} triggered at {} call-site(s)",
                sites.len()
            ));
            Some(Diagnosis {
                bugs: vec![DiagnosedBug {
                    bug,
                    sites,
                    evidence: r.manifests.clone(),
                }],
                checkpoint_id: ckpt_id,
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
                until_cursor: until,
            })
        }
    }

    /// Binary call-site search for dangling-read / uninit-read bugs:
    /// O(M·log N) re-executions for M triggering sites among N candidates.
    #[allow(clippy::too_many_arguments)]
    fn binary_search_sites(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        cache: &mut SpecCache,
        ckpt_id: u64,
        bug: BugType,
        prevent: &[BugType],
        first_probe: &RunReport,
        until: usize,
        ledger: &mut Ledger,
        seeded: &[CallSite],
    ) -> Vec<CallSite> {
        let mut identified: Vec<CallSite> = seeded.to_vec();
        // Candidates from the manifesting probe run.
        let mut candidates: Vec<CallSite> = if bug.patches_at_allocation() {
            first_probe.alloc_sites.clone()
        } else {
            first_probe.dealloc_sites.clone()
        };

        loop {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(ledger) {
                if self.past_deadline(ledger) {
                    ledger
                        .log
                        .push("diagnosis deadline exceeded during binary search".into());
                }
                break;
            }
            // Do the remaining candidates still trigger the bug with the
            // identified sites held preventive?
            let except: HashSet<CallSite> = identified.iter().copied().collect();
            let mut plan = ChangePlan::probe(bug, prevent);
            *plan.mode_mut(bug) = Mode::ExposeExcept(except);
            let spec = TrialSpec {
                ckpt_id,
                plan,
                mark: false,
                timing_seed: 0,
                until,
            };
            // Speculate the bisection tree over the current candidate
            // view (a site refresh below can invalidate the prediction).
            let predicted: Vec<CallSite> = candidates
                .iter()
                .filter(|s| !identified.contains(*s))
                .copied()
                .collect();
            let tail = Self::bisect_tail(bug, prevent, ckpt_id, until, &predicted, &identified);
            let r = self.fetch(process, manager, cache, ledger, spec, tail);
            if !Self::manifested(bug, &r) {
                break;
            }
            // Refresh candidates from the farthest-reaching view.
            let seen = if bug.patches_at_allocation() {
                &r.alloc_sites
            } else {
                &r.dealloc_sites
            };
            for &s in seen {
                if !candidates.contains(&s) {
                    candidates.push(s);
                }
            }
            let mut range: Vec<CallSite> = candidates
                .iter()
                .filter(|s| !identified.contains(s))
                .copied()
                .collect();
            if range.is_empty() {
                break;
            }
            while range.len() > 1 {
                if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(ledger) {
                    break;
                }
                let half: Vec<CallSite> = range[..range.len() / 2].to_vec();
                let half_set: HashSet<CallSite> = half.iter().copied().collect();
                let mut plan = ChangePlan::probe(bug, prevent);
                *plan.mode_mut(bug) = Mode::ExposeOnly(half_set);
                let spec = TrialSpec {
                    ckpt_id,
                    plan,
                    mark: false,
                    timing_seed: 0,
                    until,
                };
                let tail = Self::bisect_tail(bug, prevent, ckpt_id, until, &range, &identified);
                let r = self.fetch(process, manager, cache, ledger, spec, tail);
                if Self::manifested(bug, &r) {
                    range = half;
                } else {
                    range = range[range.len() / 2..].to_vec();
                }
            }
            let site = range[0];
            ledger.log.push(format!(
                "binary search: identified {bug} trigger call-site {:x?}",
                site.0
            ));
            identified.push(site);
        }
        identified
    }

    /// Decides whether bug type `b` manifested in a probe run.
    fn manifested(b: BugType, r: &RunReport) -> bool {
        match b {
            BugType::BufferOverflow | BugType::DanglingWrite | BugType::DoubleFree => {
                r.manifested(b)
            }
            // The exposing changes for the read bugs manifest as failures;
            // the extension's access counters disambiguate which kind of
            // read preceded the failure.
            BugType::DanglingRead => !r.passed && r.quarantine_reads > 0,
            BugType::UninitRead => !r.passed && r.uninit_reads > 0,
        }
    }

    /// Reads the triggering call-sites directly off the manifestations.
    fn direct_sites(b: BugType, r: &RunReport) -> Vec<CallSite> {
        let mut sites = Vec::new();
        for m in &r.manifests {
            let site = match (b, m) {
                (BugType::BufferOverflow, Manifestation::PaddingCorrupt { alloc_site, .. }) => {
                    Some(*alloc_site)
                }
                (BugType::DanglingWrite, Manifestation::QuarantineCorrupt { freed_site, .. }) => {
                    Some(*freed_site)
                }
                (
                    BugType::DoubleFree,
                    Manifestation::DoubleFree {
                        first_free_site, ..
                    },
                ) => Some(*first_free_site),
                _ => None,
            };
            if let Some(s) = site {
                if !sites.contains(&s) {
                    sites.push(s);
                }
            }
        }
        sites
    }

    // ------------------------------------------------------------------
    // Trial-spec constructors (shared by the drivers and the speculation
    // generators, so predicted and actual specs compare equal)
    // ------------------------------------------------------------------

    /// The phase-1 trial at checkpoint `id`: all preventive changes with
    /// heap marking.
    fn phase1_spec(id: u64, until: usize) -> TrialSpec {
        TrialSpec {
            ckpt_id: id,
            plan: ChangePlan {
                heap_marking: true,
                ..ChangePlan::all_preventive()
            },
            mark: true,
            timing_seed: 0,
            until,
        }
    }

    /// The coverage-check trial: preventive for the identified set,
    /// exposing for the rest.
    fn coverage_spec(ckpt: u64, su: &[BugType], si: &[BugType], until: usize) -> TrialSpec {
        let mut plan = ChangePlan::none();
        for &b in si {
            *plan.mode_mut(b) = Mode::Prevent;
        }
        for &b in su {
            *plan.mode_mut(b) = Mode::Expose;
        }
        TrialSpec {
            ckpt_id: ckpt,
            plan,
            mark: false,
            timing_seed: 0,
            until,
        }
    }

    /// Speculative phase-2 tail at `ckpt`: the rule-out chain (probe `j`
    /// runs if probes `0..j` were all ruled out) plus the coverage check
    /// that follows if the first probe manifests and identifies directly.
    fn phase2_tail(ckpt: u64, su: &[BugType], si: &[BugType], until: usize) -> Vec<TrialSpec> {
        let mut out = Vec::new();
        for j in 0..su.len() {
            let prevent: Vec<BugType> = su[j..].iter().chain(si.iter()).copied().collect();
            out.push(TrialSpec {
                ckpt_id: ckpt,
                plan: ChangePlan::probe(su[j], &prevent),
                mark: false,
                timing_seed: 0,
                until,
            });
        }
        if su.len() > 1 {
            let mut si_plus: Vec<BugType> = si.to_vec();
            si_plus.push(su[0]);
            out.push(Self::coverage_spec(ckpt, &su[1..], &si_plus, until));
        }
        out
    }

    /// Speculative tail for the call-site binary search: a breadth-first
    /// walk of the bisection decision tree over `range`. A node with more
    /// than one candidate emits the `ExposeOnly(first half)` trial the
    /// driver runs next on that branch and recurses into both halves; a
    /// leaf emits the follow-up `ExposeExcept` trial that re-checks for
    /// further triggering sites once the leaf is identified.
    fn bisect_tail(
        bug: BugType,
        prevent: &[BugType],
        ckpt: u64,
        until: usize,
        range: &[CallSite],
        identified: &[CallSite],
    ) -> Vec<TrialSpec> {
        let mut out = Vec::new();
        let mut queue: VecDeque<Vec<CallSite>> = VecDeque::new();
        queue.push_back(range.to_vec());
        while let Some(r) = queue.pop_front() {
            match r.len() {
                0 => {}
                1 => {
                    let mut except: HashSet<CallSite> = identified.iter().copied().collect();
                    except.insert(r[0]);
                    let mut plan = ChangePlan::probe(bug, prevent);
                    *plan.mode_mut(bug) = Mode::ExposeExcept(except);
                    out.push(TrialSpec {
                        ckpt_id: ckpt,
                        plan,
                        mark: false,
                        timing_seed: 0,
                        until,
                    });
                }
                n => {
                    let half: HashSet<CallSite> = r[..n / 2].iter().copied().collect();
                    let mut plan = ChangePlan::probe(bug, prevent);
                    *plan.mode_mut(bug) = Mode::ExposeOnly(half);
                    out.push(TrialSpec {
                        ckpt_id: ckpt,
                        plan,
                        mark: false,
                        timing_seed: 0,
                        until,
                    });
                    queue.push_back(r[..n / 2].to_vec());
                    queue.push_back(r[n / 2..].to_vec());
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Trial broker: sequential path, wave scheduling, and commit charging
    // ------------------------------------------------------------------

    /// Produces the report for `spec`, charging the ledger.
    ///
    /// Sequential mode (`parallelism == 1`) runs the trial directly.
    /// Parallel mode first consults the wave cache; on a miss it discards
    /// the stale cache and launches a new wave — the leader trial on the
    /// calling thread plus up to `parallelism - 1` trials from `tail`
    /// running concurrently on forks. Either way the fault gate resolves
    /// once per *committed* trial, in the same order as the sequential
    /// engine, so fault-plan consultation (and hence every injected-fault
    /// outcome) is identical at any width.
    fn fetch(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        cache: &mut SpecCache,
        ledger: &mut Ledger,
        spec: TrialSpec,
        tail: Vec<TrialSpec>,
    ) -> RunReport {
        let width = self.config.parallelism.max(1);
        if width == 1 {
            let r = self.run(process, manager, &spec);
            ledger.charge(&r);
            return r;
        }
        if let Some(i) = cache.entries.iter().position(|(s, _)| *s == spec) {
            let (_, raw) = cache.entries.remove(i);
            self.spec_hits.set(self.spec_hits.get() + 1);
            let r = self.commit(cache, raw);
            ledger.charge(&r);
            return r;
        }
        // Miss: whatever the last wave predicted is now stale.
        if !cache.entries.is_empty() {
            self.spec_wasted
                .set(self.spec_wasted.get() + cache.entries.len());
            cache.entries.clear();
        }
        cache.charged = 0;
        // The fault gate resolves before the trial runs, exactly as in
        // the sequential path; an exhausted gate means it never executes.
        match self.fault_gate() {
            Err(penalty) => {
                let r = RunReport {
                    passed: false,
                    elapsed_ns: penalty + 80_000,
                    ..RunReport::default()
                };
                ledger.charge(&r);
                r
            }
            Ok(penalty) => {
                let speculative = Self::plan_wave(manager, &spec, tail, width);
                let (mut raw, results) = self.run_wave(process, manager, &spec, &speculative);
                if !speculative.is_empty() {
                    self.waves.set(self.waves.get() + 1);
                    self.spec_launched
                        .set(self.spec_launched.get() + speculative.len());
                }
                cache.entries = results;
                cache.charged = raw.elapsed_ns;
                raw.elapsed_ns += penalty;
                ledger.charge(&raw);
                raw
            }
        }
    }

    /// Applies the fault gate to a cached speculative result and charges
    /// its share of the wave's virtual time.
    fn commit(&self, cache: &mut SpecCache, raw: RunReport) -> RunReport {
        match self.fault_gate() {
            Err(penalty) => {
                // The gate killed this iteration: the speculative result
                // is discarded, exactly as the sequential engine would
                // never have run the trial.
                self.spec_wasted.set(self.spec_wasted.get() + 1);
                RunReport {
                    passed: false,
                    elapsed_ns: penalty + 80_000,
                    ..RunReport::default()
                }
            }
            Ok(penalty) => {
                let extra = raw.elapsed_ns.saturating_sub(cache.charged);
                cache.charged += extra;
                let mut r = raw;
                r.elapsed_ns = extra + penalty;
                r
            }
        }
    }

    /// Selects the speculative members of a wave: the tail specs, deduped
    /// against the leader and each other, filtered to intact retained
    /// checkpoints, truncated so leader + speculation fit the wave width.
    fn plan_wave(
        manager: &CheckpointManager,
        leader: &TrialSpec,
        tail: Vec<TrialSpec>,
        width: usize,
    ) -> Vec<TrialSpec> {
        let mut wave: Vec<TrialSpec> = Vec::new();
        for s in tail {
            if wave.len() + 1 >= width {
                break;
            }
            if s == *leader || wave.contains(&s) {
                continue;
            }
            if !manager.get(s.ckpt_id).is_some_and(|c| c.verify()) {
                continue;
            }
            wave.push(s);
        }
        wave
    }

    /// Runs one wave: the leader trial on the calling thread against the
    /// main process (preserving phase-0 semantics — on a nondeterminism
    /// verdict the runtime keeps the re-executed state), the speculative
    /// trials concurrently on forked processes, each restored from its
    /// own clone of the checkpoint snapshot (COW: an `Arc` clone per
    /// page). Results return in spec order; a worker panic propagates.
    fn run_wave(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        leader: &TrialSpec,
        speculative: &[TrialSpec],
    ) -> (RunReport, Vec<(TrialSpec, RunReport)>) {
        let integrity_check = self.config.integrity_check;
        std::thread::scope(|scope| {
            let handles: Vec<_> = speculative
                .iter()
                .map(|spec| {
                    let mut fork = process.fork();
                    let snap = manager
                        .get(spec.ckpt_id)
                        .expect("wave specs are filtered to retained checkpoints")
                        .snap
                        .clone();
                    let spec = spec.clone();
                    scope.spawn(move || {
                        let r = ReplayHarness::reexecute_on(
                            &mut fork,
                            &snap,
                            spec.plan.clone(),
                            &ReexecOptions {
                                mark_heap: spec.mark,
                                timing_seed: spec.timing_seed,
                                until_cursor: spec.until,
                                integrity_check,
                            },
                        );
                        (spec, r)
                    })
                })
                .collect();
            let leader_report = self.execute(process, manager, leader);
            let results = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect();
            (leader_report, results)
        })
    }

    /// One re-execution of `spec` through the checkpoint manager.
    fn execute(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        spec: &TrialSpec,
    ) -> RunReport {
        ReplayHarness::reexecute(
            process,
            manager,
            spec.ckpt_id,
            spec.plan.clone(),
            &ReexecOptions {
                mark_heap: spec.mark,
                timing_seed: spec.timing_seed,
                until_cursor: spec.until,
                integrity_check: self.config.integrity_check,
            },
        )
    }

    /// Resolves the flaky-re-execution fault gate for one iteration:
    /// `Ok(penalty)` means the trial proceeds after `penalty` ns of
    /// retry backoff; `Err(penalty)` means retries were exhausted and
    /// the iteration is written off as a failed, empty run.
    fn fault_gate(&self) -> Result<u64, u64> {
        let mut penalty_ns = 0u64;
        let mut attempt: u32 = 0;
        loop {
            if self.faults.should_fail(FaultStage::ReexecFlaky) {
                penalty_ns += self.config.retry_backoff_ns << attempt.min(16);
                if attempt < self.config.reexec_retries {
                    attempt += 1;
                    self.retries.set(self.retries.get() + 1);
                    continue;
                }
                return Err(penalty_ns);
            }
            return Ok(penalty_ns);
        }
    }

    /// One re-execution, with bounded retry-with-backoff against flaky
    /// iterations: if the fault plan declares this re-execution flaky
    /// (it dies for reasons unrelated to the bug), the engine charges
    /// an exponentially growing backoff and retries up to
    /// `reexec_retries` times before writing the iteration off as a
    /// failed run.
    fn run(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        spec: &TrialSpec,
    ) -> RunReport {
        match self.fault_gate() {
            Err(penalty) => RunReport {
                passed: false,
                elapsed_ns: penalty + 80_000,
                ..RunReport::default()
            },
            Ok(penalty) => {
                let mut r = self.execute(process, manager, spec);
                r.elapsed_ns += penalty;
                r
            }
        }
    }
}

impl Default for DiagnosisEngine {
    fn default() -> Self {
        DiagnosisEngine::new(EngineConfig::default())
    }
}
