//! The diagnosis engine (paper §4).
//!
//! Phase 1 identifies the latest checkpoint before the bug-triggering
//! point; phase 2 identifies the bug types (the `Su`/`Si` probe algorithm)
//! and the bug-triggering call-sites — directly from canary corruption and
//! deallocation parameters for overflow / dangling write / double free, and
//! by O(M·log N) binary search over call-sites for dangling read and
//! uninitialized read.

use std::cell::Cell;
use std::collections::HashSet;

use fa_allocext::{BugType, ChangePlan, Manifestation, Mode, Patch};
use fa_checkpoint::CheckpointManager;
use fa_faults::{FaultPlan, FaultStage};
use fa_proc::{CallSite, Process};

use crate::harness::{ReexecOptions, ReplayHarness, RunReport};

/// Tunables of the diagnosis engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Success margin past the failure point, as a multiple of the
    /// checkpoint interval (the paper uses 3).
    pub margin_intervals: u64,
    /// How many checkpoints phase 1 tries before declaring the bug
    /// non-patchable.
    pub max_checkpoint_tries: usize,
    /// Hard cap on total re-executions (the diagnosis timeout).
    pub max_reexecutions: usize,
    /// Run the heap-integrity monitor during re-executions (must match
    /// the deployment's normal-execution monitors).
    pub integrity_check: bool,
    /// Hard deadline on total diagnosis time (virtual ns); `0` means
    /// unlimited. A diagnosis that blows the deadline is abandoned as
    /// non-patchable and the runtime descends the degradation ladder.
    pub deadline_ns: u64,
    /// How many times a flaky re-execution (one that dies for reasons
    /// unrelated to the bug) is retried before the iteration is
    /// written off as failed.
    pub reexec_retries: u32,
    /// Base backoff charged per flaky retry; doubles per attempt.
    pub retry_backoff_ns: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            margin_intervals: 3,
            max_checkpoint_tries: 8,
            max_reexecutions: 96,
            integrity_check: false,
            deadline_ns: 120_000_000_000,
            reexec_retries: 2,
            retry_backoff_ns: 2_000_000,
        }
    }
}

/// One diagnosed bug: its type, triggering call-sites, and evidence.
#[derive(Clone, Debug)]
pub struct DiagnosedBug {
    /// The bug type.
    pub bug: BugType,
    /// Allocation or deallocation call-sites of the bug-triggering
    /// objects (the patch application points).
    pub sites: Vec<CallSite>,
    /// Manifestations supporting the conclusion.
    pub evidence: Vec<Manifestation>,
}

/// The result of a completed diagnosis.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// All diagnosed bugs (the identified set `Si` with call-sites).
    pub bugs: Vec<DiagnosedBug>,
    /// The checkpoint the patches take effect from.
    pub checkpoint_id: u64,
    /// Number of rollback/re-execution iterations performed.
    pub rollbacks: usize,
    /// Virtual time consumed by diagnosis.
    pub elapsed_ns: u64,
    /// Human-readable diagnosis log (part of the bug report).
    pub log: Vec<String>,
    /// End of the success region used as the re-execution criterion.
    pub until_cursor: usize,
}

/// What the diagnosis concluded.
#[derive(Clone, Debug)]
pub enum DiagnosisOutcome {
    /// Deterministic memory bugs were identified; patches follow.
    Diagnosed(Diagnosis),
    /// A plain re-execution with only timing changes succeeded: the
    /// failure was non-deterministic; execution simply continues.
    NonDeterministic {
        /// Iterations used.
        rollbacks: usize,
        /// Virtual time consumed.
        elapsed_ns: u64,
        /// Diagnosis log.
        log: Vec<String>,
    },
    /// The engine timed out or no checkpoint survives the region; other
    /// recovery schemes (e.g. restart) must take over.
    NonPatchable {
        /// Iterations used.
        rollbacks: usize,
        /// Virtual time consumed.
        elapsed_ns: u64,
        /// Diagnosis log.
        log: Vec<String>,
    },
}

impl Diagnosis {
    /// Generates the runtime patches for this diagnosis.
    pub fn patches(&self, symbols: &fa_proc::SymbolTable) -> Vec<Patch> {
        self.bugs
            .iter()
            .flat_map(|d| d.sites.iter().map(|&s| Patch::new(d.bug, s, symbols)))
            .collect()
    }
}

/// The diagnosis engine. Almost stateless; state lives in the process,
/// the checkpoint manager, and the returned [`Diagnosis`] — the engine
/// itself only tracks the flaky-retry count of the current diagnosis
/// and holds the fault plan it consults before each re-execution.
pub struct DiagnosisEngine {
    config: EngineConfig,
    faults: FaultPlan,
    retries: Cell<usize>,
}

struct Ledger {
    rollbacks: usize,
    elapsed_ns: u64,
    log: Vec<String>,
}

impl Ledger {
    fn charge(&mut self, r: &RunReport) {
        self.rollbacks += 1;
        self.elapsed_ns += r.elapsed_ns;
    }
}

impl DiagnosisEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_faults(config, FaultPlan::none())
    }

    /// Creates an engine whose re-executions are subject to `faults`.
    pub fn with_faults(config: EngineConfig, faults: FaultPlan) -> Self {
        DiagnosisEngine {
            config,
            faults,
            retries: Cell::new(0),
        }
    }

    /// Flaky re-executions retried so far by this engine.
    pub fn retries_used(&self) -> usize {
        self.retries.get()
    }

    /// True once the ledger has consumed the diagnosis deadline.
    fn past_deadline(&self, ledger: &Ledger) -> bool {
        self.config.deadline_ns > 0 && ledger.elapsed_ns >= self.config.deadline_ns
    }

    /// Diagnoses the pending failure of `process`.
    ///
    /// On return the process is in some rolled-back re-executed state; the
    /// caller (the runtime) is expected to roll back once more to the
    /// diagnosis checkpoint, install patches, and resume.
    ///
    /// # Panics
    ///
    /// Panics if the process has no pending failure.
    pub fn diagnose(&self, process: &mut Process, manager: &CheckpointManager) -> DiagnosisOutcome {
        let failure = process
            .failure
            .clone()
            .expect("diagnose requires a pending failure");
        let f_idx = failure.input_index;
        let margin_ns = self.config.margin_intervals * manager.interval_ns();
        let until = ReplayHarness::success_end_cursor(process, f_idx, margin_ns);
        let mut ledger = Ledger {
            rollbacks: 0,
            elapsed_ns: 0,
            log: vec![format!(
                "failure: {} at input #{f_idx} (t={:.3}s); success region ends at #{until}",
                failure.fault,
                failure.at_ns as f64 / 1e9
            )],
        };

        // Injected wedge: the whole diagnosis hangs and blows its
        // deadline without producing anything.
        if self.faults.should_fail(FaultStage::DiagnosisTimeout) {
            let budget = if self.config.deadline_ns > 0 {
                self.config.deadline_ns
            } else {
                1_000_000_000
            };
            ledger.elapsed_ns += budget;
            ledger.log.push(format!(
                "diagnosis deadline exceeded after {:.3}s (injected wedge); non-patchable",
                budget as f64 / 1e9
            ));
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }

        // --------------------------------------------------------------
        // Phase 0: non-determinism probe at the latest checkpoint.
        // --------------------------------------------------------------
        let Some(newest) = manager.nth_newest(0) else {
            ledger
                .log
                .push("no checkpoints retained; non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        };
        let newest_id = newest.id;
        let r = self.run(
            process,
            manager,
            newest_id,
            ChangePlan::none(),
            false,
            0xfa11,
            until,
        );
        ledger.charge(&r);
        if r.passed {
            ledger.log.push(
                "plain re-execution with timing changes passed: non-deterministic bug".into(),
            );
            return DiagnosisOutcome::NonDeterministic {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }
        ledger
            .log
            .push("plain re-execution failed again: deterministic bug".into());

        // --------------------------------------------------------------
        // Phase 1: find the latest checkpoint before the trigger point.
        // --------------------------------------------------------------
        let mut chosen: Option<u64> = None;
        for k in 0..self.config.max_checkpoint_tries {
            if self.past_deadline(&ledger) {
                ledger
                    .log
                    .push("diagnosis deadline exceeded during phase 1; non-patchable".into());
                return DiagnosisOutcome::NonPatchable {
                    rollbacks: ledger.rollbacks,
                    elapsed_ns: ledger.elapsed_ns,
                    log: ledger.log,
                };
            }
            let Some(ckpt) = manager.nth_newest(k) else {
                break;
            };
            let id = ckpt.id;
            let plan = ChangePlan {
                heap_marking: true,
                ..ChangePlan::all_preventive()
            };
            let r = self.run(process, manager, id, plan, true, 0, until);
            ledger.charge(&r);
            if r.passed && !r.mark_corrupt() {
                ledger.log.push(format!(
                    "phase 1: checkpoint {id} (-{k}) survives with all preventive changes \
                     and clean heap marks"
                ));
                chosen = Some(id);
                break;
            }
            ledger.log.push(format!(
                "phase 1: checkpoint {id} (-{k}) insufficient (passed={}, marks corrupt={})",
                r.passed,
                r.mark_corrupt()
            ));
        }
        let Some(ckpt_id) = chosen else {
            ledger
                .log
                .push("phase 1 exhausted checkpoints: non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        };

        // --------------------------------------------------------------
        // Phase 2: identify bug types (Su/Si) and call-sites.
        // --------------------------------------------------------------
        let mut su: Vec<BugType> = BugType::ALL.to_vec();
        let mut si: Vec<DiagnosedBug> = Vec::new();
        while let Some(&probe_bug) = su.first() {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(&ledger) {
                ledger.log.push(if self.past_deadline(&ledger) {
                    "diagnosis deadline exceeded during phase 2; non-patchable".into()
                } else {
                    "re-execution budget exhausted".into()
                });
                return DiagnosisOutcome::NonPatchable {
                    rollbacks: ledger.rollbacks,
                    elapsed_ns: ledger.elapsed_ns,
                    log: ledger.log,
                };
            }
            let prevent: Vec<BugType> = su
                .iter()
                .chain(si.iter().map(|d| &d.bug))
                .copied()
                .collect();
            let plan = ChangePlan::probe(probe_bug, &prevent);
            let r = self.run(process, manager, ckpt_id, plan, false, 0, until);
            ledger.charge(&r);
            let manifested = Self::manifested(probe_bug, &r);
            ledger.log.push(format!(
                "phase 2: probe {probe_bug}: {}",
                if manifested {
                    "manifested"
                } else {
                    "ruled out"
                }
            ));
            su.retain(|&b| b != probe_bug);
            if manifested {
                let (sites, evidence) = if probe_bug.directly_identifiable() {
                    (Self::direct_sites(probe_bug, &r), r.manifests.clone())
                } else {
                    let prevent_rest: Vec<BugType> = su
                        .iter()
                        .chain(si.iter().map(|d| &d.bug))
                        .copied()
                        .collect();
                    let sites = self.binary_search_sites(
                        process,
                        manager,
                        ckpt_id,
                        probe_bug,
                        &prevent_rest,
                        &r,
                        until,
                        &mut ledger,
                    );
                    (sites, r.manifests.clone())
                };
                ledger.log.push(format!(
                    "phase 2: {probe_bug} triggered at {} call-site(s)",
                    sites.len()
                ));
                si.push(DiagnosedBug {
                    bug: probe_bug,
                    sites,
                    evidence,
                });

                // Coverage check: preventive for Si, exposing for Su.
                if !su.is_empty() {
                    let mut plan = ChangePlan::none();
                    for d in &si {
                        *plan.mode_mut(d.bug) = Mode::Prevent;
                    }
                    for &b in &su {
                        *plan.mode_mut(b) = Mode::Expose;
                    }
                    let r = self.run(process, manager, ckpt_id, plan, false, 0, until);
                    ledger.charge(&r);
                    if r.passed && r.manifests.is_empty() {
                        ledger
                            .log
                            .push("coverage check clean: all bug types identified".into());
                        su.clear();
                    } else {
                        ledger
                            .log
                            .push("coverage check found residue: continuing".into());
                    }
                }
            }
        }

        if si.is_empty() || si.iter().all(|d| d.sites.is_empty()) {
            ledger
                .log
                .push("no memory bug type manifested: non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }
        DiagnosisOutcome::Diagnosed(Diagnosis {
            bugs: si,
            checkpoint_id: ckpt_id,
            rollbacks: ledger.rollbacks,
            elapsed_ns: ledger.elapsed_ns,
            log: ledger.log,
            until_cursor: until,
        })
    }

    /// Binary call-site search for dangling-read / uninit-read bugs:
    /// O(M·log N) re-executions for M triggering sites among N candidates.
    #[allow(clippy::too_many_arguments)]
    fn binary_search_sites(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        ckpt_id: u64,
        bug: BugType,
        prevent: &[BugType],
        first_probe: &RunReport,
        until: usize,
        ledger: &mut Ledger,
    ) -> Vec<CallSite> {
        let mut identified: Vec<CallSite> = Vec::new();
        // Candidates from the manifesting probe run.
        let mut candidates: Vec<CallSite> = if bug.patches_at_allocation() {
            first_probe.alloc_sites.clone()
        } else {
            first_probe.dealloc_sites.clone()
        };

        loop {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(ledger) {
                if self.past_deadline(ledger) {
                    ledger
                        .log
                        .push("diagnosis deadline exceeded during binary search".into());
                }
                break;
            }
            // Do the remaining candidates still trigger the bug with the
            // identified sites held preventive?
            let except: HashSet<CallSite> = identified.iter().copied().collect();
            let mut plan = ChangePlan::probe(bug, prevent);
            *plan.mode_mut(bug) = Mode::ExposeExcept(except);
            let r = self.run(process, manager, ckpt_id, plan, false, 0, until);
            ledger.charge(&r);
            if !Self::manifested(bug, &r) {
                break;
            }
            // Refresh candidates from the farthest-reaching view.
            let seen = if bug.patches_at_allocation() {
                &r.alloc_sites
            } else {
                &r.dealloc_sites
            };
            for &s in seen {
                if !candidates.contains(&s) {
                    candidates.push(s);
                }
            }
            let mut range: Vec<CallSite> = candidates
                .iter()
                .filter(|s| !identified.contains(s))
                .copied()
                .collect();
            if range.is_empty() {
                break;
            }
            while range.len() > 1 {
                if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(ledger) {
                    break;
                }
                let half: Vec<CallSite> = range[..range.len() / 2].to_vec();
                let half_set: HashSet<CallSite> = half.iter().copied().collect();
                let mut plan = ChangePlan::probe(bug, prevent);
                *plan.mode_mut(bug) = Mode::ExposeOnly(half_set);
                let r = self.run(process, manager, ckpt_id, plan, false, 0, until);
                ledger.charge(&r);
                if Self::manifested(bug, &r) {
                    range = half;
                } else {
                    range = range[range.len() / 2..].to_vec();
                }
            }
            let site = range[0];
            ledger.log.push(format!(
                "binary search: identified {bug} trigger call-site {:x?}",
                site.0
            ));
            identified.push(site);
        }
        identified
    }

    /// Decides whether bug type `b` manifested in a probe run.
    fn manifested(b: BugType, r: &RunReport) -> bool {
        match b {
            BugType::BufferOverflow | BugType::DanglingWrite | BugType::DoubleFree => {
                r.manifested(b)
            }
            // The exposing changes for the read bugs manifest as failures;
            // the extension's access counters disambiguate which kind of
            // read preceded the failure.
            BugType::DanglingRead => !r.passed && r.quarantine_reads > 0,
            BugType::UninitRead => !r.passed && r.uninit_reads > 0,
        }
    }

    /// Reads the triggering call-sites directly off the manifestations.
    fn direct_sites(b: BugType, r: &RunReport) -> Vec<CallSite> {
        let mut sites = Vec::new();
        for m in &r.manifests {
            let site = match (b, m) {
                (BugType::BufferOverflow, Manifestation::PaddingCorrupt { alloc_site, .. }) => {
                    Some(*alloc_site)
                }
                (BugType::DanglingWrite, Manifestation::QuarantineCorrupt { freed_site, .. }) => {
                    Some(*freed_site)
                }
                (
                    BugType::DoubleFree,
                    Manifestation::DoubleFree {
                        first_free_site, ..
                    },
                ) => Some(*first_free_site),
                _ => None,
            };
            if let Some(s) = site {
                if !sites.contains(&s) {
                    sites.push(s);
                }
            }
        }
        sites
    }

    /// One re-execution, with bounded retry-with-backoff against flaky
    /// iterations: if the fault plan declares this re-execution flaky
    /// (it dies for reasons unrelated to the bug), the engine charges
    /// an exponentially growing backoff and retries up to
    /// `reexec_retries` times before writing the iteration off as a
    /// failed run.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        ckpt_id: u64,
        plan: ChangePlan,
        mark: bool,
        timing_seed: u64,
        until: usize,
    ) -> RunReport {
        let mut penalty_ns = 0u64;
        let mut attempt: u32 = 0;
        loop {
            if self.faults.should_fail(FaultStage::ReexecFlaky) {
                penalty_ns += self.config.retry_backoff_ns << attempt.min(16);
                if attempt < self.config.reexec_retries {
                    attempt += 1;
                    self.retries.set(self.retries.get() + 1);
                    continue;
                }
                // Retries exhausted: surface a failed, empty iteration
                // so the caller treats this probe as inconclusive.
                return RunReport {
                    passed: false,
                    elapsed_ns: penalty_ns + 80_000,
                    ..RunReport::default()
                };
            }
            let mut r = ReplayHarness::reexecute(
                process,
                manager,
                ckpt_id,
                plan.clone(),
                &ReexecOptions {
                    mark_heap: mark,
                    timing_seed,
                    until_cursor: until,
                    integrity_check: self.config.integrity_check,
                },
            );
            r.elapsed_ns += penalty_ns;
            return r;
        }
    }
}

impl Default for DiagnosisEngine {
    fn default() -> Self {
        DiagnosisEngine::new(EngineConfig::default())
    }
}
