//! The First-Aid supervisor runtime.
//!
//! Wraps a simulated process with the full pipeline of paper Fig. 1:
//! periodic checkpoints during normal execution; on failure, diagnosis →
//! patch generation → patch application → resumed execution; then patch
//! validation on a fork and bug-report generation.
//!
//! The module splits along the pipeline's two regimes: this file holds
//! normal execution (launch, feed/run loops, patch-pool sync, health),
//! `recover` holds the failure path (trap consumption, health monitor,
//! diagnosis, patched replay, validation), and `ladder` holds the
//! degradation rungs the failure path descends when precise diagnosis is
//! not available.

mod ladder;
mod recover;

use std::collections::HashMap;

use fa_allocext::{ExtAllocator, Patch, PatchSet, SentryConfig, SentryMetrics};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager, CheckpointStats};
use fa_faults::{FaultPlan, FaultStage};
use fa_proc::{BoxedApp, CallSite, Fault, Input, Process, ProcessCtx, StepResult};
use fa_wal::{CheckpointOp, SentryOp, WalOp};

use crate::diagnose::{Diagnosis, EngineConfig};
use crate::harness::expect_ext;
use crate::metrics::{DegradationMetrics, ThroughputSampler};
use crate::patchpool::PatchPool;
use crate::report::BugReport;
use crate::validate::ValidationOutcome;

/// Configuration of the First-Aid runtime.
#[derive(Clone, Debug)]
pub struct FirstAidConfig {
    /// Simulated heap size limit.
    pub heap_limit: u64,
    /// Checkpointing configuration (interval 200 ms by default, adaptive).
    pub adaptive: AdaptiveConfig,
    /// Maximum retained checkpoints.
    pub max_checkpoints: usize,
    /// Diagnosis engine tunables.
    pub engine: EngineConfig,
    /// Randomized validation iterations (0 disables validation).
    pub validation_iterations: usize,
    /// Delay-free quarantine byte budget (1 MB in the paper).
    pub quarantine_bytes: u64,
    /// Quarantine budget while program-wide generic patches are active:
    /// best-effort delay-free quarantines *every* free, so it needs a
    /// far larger window to span the same error-propagation distance.
    pub generic_quarantine_bytes: u64,
    /// Run the heap-integrity error monitor every N served inputs
    /// (0 disables it). A stronger monitor catches metadata corruption
    /// closer to the bug-triggering point, shortening error-propagation
    /// distance (paper §3 invites deploying such detectors).
    pub integrity_check_every: usize,
    /// Fault plan injected into the pipeline's own stages (checkpoint
    /// corruption, flaky/wedged diagnosis, validation-fork death, pool
    /// persistence I/O). [`FaultPlan::none`] in production.
    pub faults: FaultPlan,
    /// Health monitor: after how many failures with the same bug
    /// signature the installed patches are revoked as ineffective and
    /// the ladder descends one rung (minimum 2: the first failure of a
    /// signature is what *creates* its patches).
    pub patch_recurrence_limit: u32,
    /// Declare the runtime restart-worthy after this many consecutive
    /// dropped inputs (rung 4; fleet workers relaunch on it; 0 never).
    pub restart_after_drops: usize,
    /// Always-on sampling sentry tier: redirect ~1/rate allocations into
    /// guarded slots that trap memory bugs at the faulting access and
    /// feed the fast diagnosis path. `None` disables the tier.
    pub sentry: Option<SentryConfig>,
}

impl Default for FirstAidConfig {
    fn default() -> Self {
        FirstAidConfig {
            heap_limit: 1 << 30,
            adaptive: AdaptiveConfig::default(),
            max_checkpoints: 50,
            engine: EngineConfig::default(),
            validation_iterations: 3,
            quarantine_bytes: fa_allocext::DEFAULT_QUARANTINE_BYTES,
            generic_quarantine_bytes: 16 << 20,
            integrity_check_every: 0,
            faults: FaultPlan::none(),
            patch_recurrence_limit: 2,
            restart_after_drops: 4,
            sentry: None,
        }
    }
}

/// How one recovery concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Bugs diagnosed; runtime patches installed; execution resumed.
    Patched,
    /// Precise diagnosis failed, but the program-wide best-effort
    /// patches carried the poisoned input through (ladder rung 2).
    GenericPatched,
    /// The failure did not reproduce under timing changes; execution
    /// simply continued.
    NonDeterministic,
    /// Diagnosis gave up; the poisoned input was dropped and execution
    /// continued (ladder rung 3, or the crash-loop fast path).
    Dropped,
}

/// Health-monitor state for one bug signature: how often it recurred
/// and which patch sites its last recovery installed (the revocation
/// targets if it keeps recurring).
#[derive(Default)]
struct SigState {
    count: u32,
    sites: Vec<CallSite>,
}

/// Everything produced by one recovery.
#[derive(Debug)]
pub struct RecoveryRecord {
    /// How the recovery concluded.
    pub kind: RecoveryKind,
    /// The diagnosis, when one completed.
    pub diagnosis: Option<Diagnosis>,
    /// The patches installed by this recovery.
    pub patches: Vec<Patch>,
    /// Wall (virtual) time from failure catch to back-to-normal.
    pub recovery_ns: u64,
    /// The validation outcome, when validation ran.
    pub validation: Option<ValidationOutcome>,
    /// The assembled bug report, when validation ran.
    pub report: Option<BugReport>,
}

/// Outcome of feeding one input through the supervised process.
#[derive(Clone, Debug)]
pub struct FeedOutcome {
    /// The input was ultimately served (possibly after a recovery).
    pub served: bool,
    /// A failure occurred while first handling this input.
    pub failed: bool,
    /// Index into [`FirstAidRuntime::recoveries`] if a recovery ran.
    pub recovery: Option<usize>,
}

/// Summary of a full workload run.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Inputs served successfully.
    pub served: usize,
    /// Failures caught by the error monitor.
    pub failures: usize,
    /// Recoveries performed.
    pub recoveries: usize,
    /// Inputs dropped (non-patchable path).
    pub dropped: usize,
    /// Final wall time.
    pub wall_ns: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
    /// Degradation-ladder counters accumulated over the run.
    pub degradation: DegradationMetrics,
    /// Sentry-tier counters accumulated over the run.
    pub sentry: SentryMetrics,
}

/// A point-in-time health summary of one supervised runtime, cheap to
/// read from a fleet supervisor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeHealth {
    /// Total recoveries performed so far.
    pub recoveries: usize,
    /// Recoveries that ended with the input dropped (the degraded path).
    pub dropped: usize,
    /// Recoveries that installed patches.
    pub patched: usize,
    /// Inputs not yet consumed from the replay log.
    pub backlog: usize,
    /// Patch-pool epoch this runtime last synchronized to.
    pub pool_epoch: u64,
    /// Consecutive dropped inputs (resets on any non-dropped recovery);
    /// feeds the rung-4 restart decision.
    pub drop_streak: usize,
}

/// The First-Aid supervisor.
pub struct FirstAidRuntime {
    process: Process,
    manager: CheckpointManager,
    pool: PatchPool,
    config: FirstAidConfig,
    program: String,
    wall_ns: u64,
    last_proc_clock: u64,
    /// Pool version (any program) observed at the last patch sync; lets
    /// `refresh_patches` skip even the pool lock on the fast path.
    pool_version_seen: u64,
    /// Pool epoch for *this* program at the last patch sync.
    pool_epoch_seen: u64,
    /// Input index of the most recent failure, for crash-loop detection.
    last_failure_index: Option<usize>,
    /// Degradation-ladder counters (core stages; pool I/O counters are
    /// read live from the pool by [`FirstAidRuntime::degradation`]).
    degradation: DegradationMetrics,
    /// Patch health monitor: recurrence count and installed patch sites
    /// per bug signature.
    monitor: HashMap<String, SigState>,
    /// Consecutive dropped inputs; rung-4 restart trigger.
    drop_streak: usize,
    /// Runtime-side sentry counters (fast-path/full-ladder split, false
    /// traps); the allocator extension keeps the sampling-side counters.
    sentry_counters: SentryMetrics,
    /// Trial contexts the diagnosis engines served from the pooled slab
    /// instead of forking fresh, accumulated across recoveries.
    slab_reuses: usize,
    /// Trials that degraded to failed runs instead of aborting recovery,
    /// accumulated across recoveries.
    trial_errors: usize,
    /// All recoveries performed, in order.
    pub recoveries: Vec<RecoveryRecord>,
}

impl FirstAidRuntime {
    /// Launches an application under First-Aid supervision.
    ///
    /// Installs the allocator extension (with any patches already in the
    /// pool for this program) and takes checkpoint 0.
    pub fn launch(
        app: BoxedApp,
        mut config: FirstAidConfig,
        pool: PatchPool,
    ) -> Result<FirstAidRuntime, Fault> {
        // Re-execution must use the same error monitors as normal
        // execution, or monitor-caught failures would not reproduce.
        config.engine.integrity_check = config.integrity_check_every > 0;
        let program = app.name().to_owned();
        let mut ctx = ProcessCtx::new(config.heap_limit);
        let pool_version_seen = pool.version();
        let (patches, pool_epoch_seen) = pool.get_with_epoch(&program);
        let quarantine = config.quarantine_bytes;
        let sentry_cfg = config.sentry.clone();
        ctx.swap_alloc(|old| {
            let mut ext = ExtAllocator::attach(old.heap().clone());
            ext.set_quarantine_threshold(quarantine);
            if let Some(cfg) = sentry_cfg {
                ext.enable_sentry(cfg);
            }
            ext.set_normal(patches);
            Box::new(ext)
        });
        let mut process = Process::launch(app, ctx)?;
        let mut manager = CheckpointManager::new(config.adaptive, config.max_checkpoints);
        let first_ckpt = manager.force_checkpoint(&mut process);
        let last_proc_clock = process.ctx.clock.now();
        let rt = FirstAidRuntime {
            process,
            manager,
            pool,
            config,
            program,
            wall_ns: last_proc_clock,
            last_proc_clock,
            pool_version_seen,
            pool_epoch_seen,
            last_failure_index: None,
            degradation: DegradationMetrics::default(),
            monitor: HashMap::new(),
            drop_streak: 0,
            sentry_counters: SentryMetrics::default(),
            slab_reuses: 0,
            trial_errors: 0,
            recoveries: Vec::new(),
        };
        rt.journal_checkpoint_register(first_ckpt);
        Ok(rt)
    }

    /// Journals a runtime supervision transition, when the pool carries
    /// a journal. Runtime records don't mutate pool state on replay;
    /// they make the supervision timeline durable (and auditable) so a
    /// restarted supervisor can reconstruct where it was.
    fn journal_op(&self, op: WalOp) {
        if self.pool.journal().is_some() {
            self.pool.journal_append(op);
        }
    }

    /// Journals a checkpoint registration.
    fn journal_checkpoint_register(&self, ckpt: u64) {
        self.journal_op(WalOp::CheckpointRegister(CheckpointOp {
            program: self.program.clone(),
            worker: self.pool.scope().unwrap_or(0),
            ckpt,
        }));
    }

    /// Journals checkpoint prunes (recovery truncated the ring).
    pub(super) fn journal_checkpoint_prunes(&self, pruned: &[u64]) {
        for &ckpt in pruned {
            self.journal_op(WalOp::CheckpointPrune(CheckpointOp {
                program: self.program.clone(),
                worker: self.pool.scope().unwrap_or(0),
                ckpt,
            }));
        }
    }

    /// Returns the supervised process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Returns the supervised process mutably (experiment harness use).
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// Returns the wall (virtual) time, which only moves forward even
    /// across rollbacks.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Returns the program name (patch-pool key).
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Returns checkpointing statistics (paper Table 7).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.manager.stats()
    }

    /// Returns the shared patch pool.
    pub fn pool(&self) -> &PatchPool {
        &self.pool
    }

    /// Trial contexts served from the pooled diagnosis slab instead of
    /// freshly forked, accumulated over all recoveries so far.
    pub fn slab_reuses(&self) -> usize {
        self.slab_reuses
    }

    /// Diagnosis trials that errored and degraded to failed runs instead
    /// of aborting the supervisor, accumulated over all recoveries.
    pub fn trial_errors(&self) -> usize {
        self.trial_errors
    }

    /// Re-reads this program's published patches from the pool's
    /// lock-free plane and updates the sync markers. The returned Arc
    /// is the pool's own snapshot — no patch is copied.
    fn sync_pool_patches(&mut self) -> std::sync::Arc<fa_allocext::PatchSet> {
        self.pool_version_seen = self.pool.version();
        let (patches, epoch) = self.pool.get_with_epoch(&self.program);
        self.pool_epoch_seen = epoch;
        patches
    }

    /// Picks up patches other processes added to the shared pool since
    /// this runtime last looked, without re-launching (paper §3: patches
    /// are "available to all the processes that are running the same
    /// program").
    ///
    /// The fast path is one atomic load, so fleet workers can call this
    /// before every input. Returns `true` if new patches were installed.
    pub fn refresh_patches(&mut self) -> bool {
        if self.pool.version() == self.pool_version_seen {
            return false;
        }
        let before = self.pool_epoch_seen;
        let patches = self.sync_pool_patches();
        if self.pool_epoch_seen == before {
            // Another program's patches moved the global version; nothing
            // to install here.
            return false;
        }
        self.install_patchset(patches);
        true
    }

    /// Replays the supervision journal into this runtime after a crash.
    ///
    /// The pool recovers its patch/tombstone/quarantine state to the
    /// exact pre-crash epoch, ladder descents are replayed into the
    /// patch health monitor (a recovered runtime remembers which bug
    /// signatures the generic rung already guards, so it does not
    /// re-diagnose them from scratch), and the live allocator
    /// re-installs the recovered patch set. Idempotent: replaying twice
    /// applies nothing more and returns 0.
    pub fn recover_from_journal(&mut self) -> usize {
        let applied = self.pool.recover_from_journal();
        let mut descents: Vec<String> = Vec::new();
        if let Some(wal) = self.pool.journal() {
            for rec in wal.replay() {
                if let fa_wal::WalOp::LadderDescend(op) = rec.op {
                    if op.program == self.program && op.rung == "generic" {
                        descents.push(op.signature);
                    }
                }
            }
        }
        for sig in descents {
            let entry = self.monitor.entry(sig).or_default();
            entry.sites = vec![fa_allocext::GENERIC_SITE];
        }
        let patches = self.sync_pool_patches();
        self.install_patchset(patches);
        applied
    }

    /// Installs a patch set on the live allocator, widening the
    /// delay-free quarantine when program-wide generic patches are
    /// active (they quarantine *every* free, so the production budget
    /// would recycle poisoned blocks far too early).
    fn install_patchset(&mut self, patches: std::sync::Arc<PatchSet>) {
        let threshold = if patches.has_generic() {
            self.config
                .quarantine_bytes
                .max(self.config.generic_quarantine_bytes)
        } else {
            self.config.quarantine_bytes
        };
        self.process.ctx.with_alloc_and_mem(|alloc, _mem| {
            let ext = expect_ext(alloc);
            ext.set_quarantine_threshold(threshold);
            ext.set_normal(patches);
        });
        // The install just re-synced the sentry sampler's suppression
        // set; journal the resulting set (read back from the live
        // sampler, not re-derived) so a recovered supervisor knows which
        // sites sampling had withdrawn from.
        if self.config.sentry.is_some() && self.pool.journal().is_some() {
            let (sites, all) = self.with_ext(|ext| {
                ext.sentry()
                    .map(|e| (e.sampler().suppressed_sites(), e.sampler().suppresses_all()))
                    .unwrap_or_default()
            });
            self.journal_op(WalOp::SentrySuppress(SentryOp {
                program: self.program.clone(),
                sites,
                all,
            }));
        }
    }

    /// Fault-injection hook: after a checkpoint is taken, the plan may
    /// silently rot it. The damage is discovered (via checksum) only
    /// when a later recovery goes looking for a rollback target.
    fn maybe_corrupt_checkpoint(&mut self) {
        if self
            .config
            .faults
            .should_fail(FaultStage::CheckpointCorrupt)
        {
            self.manager.corrupt_newest();
        }
    }

    /// Returns the sentry-tier counters: the allocator extension's
    /// sampling/trap side merged with the runtime's diagnosis-path side.
    pub fn sentry_metrics(&mut self) -> SentryMetrics {
        let mut m = self.with_ext(|ext| ext.sentry_metrics().cloned().unwrap_or_default());
        m.merge(&self.sentry_counters);
        m
    }

    /// Returns the degradation-ladder counters, with the pool's
    /// persistence health folded in.
    pub fn degradation(&self) -> DegradationMetrics {
        let mut d = self.degradation.clone();
        d.pool_io_errors = self.pool.io_error_count();
        d.pool_degraded = self.pool.is_degraded();
        d
    }

    /// Rung 4 trigger: too many consecutive dropped inputs means even
    /// the generic rung is not holding; a supervisor should fold this
    /// runtime's results and relaunch it from scratch.
    pub fn needs_restart(&self) -> bool {
        self.config.restart_after_drops > 0 && self.drop_streak >= self.config.restart_after_drops
    }

    /// Files a recovery record, maintaining the drop streak and making
    /// sure a checkpoint survives (corruption sweeps can empty the ring;
    /// every later recovery assumes a rollback target exists).
    fn push_record(&mut self, record: RecoveryRecord) -> usize {
        if record.kind == RecoveryKind::Dropped {
            self.drop_streak += 1;
        } else {
            self.drop_streak = 0;
        }
        if self.manager.is_empty() {
            let id = self.manager.force_checkpoint(&mut self.process);
            self.sync_wall();
            self.journal_checkpoint_register(id);
        }
        self.recoveries.push(record);
        self.recoveries.len() - 1
    }

    /// Returns the number of inputs enqueued but not yet consumed.
    pub fn backlog(&self) -> usize {
        self.process.pending()
    }

    /// Returns a point-in-time health summary (fleet supervision).
    pub fn health(&self) -> RuntimeHealth {
        RuntimeHealth {
            recoveries: self.recoveries.len(),
            dropped: self
                .recoveries
                .iter()
                .filter(|r| r.kind == RecoveryKind::Dropped)
                .count(),
            patched: self
                .recoveries
                .iter()
                .filter(|r| r.kind == RecoveryKind::Patched)
                .count(),
            backlog: self.process.pending(),
            pool_epoch: self.pool_epoch_seen,
            drop_streak: self.drop_streak,
        }
    }

    /// Runs a closure over the allocator extension (counters, tables).
    pub fn with_ext<R>(&mut self, f: impl FnOnce(&mut ExtAllocator) -> R) -> R {
        self.process
            .ctx
            .with_alloc_and_mem(|alloc, _mem| f(expect_ext(alloc)))
    }

    fn sync_wall(&mut self) {
        let now = self.process.ctx.clock.now();
        if now > self.last_proc_clock {
            self.wall_ns += now - self.last_proc_clock;
        }
        self.last_proc_clock = now;
    }

    fn resync_without_credit(&mut self) {
        self.last_proc_clock = self.process.ctx.clock.now();
    }

    /// Feeds one input; recovers on failure.
    pub fn feed(&mut self, input: Input) -> FeedOutcome {
        let r = self.process.feed(input);
        self.sync_wall();
        match r {
            StepResult::Ok(_) => {
                self.drop_streak = 0;
                if let Some(id) = self.manager.maybe_checkpoint(&mut self.process) {
                    self.sync_wall();
                    self.maybe_corrupt_checkpoint();
                    self.journal_checkpoint_register(id);
                }
                FeedOutcome {
                    served: true,
                    failed: false,
                    recovery: None,
                }
            }
            StepResult::Failed(_) => {
                let skipped_before = self.process.skipped_count();
                let idx = self.recover();
                // After recovery the failing input either succeeded during
                // the (possibly generic-)patched replay or was skipped.
                let served = self.process.skipped_count() == skipped_before;
                FeedOutcome {
                    served,
                    failed: true,
                    recovery: Some(idx),
                }
            }
        }
    }

    /// Runs a whole recorded workload, recovering as needed; optionally
    /// samples throughput for Fig. 4-style series.
    pub fn run(
        &mut self,
        workload: impl IntoIterator<Item = Input>,
        mut sampler: Option<&mut ThroughputSampler>,
    ) -> RunSummary {
        let mut summary = RunSummary::default();
        let mut enqueued = 0usize;
        for input in workload {
            self.process.enqueue(input);
            enqueued += 1;
        }
        let skipped_at_entry = self.process.skipped_count();
        let mut ok_steps = 0usize;
        loop {
            match self.process.step() {
                None => {
                    if self.process.pending() == 0 {
                        break;
                    }
                    // A pending failure without a step means recover; if
                    // the process is wedged with neither progress nor a
                    // failure, bail out rather than spin.
                    if self.try_recover().is_err() {
                        break;
                    }
                    summary.recoveries += 1;
                }
                Some(StepResult::Ok(_)) => {
                    ok_steps += 1;
                    self.drop_streak = 0;
                    self.sync_wall();
                    if let Some(id) = self.manager.maybe_checkpoint(&mut self.process) {
                        self.sync_wall();
                        self.maybe_corrupt_checkpoint();
                        self.journal_checkpoint_register(id);
                    }
                    let every = self.config.integrity_check_every;
                    if every > 0 && ok_steps.is_multiple_of(every) {
                        let verdict = self
                            .process
                            .ctx
                            .with_alloc_and_mem(|alloc, mem| alloc.heap().check_integrity(mem));
                        if let Err(e) = verdict {
                            self.process.raise_failure(Fault::Heap(e));
                            summary.failures += 1;
                            self.sync_wall();
                            self.recover();
                            summary.recoveries += 1;
                        }
                    }
                }
                Some(StepResult::Failed(_)) => {
                    summary.failures += 1;
                    self.sync_wall();
                    self.recover();
                    summary.recoveries += 1;
                }
            }
            if let Some(s) = sampler.as_deref_mut() {
                s.record(self.wall_ns, self.process.bytes_delivered);
            }
        }
        // Conservation: every enqueued input was either served (possibly
        // during a patched replay inside a recovery) or skipped. This is
        // what the liveness property tests check under fault injection.
        summary.dropped = self.process.skipped_count() - skipped_at_entry;
        summary.served = enqueued.saturating_sub(summary.dropped);
        summary.wall_ns = self.wall_ns;
        summary.bytes_delivered = self.process.bytes_delivered;
        summary.degradation = self.degradation();
        summary.sentry = self.sentry_metrics();
        summary
    }
}
