//! The degradation ladder (rungs 2–4): what recovery does when precise
//! diagnosis is unavailable — generic best-effort patches, rollback-and-
//! drop, and the cheap in-place descent that feeds the rung-4 restart
//! decision.

use fa_allocext::{BugType, Patch, TrapRecord, GENERIC_SITE};
use fa_exec::ROLLBACK_COST_NS;
use fa_proc::FailureRecord;
use fa_wal::{LadderOp, WalOp};

use crate::log;
use crate::report::BugReport;

use super::{FirstAidRuntime, RecoveryKind, RecoveryRecord};

impl FirstAidRuntime {
    /// Journals a degradation-ladder descent.
    fn journal_descent(&self, rung: &str, sig: &str) {
        if self.pool.journal().is_some() {
            self.pool.journal_append(WalOp::LadderDescend(LadderOp {
                program: self.program.clone(),
                rung: rung.to_owned(),
                signature: sig.to_owned(),
            }));
        }
    }

    /// Makes sure the program-wide generic best-effort patches
    /// (`AddPadding` + `DelayFree` at every call-site) are in the pool,
    /// unless that rung has itself been revoked. Returns the freshly
    /// added patches (empty if they were already present or revoked).
    fn arm_generic_rung(&mut self) -> Vec<Patch> {
        if self.pool.is_revoked(&self.program, GENERIC_SITE) {
            return Vec::new();
        }
        let generics = vec![
            Patch::generic(BugType::BufferOverflow),
            Patch::generic(BugType::DanglingRead),
        ];
        if self.pool.add(&self.program, generics.iter().cloned()) > 0 {
            log::warn(format!(
                "{}: descending to generic best-effort patches \
                 (program-wide add-padding + delay-free)",
                self.program
            ));
            generics
        } else {
            Vec::new()
        }
    }

    /// Ladder rungs 2 and 3: roll back to the **oldest** intact
    /// checkpoint (maximum distance from the poisoned state), install
    /// the generic best-effort patches if that rung is still available,
    /// replay, and — under generic protection — attempt the poisoned
    /// input itself. Serving it is rung 2 ([`RecoveryKind::GenericPatched`]);
    /// dropping it is rung 3 ([`RecoveryKind::Dropped`]).
    pub(super) fn descend_ladder(
        &mut self,
        failure: &FailureRecord,
        wall_at_failure: u64,
        diag_log: Vec<String>,
        sig: &str,
        trap: Option<&TrapRecord>,
    ) -> RecoveryRecord {
        let fresh = self.arm_generic_rung();
        let patchset = self.sync_pool_patches();
        let generic_active = patchset.has_generic();

        let Some(target) = self.manager.oldest().map(|c| c.id) else {
            // Every checkpoint was corrupt and got swept: no rollback
            // target at all. Cheapest possible recovery in place.
            return self.descend_cheap(wall_at_failure, sig);
        };
        self.manager.rollback_to(&mut self.process, target);
        self.install_patchset(patchset);
        let t0 = self.process.ctx.clock.now();
        while self.process.cursor() < failure.input_index {
            match self.process.step() {
                Some(r) if r.is_ok() => {}
                _ => break,
            }
        }
        let mut served_through = false;
        if self.process.failure.is_some() {
            // The replay itself failed en route; drop whatever input it
            // died on rather than loop.
            self.process.clear_failure();
            self.process.skip_current();
        } else if self.process.cursor() == failure.input_index {
            if generic_active {
                // Attempt the poisoned input under generic protection.
                match self.process.step() {
                    Some(r) if r.is_ok() => served_through = true,
                    _ => {
                        if self.process.failure.is_some() {
                            self.process.clear_failure();
                        }
                        self.process.skip_current();
                    }
                }
            } else {
                self.process.skip_current();
            }
        }
        self.wall_ns += self.process.ctx.clock.now().saturating_sub(t0) + ROLLBACK_COST_NS;
        self.resync_without_credit();
        let pruned = self.manager.truncate_after(target);
        self.journal_checkpoint_prunes(&pruned);
        self.manager.rearm(&self.process);

        if generic_active {
            // The generic rung now guards this signature; if it recurs
            // anyway, the health monitor revokes GENERIC_SITE and the
            // next descent lands on rung 3.
            let entry = self.monitor.entry(sig.to_owned()).or_default();
            entry.sites = vec![GENERIC_SITE];
        }
        let (kind, rung) = if served_through {
            self.degradation.generic_patches += 1;
            (
                RecoveryKind::GenericPatched,
                "generic best-effort patch (rung 2)",
            )
        } else {
            self.degradation.rollback_drops += 1;
            (RecoveryKind::Dropped, "rollback-and-drop (rung 3)")
        };
        // `generic` records that the generic rung now guards this
        // signature (even when the poisoned input was still dropped), so
        // journal replay can restore the health monitor's guard.
        self.journal_descent(if generic_active { "generic" } else { "dropped" }, sig);
        let report = BugReport::degraded(&self.program, failure, rung, &fresh, diag_log, trap);
        RecoveryRecord {
            kind,
            diagnosis: None,
            patches: fresh,
            recovery_ns: self.wall_ns - wall_at_failure,
            validation: None,
            report: Some(report),
        }
    }

    /// Cheap in-place descent (crash loops, or no intact checkpoint):
    /// no rollback, no replay — arm the generic rung so prevention gets
    /// a chance to break the loop, then drop the poisoned input.
    pub(super) fn descend_cheap(&mut self, wall_at_failure: u64, sig: &str) -> RecoveryRecord {
        let fresh = self.arm_generic_rung();
        if !fresh.is_empty() {
            let patchset = self.sync_pool_patches();
            self.install_patchset(patchset);
            let entry = self.monitor.entry(sig.to_owned()).or_default();
            entry.sites = vec![GENERIC_SITE];
        }
        self.journal_descent(
            if fresh.is_empty() {
                "dropped"
            } else {
                "generic"
            },
            sig,
        );
        self.process.clear_failure();
        self.process.skip_current();
        self.manager.rearm(&self.process);
        self.degradation.rollback_drops += 1;
        RecoveryRecord {
            kind: RecoveryKind::Dropped,
            diagnosis: None,
            patches: fresh,
            recovery_ns: self.wall_ns - wall_at_failure,
            validation: None,
            report: None,
        }
    }
}
