//! The failure path: trap consumption, the patch health monitor,
//! diagnosis (fast path or full ladder), the final patched replay, and
//! validation.

use fa_allocext::TrapRecord;
use fa_exec::{FaError, ROLLBACK_COST_NS};
use fa_proc::FailureRecord;

use crate::diagnose::{trap_bug_type, trap_seed_site, DiagnosisEngine, DiagnosisOutcome};
use crate::log;
use crate::report::BugReport;
use crate::validate::ValidationEngine;

use super::{FirstAidRuntime, RecoveryKind, RecoveryRecord};

impl FirstAidRuntime {
    /// Health-monitor key for a failure: fault class + failing op code.
    /// Deliberately coarse — a patch that "works" but lets the same kind
    /// of failure recur on the same request type is not working.
    ///
    /// Sentry traps carry the faulting object's call-site, so their
    /// signature additionally pins the patch-relevant site: a sampled
    /// trap at one call-site must not count as a recurrence against a
    /// patch that was installed for a *different* call-site signature.
    fn bug_signature(&self, failure: &FailureRecord, trap: Option<&TrapRecord>) -> String {
        let op = self
            .process
            .log()
            .get(failure.input_index)
            .map(|i| i.op)
            .unwrap_or(u32::MAX);
        match trap {
            Some(t) => {
                let bug = trap_bug_type(t);
                let site = trap_seed_site(t, bug).unwrap_or(t.alloc_site);
                format!("{}@op{op}@s{:x}", failure.fault.class(), site.leaf())
            }
            None => format!("{}@op{op}", failure.fault.class()),
        }
    }

    /// Diagnoses the pending failure, installs patches, resumes execution,
    /// validates, and files a [`RecoveryRecord`]. Returns its index.
    ///
    /// When precise diagnosis is impossible (timeout, flaky re-execution,
    /// lost checkpoints, revoked patches), recovery descends the
    /// degradation ladder instead of giving up: generic best-effort
    /// patches → rollback-and-drop → (via [`FirstAidRuntime::needs_restart`])
    /// drop-and-restart.
    ///
    /// # Panics
    ///
    /// Panics if no failure is pending; [`FirstAidRuntime::try_recover`]
    /// is the non-panicking form.
    pub fn recover(&mut self) -> usize {
        self.try_recover().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FirstAidRuntime::recover`]: returns an error instead of
    /// panicking when no failure is pending.
    pub fn try_recover(&mut self) -> Result<usize, FaError> {
        let Some(failure) = self.process.failure.clone() else {
            return Err(FaError::NoPendingFailure("recover"));
        };
        self.sync_wall();
        let wall_at_failure = self.wall_ns;

        // A sentry trap caught the bug at the faulting access; consume
        // the trap record now (rollbacks below would discard it) so it
        // can key the health monitor and seed the fast diagnosis path.
        let trap = if failure.fault.class() == "sentry-trap" {
            self.with_ext(|ext| ext.take_pending_trap())
        } else {
            None
        };
        if let Some(t) = &trap {
            // The extension's counters for this trap sit in state the
            // recovery is about to roll back; re-home the trap onto the
            // runtime's own counters (which survive rollbacks) and drop
            // the extension's copy so no-rollback recoveries do not
            // count it twice.
            let kind = t.kind;
            self.with_ext(|ext| {
                if let Some(e) = ext.sentry_mut() {
                    e.metrics_mut().uncount_trap(kind);
                }
            });
            self.sentry_counters.count_trap(kind);
        }

        // Discard checkpoints whose checksum no longer matches before
        // anything relies on the ring: diagnosis and the ladder both
        // fall back to the next-older intact checkpoint.
        let swept = self.manager.sweep_corrupt();
        if !swept.is_empty() {
            self.degradation.checkpoint_checksum_misses += swept.len();
            log::warn(format!(
                "{}: discarded {} corrupt checkpoint(s) {:?}; falling back to older intact ones",
                self.program,
                swept.len(),
                swept
            ));
        }

        // Patch health monitor: a recurring bug signature means the
        // patches installed for it are not working. Revoke them (fleet-
        // wide tombstone) and escalate one rung.
        let sig = self.bug_signature(&failure, trap.as_ref());
        let recurrence = {
            let entry = self.monitor.entry(sig.clone()).or_default();
            entry.count += 1;
            entry.count
        };
        if recurrence >= self.config.patch_recurrence_limit.max(2) {
            let sites = self
                .monitor
                .get_mut(&sig)
                .map(|e| std::mem::take(&mut e.sites))
                .unwrap_or_default();
            if !sites.is_empty() {
                let mut revoked = 0usize;
                for site in sites {
                    if self.pool.revoke(&self.program, site) {
                        revoked += 1;
                    }
                }
                if revoked > 0 {
                    self.degradation.patch_revocations += revoked;
                    log::warn(format!(
                        "{}: bug signature {sig} recurred {recurrence}x under its patches; \
                         revoked {revoked} site(s) and escalating one rung",
                        self.program
                    ));
                }
                if let Some(e) = self.monitor.get_mut(&sig) {
                    e.count = 0;
                }
                self.last_failure_index = Some(failure.input_index);
                let record =
                    self.descend_ladder(&failure, wall_at_failure, Vec::new(), &sig, trap.as_ref());
                return Ok(self.push_record(record));
            }
        }

        // Crash-loop safeguard: if failures recur within a few inputs of
        // the previous one, diagnosis is evidently not helping (e.g. an
        // ineffective patch, or a bug First-Aid cannot fix) — resort to
        // the cheap recovery scheme and drop the input (paper §2: "times
        // out and resorts to other recovery schemes").
        let crash_loop = self
            .last_failure_index
            .is_some_and(|prev| failure.input_index.saturating_sub(prev) < 20);
        self.last_failure_index = Some(failure.input_index);
        if crash_loop {
            let record = self.descend_cheap(wall_at_failure, &sig);
            return Ok(self.push_record(record));
        }

        let engine = DiagnosisEngine::with_faults(self.config.engine, self.config.faults.clone());
        // Sentry traps name the faulting call-site, so try the fast path
        // first: one confirming re-execution seeded with the trapped
        // site instead of the full trial ladder. When it cannot confirm
        // (or a pipeline fault wedges it), degrade to the full ladder.
        let outcome = match trap
            .as_ref()
            .and_then(|t| engine.diagnose_fast(&mut self.process, &self.manager, t))
        {
            Some(d) => {
                self.sentry_counters.fast_path_diagnoses += 1;
                DiagnosisOutcome::Diagnosed(d)
            }
            None => {
                if trap.is_some() {
                    self.sentry_counters.full_ladder_diagnoses += 1;
                }
                engine.diagnose(&mut self.process, &self.manager)
            }
        };
        self.degradation.reexec_retries += engine.retries_used();
        self.degradation.trial_hangs += engine.trial_hangs();
        self.degradation.speculative_trials += engine.speculative_trials();
        self.degradation.parallel_waves += engine.parallel_waves();
        self.slab_reuses += engine.slab_reuses();
        self.trial_errors += engine.trial_errors();
        let record = match outcome {
            DiagnosisOutcome::NonDeterministic {
                elapsed_ns, log, ..
            } => {
                // The successful plain re-execution left the process past
                // the failure region; keep going from there.
                self.wall_ns += elapsed_ns;
                self.resync_without_credit();
                self.manager.rearm(&self.process);
                self.degradation.nondeterministic += 1;
                let _ = log;
                RecoveryRecord {
                    kind: RecoveryKind::NonDeterministic,
                    diagnosis: None,
                    patches: Vec::new(),
                    recovery_ns: self.wall_ns - wall_at_failure,
                    validation: None,
                    report: None,
                }
            }
            DiagnosisOutcome::NonPatchable {
                elapsed_ns, log, ..
            } => {
                self.wall_ns += elapsed_ns;
                if log.iter().any(|l| l.contains("deadline exceeded")) {
                    self.degradation.diagnosis_timeouts += 1;
                }
                self.descend_ladder(&failure, wall_at_failure, log, &sig, trap.as_ref())
            }
            DiagnosisOutcome::Diagnosed(diagnosis) => {
                self.wall_ns += diagnosis.elapsed_ns;
                let patches = diagnosis.patches(&self.process.ctx.symbols);
                // A diagnosis that only re-derives revoked (known-
                // ineffective) sites would re-install them and loop;
                // escalate instead.
                if !patches.is_empty()
                    && patches
                        .iter()
                        .all(|p| self.pool.is_revoked(&self.program, p.site))
                {
                    log::warn(format!(
                        "{}: diagnosis re-derived only revoked patch site(s); escalating",
                        self.program
                    ));
                    let record = self.descend_ladder(
                        &failure,
                        wall_at_failure,
                        diagnosis.log.clone(),
                        &sig,
                        trap.as_ref(),
                    );
                    return Ok(self.push_record(record));
                }
                self.pool.add(&self.program, patches.iter().cloned());
                if let Some(e) = self.monitor.get_mut(&sig) {
                    e.sites = patches.iter().map(|p| p.site).collect();
                }
                self.degradation.precise_patches += 1;
                let patchset = self.sync_pool_patches();

                // Final recovery pass: back to the diagnosis checkpoint in
                // normal mode with the patches installed; replay forward.
                self.manager
                    .rollback_to(&mut self.process, diagnosis.checkpoint_id);
                self.install_patchset(patchset.clone());
                // Recovery ends when the process is back in normal mode
                // and has caught up to the input it crashed on; traffic
                // beyond that is ordinary execution (the paper's recovery
                // time is "from when the failure is first caught to when
                // the program changes back to normal mode").
                let t0 = self.process.ctx.clock.now();
                while self.process.cursor() <= failure.input_index {
                    match self.process.step() {
                        Some(r) if r.is_ok() => {}
                        _ => break,
                    }
                }
                if self.process.failure.is_some() {
                    // The patch did not carry the replay through the
                    // region (should not happen after a clean phase 1);
                    // drop the poisoned input rather than loop.
                    self.process.clear_failure();
                    self.process.skip_current();
                }
                self.wall_ns += self.process.ctx.clock.now().saturating_sub(t0) + ROLLBACK_COST_NS;
                self.resync_without_credit();
                let recovery_ns = self.wall_ns - wall_at_failure;

                // Validation runs on a fork from the diagnosis checkpoint;
                // it is parallel in the paper, so its virtual time is
                // reported but not added to the main wall.
                let (validation, report) = if self.config.validation_iterations > 0 {
                    let snap = self
                        .manager
                        .get(diagnosis.checkpoint_id)
                        .map(|c| c.snap.clone());
                    match snap {
                        Some(snap) => {
                            let verdict = ValidationEngine::new(self.config.validation_iterations)
                                .try_validate(
                                    &self.config.faults,
                                    &self.process,
                                    &snap,
                                    &patchset,
                                    diagnosis.until_cursor,
                                );
                            match verdict {
                                None => {
                                    // The validation fork died; the patches
                                    // already survived diagnosis, so keep
                                    // them — but file no consistency verdict
                                    // and no report.
                                    self.degradation.validation_fork_failures += 1;
                                    log::warn(format!(
                                        "{}: validation fork failed; keeping patches unvalidated",
                                        self.program
                                    ));
                                    (None, None)
                                }
                                Some(v) => {
                                    if !v.consistent {
                                        for p in &patches {
                                            self.pool.remove_site(&self.program, p.site);
                                        }
                                        let reduced = self.sync_pool_patches();
                                        self.install_patchset(reduced);
                                        if let Some(e) = self.monitor.get_mut(&sig) {
                                            e.sites.clear();
                                        }
                                    }
                                    let report = BugReport::build(
                                        &self.program,
                                        &failure,
                                        &diagnosis,
                                        &patches,
                                        &v,
                                        &self.process.ctx.symbols,
                                        trap.as_ref(),
                                    );
                                    (Some(v), Some(report))
                                }
                            }
                        }
                        None => (None, None),
                    }
                } else {
                    (None, None)
                };

                let pruned = self.manager.truncate_after(diagnosis.checkpoint_id);
                self.journal_checkpoint_prunes(&pruned);
                self.manager.rearm(&self.process);
                RecoveryRecord {
                    kind: RecoveryKind::Patched,
                    diagnosis: Some(diagnosis),
                    patches,
                    recovery_ns,
                    validation,
                    report,
                }
            }
        };
        // A trap that did not end in precise patches is a false (or at
        // least unconfirmable) trap; feed the rate back into metrics so
        // the bench can police sampling quality.
        if trap.is_some() && record.kind != RecoveryKind::Patched {
            self.sentry_counters.false_traps += 1;
        }
        Ok(self.push_record(record))
    }
}
