//! Throughput sampling for the Fig. 4 experiments.

/// Buckets delivered bytes into fixed wall-clock windows, producing the
/// MB/s-over-time series of paper Fig. 4.
#[derive(Clone, Debug)]
pub struct ThroughputSampler {
    window_ns: u64,
    /// Delivered bytes per window.
    buckets: Vec<u64>,
    last_bytes: u64,
}

impl ThroughputSampler {
    /// Creates a sampler with the given window width.
    pub fn new(window_ns: u64) -> Self {
        ThroughputSampler {
            window_ns,
            buckets: Vec::new(),
            last_bytes: 0,
        }
    }

    /// Records the cumulative delivered byte count at wall time `wall_ns`.
    pub fn record(&mut self, wall_ns: u64, delivered_bytes: u64) {
        let idx = (wall_ns / self.window_ns) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        let delta = delivered_bytes.saturating_sub(self.last_bytes);
        self.last_bytes = delivered_bytes;
        self.buckets[idx] += delta;
    }

    /// Returns `(window_start_seconds, MB/s)` series.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let window_s = self.window_ns as f64 / 1e9;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &bytes)| (i as f64 * window_s, bytes as f64 / 1_048_576.0 / window_s))
            .collect()
    }

    /// Returns the window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_deltas() {
        let mut s = ThroughputSampler::new(1_000_000_000); // 1 s
        s.record(100_000_000, 1_048_576); // 1 MB in window 0
        s.record(1_500_000_000, 3_145_728); // +2 MB in window 1
        let series = s.series();
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        assert!((series[1].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_windows_are_zero() {
        let mut s = ThroughputSampler::new(1_000_000_000);
        s.record(100_000_000, 1_048_576);
        s.record(3_100_000_000, 1_048_576); // no new bytes
        let series = s.series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[1].1, 0.0);
        assert_eq!(series[2].1, 0.0);
    }
}
