//! Throughput sampling for the Fig. 4 experiments, plus the
//! degradation-ladder counters.

use serde::Serialize;

/// Counters for the degradation ladder and the pipeline's own failures.
///
/// One instance rides on [`RunSummary`](crate::RunSummary) (per
/// runtime) and on the fleet reports (merged across workers). Each
/// rung of the ladder — precise patch → generic best-effort patch →
/// rollback-and-drop → drop-and-restart — has a counter, alongside the
/// injected/observed faults of the pipeline stages themselves.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct DegradationMetrics {
    /// Rung 1: recoveries that installed a precise call-site patch.
    pub precise_patches: usize,
    /// Rung 2: recoveries served through the generic program-wide patch.
    pub generic_patches: usize,
    /// Rung 3: recoveries that rolled back and dropped the input.
    pub rollback_drops: usize,
    /// Rung 4: process restarts (fleet workers relaunching a runtime).
    pub restarts: usize,
    /// Failures diagnosed as nondeterministic (no rung descended).
    pub nondeterministic: usize,
    /// Patches revoked by the health monitor as ineffective.
    pub patch_revocations: usize,
    /// Checkpoints discarded because their checksum no longer matched.
    pub checkpoint_checksum_misses: usize,
    /// Diagnoses abandoned because the deadline was exceeded.
    pub diagnosis_timeouts: usize,
    /// Flaky re-executions retried by the diagnosis engine.
    pub reexec_retries: usize,
    /// Hung diagnosis trials reaped by the watchdog (injected hangs and
    /// genuine per-trial deadline overruns).
    pub trial_hangs: usize,
    /// Validation forks that died before producing a verdict.
    pub validation_fork_failures: usize,
    /// Patch-pool persistence I/O errors absorbed (retried or degraded).
    pub pool_io_errors: u64,
    /// True if the patch pool gave up on persistence and went in-memory.
    pub pool_degraded: bool,
    /// Speculative diagnosis trials launched by the parallel scheduler.
    pub speculative_trials: usize,
    /// Diagnosis waves that ran with at least one speculative trial.
    pub parallel_waves: usize,
}

impl DegradationMetrics {
    /// Accumulates `other` into `self` (fleet aggregation).
    pub fn merge(&mut self, other: &DegradationMetrics) {
        self.precise_patches += other.precise_patches;
        self.generic_patches += other.generic_patches;
        self.rollback_drops += other.rollback_drops;
        self.restarts += other.restarts;
        self.nondeterministic += other.nondeterministic;
        self.patch_revocations += other.patch_revocations;
        self.checkpoint_checksum_misses += other.checkpoint_checksum_misses;
        self.diagnosis_timeouts += other.diagnosis_timeouts;
        self.reexec_retries += other.reexec_retries;
        self.trial_hangs += other.trial_hangs;
        self.validation_fork_failures += other.validation_fork_failures;
        self.pool_io_errors += other.pool_io_errors;
        self.pool_degraded |= other.pool_degraded;
        self.speculative_trials += other.speculative_trials;
        self.parallel_waves += other.parallel_waves;
    }

    /// Total recoveries that descended past the precise rung.
    pub fn degraded_recoveries(&self) -> usize {
        self.generic_patches + self.rollback_drops + self.restarts
    }
}

/// Buckets delivered bytes into fixed wall-clock windows, producing the
/// MB/s-over-time series of paper Fig. 4.
#[derive(Clone, Debug)]
pub struct ThroughputSampler {
    window_ns: u64,
    /// Delivered bytes per window.
    buckets: Vec<u64>,
    last_bytes: u64,
}

impl ThroughputSampler {
    /// Creates a sampler with the given window width.
    pub fn new(window_ns: u64) -> Self {
        ThroughputSampler {
            window_ns,
            buckets: Vec::new(),
            last_bytes: 0,
        }
    }

    /// Records the cumulative delivered byte count at wall time `wall_ns`.
    pub fn record(&mut self, wall_ns: u64, delivered_bytes: u64) {
        let idx = (wall_ns / self.window_ns) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        let delta = delivered_bytes.saturating_sub(self.last_bytes);
        self.last_bytes = delivered_bytes;
        self.buckets[idx] += delta;
    }

    /// Returns `(window_start_seconds, MB/s)` series.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let window_s = self.window_ns as f64 / 1e9;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &bytes)| (i as f64 * window_s, bytes as f64 / 1_048_576.0 / window_s))
            .collect()
    }

    /// Returns the window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_deltas() {
        let mut s = ThroughputSampler::new(1_000_000_000); // 1 s
        s.record(100_000_000, 1_048_576); // 1 MB in window 0
        s.record(1_500_000_000, 3_145_728); // +2 MB in window 1
        let series = s.series();
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        assert!((series[1].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_merge_sums_counters_and_ors_flags() {
        let mut a = DegradationMetrics {
            precise_patches: 1,
            generic_patches: 2,
            pool_io_errors: 3,
            ..DegradationMetrics::default()
        };
        let b = DegradationMetrics {
            generic_patches: 1,
            rollback_drops: 4,
            pool_degraded: true,
            ..DegradationMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.precise_patches, 1);
        assert_eq!(a.generic_patches, 3);
        assert_eq!(a.rollback_drops, 4);
        assert_eq!(a.pool_io_errors, 3);
        assert!(a.pool_degraded);
        assert_eq!(a.degraded_recoveries(), 7);
    }

    #[test]
    fn idle_windows_are_zero() {
        let mut s = ThroughputSampler::new(1_000_000_000);
        s.record(100_000_000, 1_048_576);
        s.record(3_100_000_000, 1_048_576); // no new bytes
        let series = s.series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[1].1, 0.0);
        assert_eq!(series[2].1, 0.0);
    }
}
