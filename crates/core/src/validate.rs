//! Patch validation (paper §5).
//!
//! A diagnosis can, rarely, blame a memory bug for what is really a
//! layout-dependent semantic bug. To rule that out, First-Aid re-executes
//! the buggy region several times under **randomized allocation** and
//! checks that the patch's effect is *consistent*:
//!
//! (a) the patch is triggered the same number of times;
//! (b) the same number of illegal accesses is neutralized;
//! (c) each illegal access is made by the same instruction at the same
//!     offset in the corresponding memory object (the object's *address*
//!     differs run to run — objects correspond by allocation order).
//!
//! Validation runs on a fork of the process, so it does not delay
//! recovery; [`ValidationEngine::validate_parallel`] actually runs it on a
//! separate thread.

use std::collections::HashMap;

use fa_allocext::{PatchSet, TraceEvent};
use fa_exec::ProcessSlab;
use fa_proc::{ProcSnapshot, Process};

use crate::harness::expect_ext;

/// The result of validating a patch set.
#[derive(Clone, Debug)]
pub struct ValidationOutcome {
    /// The patches passed all consistency criteria.
    pub consistent: bool,
    /// Why validation failed, if it did.
    pub reason: Option<String>,
    /// Number of randomized iterations executed.
    pub iterations: usize,
    /// Virtual time the validation consumed (on the fork's clock).
    pub validation_ns: u64,
    /// Full trace of each iteration (feeds the bug report).
    pub traces: Vec<Vec<TraceEvent>>,
    /// Patch trigger counts per iteration.
    pub trigger_counts: Vec<HashMap<usize, u64>>,
    /// Reference trace of a run *without* patches (for the report's
    /// allocation/deallocation diff); truncated at its failure.
    pub unpatched_trace: Vec<TraceEvent>,
}

/// Canonical form of an illegal access for cross-run comparison:
/// `(kind, read/write, access site, object allocation seq, offset)`.
type IllegalKey = (u8, bool, fa_proc::CallSite, u64, u64);

/// Re-executes the buggy region under randomization and checks patch
/// consistency.
pub struct ValidationEngine {
    /// Number of randomized iterations (the paper uses 3).
    pub iterations: usize,
}

impl Default for ValidationEngine {
    fn default() -> Self {
        ValidationEngine { iterations: 3 }
    }
}

impl ValidationEngine {
    /// Creates an engine running `iterations` randomized re-executions.
    pub fn new(iterations: usize) -> Self {
        ValidationEngine { iterations }
    }

    /// Fault-aware wrapper around [`ValidationEngine::validate`]: asks
    /// the plan whether the validation fork dies before producing a
    /// verdict. `None` means the fork failed — the caller keeps the
    /// patches (they already survived diagnosis) but gets no
    /// consistency verdict and no report traces.
    pub fn try_validate(
        &self,
        faults: &fa_faults::FaultPlan,
        process: &Process,
        snap: &ProcSnapshot,
        patches: &PatchSet,
        until_cursor: usize,
    ) -> Option<ValidationOutcome> {
        if faults.should_fail(fa_faults::FaultStage::ValidationFork) {
            return None;
        }
        Some(self.validate(process, snap, patches, until_cursor))
    }

    /// Validates `patches` on a fork of `process` rolled back to `snap`.
    pub fn validate(
        &self,
        process: &Process,
        snap: &ProcSnapshot,
        patches: &PatchSet,
        until_cursor: usize,
    ) -> ValidationOutcome {
        let mut traces: Vec<Vec<TraceEvent>> = Vec::new();
        let mut trigger_counts: Vec<HashMap<usize, u64>> = Vec::new();
        let mut validation_ns = 0u64;
        let mut failure_reason: Option<String> = None;
        // One pooled trial context serves every iteration: each loop
        // rebinds and restores it from `snap`, which only rewrites the
        // pages the previous iteration diverged.
        let mut slab = ProcessSlab::new();

        for seed in 1..=self.iterations as u64 {
            let mut fork = slab.acquire(process);
            fork.restore(snap);
            fork.set_pacing(false);
            let t0 = fork.ctx.clock.now();
            fork.ctx.with_alloc_and_mem(|alloc, _mem| {
                expect_ext(alloc).set_validation(patches.clone(), seed);
            });
            while fork.cursor() < until_cursor {
                match fork.step() {
                    Some(r) if r.is_ok() => {}
                    _ => break,
                }
            }
            validation_ns += fork.ctx.clock.now().saturating_sub(t0);
            if let Some(f) = &fork.failure {
                failure_reason = Some(format!(
                    "iteration {seed}: program failed under randomization: {}",
                    f.fault
                ));
                break;
            }
            let (trace, triggers) = fork.ctx.with_alloc_and_mem(|alloc, _mem| {
                let ext = expect_ext(alloc);
                (ext.take_trace(), ext.counters().patch_triggers.clone())
            });
            traces.push(trace);
            trigger_counts.push(triggers);
            slab.release(fork);
        }

        // Reference run without patches, for the report diff. Failure here
        // is expected (it is the original bug) and simply truncates the
        // trace.
        let unpatched_trace = {
            let mut fork = slab.acquire(process);
            fork.restore(snap);
            fork.set_pacing(false);
            fork.ctx.with_alloc_and_mem(|alloc, _mem| {
                expect_ext(alloc).set_validation(PatchSet::new(), 0);
            });
            while fork.cursor() < until_cursor {
                match fork.step() {
                    Some(r) if r.is_ok() => {}
                    _ => break,
                }
            }
            fork.ctx
                .with_alloc_and_mem(|alloc, _mem| expect_ext(alloc).take_trace())
        };

        let (consistent, reason) = match failure_reason {
            Some(r) => (false, Some(r)),
            None => Self::check_consistency(&traces, &trigger_counts),
        };
        ValidationOutcome {
            consistent,
            reason,
            iterations: traces.len(),
            validation_ns,
            traces,
            trigger_counts,
            unpatched_trace,
        }
    }

    /// Spawns validation on a separate thread — "in parallel on a
    /// different processor core based on a snapshot of the program"
    /// (paper §2).
    pub fn validate_parallel(
        &self,
        process: &Process,
        snap: &ProcSnapshot,
        patches: &PatchSet,
        until_cursor: usize,
    ) -> std::thread::JoinHandle<ValidationOutcome> {
        let fork = process.fork();
        let snap = snap.clone();
        let patches = patches.clone();
        let iterations = self.iterations;
        std::thread::spawn(move || {
            ValidationEngine::new(iterations).validate(&fork, &snap, &patches, until_cursor)
        })
    }

    fn check_consistency(
        traces: &[Vec<TraceEvent>],
        trigger_counts: &[HashMap<usize, u64>],
    ) -> (bool, Option<String>) {
        if traces.len() < 2 {
            return (true, None);
        }
        // Criterion (a): identical trigger counts.
        for (i, counts) in trigger_counts.iter().enumerate().skip(1) {
            if counts != &trigger_counts[0] {
                return (
                    false,
                    Some(format!(
                        "criterion (a): patch trigger counts differ between iterations 1 and {}",
                        i + 1
                    )),
                );
            }
        }
        // Criteria (b) + (c): identical multiset of canonical illegal
        // accesses.
        let keys: Vec<Vec<IllegalKey>> = traces.iter().map(|t| Self::illegal_keys(t)).collect();
        for (i, k) in keys.iter().enumerate().skip(1) {
            if k.len() != keys[0].len() {
                return (
                    false,
                    Some(format!(
                        "criterion (b): {} illegal accesses in iteration 1 vs {} in iteration {}",
                        keys[0].len(),
                        k.len(),
                        i + 1
                    )),
                );
            }
            if k != &keys[0] {
                return (
                    false,
                    Some(format!(
                        "criterion (c): illegal access sites/offsets differ between iterations \
                         1 and {}",
                        i + 1
                    )),
                );
            }
        }
        (true, None)
    }

    fn illegal_keys(trace: &[TraceEvent]) -> Vec<IllegalKey> {
        let mut keys: Vec<IllegalKey> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Illegal {
                    kind,
                    access,
                    access_site,
                    obj_seq,
                    offset,
                    ..
                } => Some((
                    *kind as u8,
                    matches!(access, fa_mem::AccessKind::Write),
                    *access_site,
                    *obj_seq,
                    *offset,
                )),
                _ => None,
            })
            .collect();
        keys.sort();
        keys
    }
}
