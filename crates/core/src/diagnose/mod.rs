//! The diagnosis engine (paper §4).
//!
//! Phase 1 identifies the latest checkpoint before the bug-triggering
//! point; phase 2 identifies the bug types (the `Su`/`Si` probe algorithm)
//! and the bug-triggering call-sites — directly from canary corruption and
//! deallocation parameters for overflow / dangling write / double free, and
//! by O(M·log N) binary search over call-sites for dangling read and
//! uninitialized read.
//!
//! The engine never drives rollback/replay plumbing itself: every trial is
//! a [`TrialSpec`] executed on an fa-exec [`fa_exec::TrialSubstrate`] —
//! [`fa_exec::ManagedSubstrate`] for the sequential leader path,
//! [`fa_exec::SlabSubstrate`] on pooled contexts for speculation. The
//! engine's three concerns are split across submodules: `probes` (spec
//! construction, manifestation rules, and the sentry fast path
//! [`DiagnosisEngine::diagnose_fast`]), `tree` (the O(M·log N) call-site
//! bisection), and `waves` (the speculative wave scheduler and
//! commit-order accounting).
//!
//! # Parallel speculative trials
//!
//! With [`EngineConfig::parallelism`] > 1 the engine runs *waves* of
//! rollback/re-execution trials concurrently. Every trial is a pure
//! function of its [`TrialSpec`] (re-execution always begins with a
//! rollback, so no state leaks between trials), which makes it sound to
//! execute the trials the sequential algorithm *would* run next — both
//! branches of upcoming decisions — speculatively on pooled processes
//! restored from cloned checkpoint snapshots (cheap: COW `Arc` clones per
//! page, and cheaper still when a recycled slab context already shares
//! most pages with the snapshot). The driver then consumes results from
//! the wave cache in the exact sequential order; a prediction miss
//! discards the cache and starts a new wave. Virtual time is charged as
//! the running *maximum* over the trials of a wave rather than their sum,
//! modelling concurrent execution; every other ledger quantity (rollback
//! count, log, fault-plan consultation order, and the resulting
//! [`Diagnosis`]) is identical to the sequential engine's.

mod probes;
mod tree;
mod waves;

use std::cell::Cell;

use fa_allocext::{BugType, ChangePlan, Manifestation, Patch, TrapKind, TrapRecord};
use fa_checkpoint::CheckpointManager;
use fa_exec::{FaError, ProcessSlab, ReplayHarness, TrialLedger as Ledger, TrialSpec};
use fa_faults::{FaultPlan, FaultStage};
use fa_mem::AccessKind;
use fa_proc::{CallSite, Process};

use waves::SpecCache;

/// Maps a sentry trap to the bug type it evidences.
pub fn trap_bug_type(trap: &TrapRecord) -> BugType {
    match trap.kind {
        TrapKind::GuardHit | TrapKind::CanaryOnFree => BugType::BufferOverflow,
        TrapKind::DoubleFreeSlot => BugType::DoubleFree,
        TrapKind::UninitReadSlot => BugType::UninitRead,
        TrapKind::PoisonAccess => match trap.access {
            Some(AccessKind::Write) => BugType::DanglingWrite,
            _ => BugType::DanglingRead,
        },
    }
}

/// The call-site a sentry trap suggests as the patch point for `bug`.
pub fn trap_seed_site(trap: &TrapRecord, bug: BugType) -> Option<CallSite> {
    if bug.patches_at_allocation() {
        Some(trap.alloc_site)
    } else {
        trap.free_site
    }
}

/// Tunables of the diagnosis engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Success margin past the failure point, as a multiple of the
    /// checkpoint interval (the paper uses 3).
    pub margin_intervals: u64,
    /// How many checkpoints phase 1 tries before declaring the bug
    /// non-patchable.
    pub max_checkpoint_tries: usize,
    /// Hard cap on total re-executions (the diagnosis timeout).
    pub max_reexecutions: usize,
    /// Run the heap-integrity monitor during re-executions (must match
    /// the deployment's normal-execution monitors).
    pub integrity_check: bool,
    /// Hard deadline on total diagnosis time (virtual ns); `0` means
    /// unlimited. A diagnosis that blows the deadline is abandoned as
    /// non-patchable and the runtime descends the degradation ladder.
    pub deadline_ns: u64,
    /// How many times a flaky re-execution (one that dies for reasons
    /// unrelated to the bug) is retried before the iteration is
    /// written off as failed.
    pub reexec_retries: u32,
    /// Base backoff charged per flaky retry; doubles per attempt.
    pub retry_backoff_ns: u64,
    /// Per-trial virtual-time deadline enforced by the hung-trial
    /// watchdog; `0` disables the overrun check (injected hangs are
    /// still reaped). A trial past its deadline is declared lost and
    /// recovery degrades (descends the ladder) instead of wedging the
    /// wave.
    pub trial_deadline_ns: u64,
    /// Width of a speculative trial wave (worker threads running
    /// independent rollback/re-execution trials concurrently). `1`
    /// reproduces the sequential engine byte for byte; larger widths
    /// produce the identical [`Diagnosis`] while charging less virtual
    /// time (max over a wave instead of the sum).
    pub parallelism: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            margin_intervals: 3,
            max_checkpoint_tries: 8,
            max_reexecutions: 96,
            integrity_check: false,
            deadline_ns: 120_000_000_000,
            reexec_retries: 2,
            retry_backoff_ns: 2_000_000,
            trial_deadline_ns: 60_000_000_000,
            parallelism: 1,
        }
    }
}

/// One diagnosed bug: its type, triggering call-sites, and evidence.
#[derive(Clone, Debug)]
pub struct DiagnosedBug {
    /// The bug type.
    pub bug: BugType,
    /// Allocation or deallocation call-sites of the bug-triggering
    /// objects (the patch application points).
    pub sites: Vec<CallSite>,
    /// Manifestations supporting the conclusion.
    pub evidence: Vec<Manifestation>,
}

/// The result of a completed diagnosis.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// All diagnosed bugs (the identified set `Si` with call-sites).
    pub bugs: Vec<DiagnosedBug>,
    /// The checkpoint the patches take effect from.
    pub checkpoint_id: u64,
    /// Number of rollback/re-execution iterations performed.
    pub rollbacks: usize,
    /// Virtual time consumed by diagnosis.
    pub elapsed_ns: u64,
    /// Human-readable diagnosis log (part of the bug report).
    pub log: Vec<String>,
    /// End of the success region used as the re-execution criterion.
    pub until_cursor: usize,
}

/// What the diagnosis concluded.
#[derive(Clone, Debug)]
pub enum DiagnosisOutcome {
    /// Deterministic memory bugs were identified; patches follow.
    Diagnosed(Diagnosis),
    /// A plain re-execution with only timing changes succeeded: the
    /// failure was non-deterministic; execution simply continues.
    NonDeterministic {
        /// Iterations used.
        rollbacks: usize,
        /// Virtual time consumed.
        elapsed_ns: u64,
        /// Diagnosis log.
        log: Vec<String>,
    },
    /// The engine timed out or no checkpoint survives the region; other
    /// recovery schemes (e.g. restart) must take over.
    NonPatchable {
        /// Iterations used.
        rollbacks: usize,
        /// Virtual time consumed.
        elapsed_ns: u64,
        /// Diagnosis log.
        log: Vec<String>,
    },
}

impl Diagnosis {
    /// Generates the runtime patches for this diagnosis.
    pub fn patches(&self, symbols: &fa_proc::SymbolTable) -> Vec<Patch> {
        self.bugs
            .iter()
            .flat_map(|d| d.sites.iter().map(|&s| Patch::new(d.bug, s, symbols)))
            .collect()
    }
}

/// The diagnosis engine. Almost stateless; state lives in the process,
/// the checkpoint manager, and the returned [`Diagnosis`] — the engine
/// itself only tracks the flaky-retry and speculation counters of the
/// current diagnosis and holds the fault plan it consults before each
/// committed re-execution.
pub struct DiagnosisEngine {
    config: EngineConfig,
    faults: FaultPlan,
    retries: Cell<usize>,
    spec_launched: Cell<usize>,
    spec_hits: Cell<usize>,
    spec_wasted: Cell<usize>,
    waves: Cell<usize>,
    slab_reuses: Cell<usize>,
    trial_errors: Cell<usize>,
    trial_hangs: Cell<usize>,
}

impl DiagnosisEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_faults(config, FaultPlan::none())
    }

    /// Creates an engine whose re-executions are subject to `faults`.
    pub fn with_faults(config: EngineConfig, faults: FaultPlan) -> Self {
        DiagnosisEngine {
            config,
            faults,
            retries: Cell::new(0),
            spec_launched: Cell::new(0),
            spec_hits: Cell::new(0),
            spec_wasted: Cell::new(0),
            waves: Cell::new(0),
            slab_reuses: Cell::new(0),
            trial_errors: Cell::new(0),
            trial_hangs: Cell::new(0),
        }
    }

    /// Flaky re-executions retried so far by this engine.
    pub fn retries_used(&self) -> usize {
        self.retries.get()
    }

    /// Speculative trials launched by the parallel scheduler.
    pub fn speculative_trials(&self) -> usize {
        self.spec_launched.get()
    }

    /// Speculative results consumed by later diagnosis steps.
    pub fn speculative_hits(&self) -> usize {
        self.spec_hits.get()
    }

    /// Speculative results discarded (mispredicted or superseded).
    pub fn speculative_wasted(&self) -> usize {
        self.spec_wasted.get()
    }

    /// Waves that ran with at least one speculative trial.
    pub fn parallel_waves(&self) -> usize {
        self.waves.get()
    }

    /// Trial contexts served by recycling a pooled slab process instead
    /// of forking a fresh one.
    pub fn slab_reuses(&self) -> usize {
        self.slab_reuses.get()
    }

    /// Trials that could not run (lost checkpoint, poisoned worker);
    /// each degraded to a failed run instead of aborting diagnosis.
    pub fn trial_errors(&self) -> usize {
        self.trial_errors.get()
    }

    /// Hung trials reaped by the watchdog (injected hangs plus genuine
    /// deadline overruns), counting every reap-and-retry.
    pub fn trial_hangs(&self) -> usize {
        self.trial_hangs.get()
    }

    /// True once the ledger has consumed the diagnosis deadline.
    fn past_deadline(&self, ledger: &Ledger) -> bool {
        self.config.deadline_ns > 0 && ledger.elapsed_ns >= self.config.deadline_ns
    }

    /// Diagnoses the pending failure of `process`.
    ///
    /// On return the process is in some rolled-back re-executed state; the
    /// caller (the runtime) is expected to roll back once more to the
    /// diagnosis checkpoint, install patches, and resume.
    ///
    /// # Panics
    ///
    /// Panics if the process has no pending failure.
    pub fn diagnose(&self, process: &mut Process, manager: &CheckpointManager) -> DiagnosisOutcome {
        let Some(failure) = process.failure.clone() else {
            panic!("{}", FaError::NoPendingFailure("diagnose"));
        };
        let f_idx = failure.input_index;
        let margin_ns = self.config.margin_intervals * manager.interval_ns();
        let until = ReplayHarness::success_end_cursor(process, f_idx, margin_ns);
        let mut ledger = Ledger::new(format!(
            "failure: {} at input #{f_idx} (t={:.3}s); success region ends at #{until}",
            failure.fault,
            failure.at_ns as f64 / 1e9
        ));
        let mut cache = SpecCache::default();
        let mut slab = ProcessSlab::new();

        // Injected wedge: the whole diagnosis hangs and blows its
        // deadline without producing anything.
        if self.faults.should_fail(FaultStage::DiagnosisTimeout) {
            let budget = if self.config.deadline_ns > 0 {
                self.config.deadline_ns
            } else {
                1_000_000_000
            };
            ledger.elapsed_ns += budget;
            ledger.log.push(format!(
                "diagnosis deadline exceeded after {:.3}s (injected wedge); non-patchable",
                budget as f64 / 1e9
            ));
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }

        // --------------------------------------------------------------
        // Phase 0: non-determinism probe at the latest checkpoint.
        // --------------------------------------------------------------
        let Some(newest) = manager.nth_newest(0) else {
            ledger
                .log
                .push("no checkpoints retained; non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        };
        let newest_id = newest.id;
        let spec = TrialSpec {
            ckpt_id: newest_id,
            plan: ChangePlan::none(),
            mark: false,
            timing_seed: 0xfa11,
            until,
        };
        // Speculate the deterministic branch: phase 1 at the newest
        // checkpoint, then the phase-2 probe chain assuming it survives.
        let mut tail = vec![Self::phase1_spec(newest_id, until)];
        tail.extend(Self::phase2_tail(newest_id, &BugType::ALL, &[], until));
        let r = self.fetch(
            process,
            manager,
            &mut slab,
            &mut cache,
            &mut ledger,
            spec,
            tail,
        );
        if r.passed {
            ledger.log.push(
                "plain re-execution with timing changes passed: non-deterministic bug".into(),
            );
            return DiagnosisOutcome::NonDeterministic {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }
        ledger
            .log
            .push("plain re-execution failed again: deterministic bug".into());

        // --------------------------------------------------------------
        // Phase 1: find the latest checkpoint before the trigger point.
        // --------------------------------------------------------------
        let mut chosen: Option<u64> = None;
        for k in 0..self.config.max_checkpoint_tries {
            if self.past_deadline(&ledger) {
                ledger
                    .log
                    .push("diagnosis deadline exceeded during phase 1; non-patchable".into());
                return DiagnosisOutcome::NonPatchable {
                    rollbacks: ledger.rollbacks,
                    elapsed_ns: ledger.elapsed_ns,
                    log: ledger.log,
                };
            }
            let Some(ckpt) = manager.nth_newest(k) else {
                break;
            };
            let id = ckpt.id;
            let spec = Self::phase1_spec(id, until);
            // Speculate both branches: this checkpoint fails (try the
            // older ones) and this checkpoint survives (probe here).
            let mut tail: Vec<TrialSpec> = Vec::new();
            for kk in k + 1..self.config.max_checkpoint_tries {
                match manager.nth_newest(kk) {
                    Some(c) => tail.push(Self::phase1_spec(c.id, until)),
                    None => break,
                }
            }
            tail.extend(Self::phase2_tail(id, &BugType::ALL, &[], until));
            let r = self.fetch(
                process,
                manager,
                &mut slab,
                &mut cache,
                &mut ledger,
                spec,
                tail,
            );
            if r.passed && !r.mark_corrupt() {
                ledger.log.push(format!(
                    "phase 1: checkpoint {id} (-{k}) survives with all preventive changes \
                     and clean heap marks"
                ));
                chosen = Some(id);
                break;
            }
            ledger.log.push(format!(
                "phase 1: checkpoint {id} (-{k}) insufficient (passed={}, marks corrupt={})",
                r.passed,
                r.mark_corrupt()
            ));
        }
        let Some(ckpt_id) = chosen else {
            ledger
                .log
                .push("phase 1 exhausted checkpoints: non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        };

        // --------------------------------------------------------------
        // Phase 2: identify bug types (Su/Si) and call-sites.
        // --------------------------------------------------------------
        let mut su: Vec<BugType> = BugType::ALL.to_vec();
        let mut si: Vec<DiagnosedBug> = Vec::new();
        while let Some(&probe_bug) = su.first() {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(&ledger) {
                ledger.log.push(if self.past_deadline(&ledger) {
                    "diagnosis deadline exceeded during phase 2; non-patchable".into()
                } else {
                    "re-execution budget exhausted".into()
                });
                return DiagnosisOutcome::NonPatchable {
                    rollbacks: ledger.rollbacks,
                    elapsed_ns: ledger.elapsed_ns,
                    log: ledger.log,
                };
            }
            let si_bugs: Vec<BugType> = si.iter().map(|d| d.bug).collect();
            let prevent: Vec<BugType> = su.iter().chain(si_bugs.iter()).copied().collect();
            let spec = TrialSpec {
                ckpt_id,
                plan: ChangePlan::probe(probe_bug, &prevent),
                mark: false,
                timing_seed: 0,
                until,
            };
            let tail = Self::phase2_tail(ckpt_id, &su, &si_bugs, until);
            let r = self.fetch(
                process,
                manager,
                &mut slab,
                &mut cache,
                &mut ledger,
                spec,
                tail,
            );
            let manifested = Self::manifested(probe_bug, &r);
            ledger.log.push(format!(
                "phase 2: probe {probe_bug}: {}",
                if manifested {
                    "manifested"
                } else {
                    "ruled out"
                }
            ));
            su.retain(|&b| b != probe_bug);
            if manifested {
                let (sites, evidence) = if probe_bug.directly_identifiable() {
                    (Self::direct_sites(probe_bug, &r), r.manifests.clone())
                } else {
                    let prevent_rest: Vec<BugType> = su
                        .iter()
                        .chain(si.iter().map(|d| &d.bug))
                        .copied()
                        .collect();
                    let sites = self.binary_search_sites(
                        process,
                        manager,
                        &mut slab,
                        &mut cache,
                        ckpt_id,
                        probe_bug,
                        &prevent_rest,
                        &r,
                        until,
                        &mut ledger,
                        &[],
                    );
                    (sites, r.manifests.clone())
                };
                ledger.log.push(format!(
                    "phase 2: {probe_bug} triggered at {} call-site(s)",
                    sites.len()
                ));
                si.push(DiagnosedBug {
                    bug: probe_bug,
                    sites,
                    evidence,
                });

                // Coverage check: preventive for Si, exposing for Su.
                if !su.is_empty() {
                    let si_bugs: Vec<BugType> = si.iter().map(|d| d.bug).collect();
                    let spec = Self::coverage_spec(ckpt_id, &su, &si_bugs, until);
                    // Residue branch: the probe chain continues.
                    let tail = Self::phase2_tail(ckpt_id, &su, &si_bugs, until);
                    let r = self.fetch(
                        process,
                        manager,
                        &mut slab,
                        &mut cache,
                        &mut ledger,
                        spec,
                        tail,
                    );
                    if r.passed && r.manifests.is_empty() {
                        ledger
                            .log
                            .push("coverage check clean: all bug types identified".into());
                        su.clear();
                    } else {
                        ledger
                            .log
                            .push("coverage check found residue: continuing".into());
                    }
                }
            }
        }

        if si.is_empty() || si.iter().all(|d| d.sites.is_empty()) {
            ledger
                .log
                .push("no memory bug type manifested: non-patchable".into());
            return DiagnosisOutcome::NonPatchable {
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
            };
        }
        DiagnosisOutcome::Diagnosed(Diagnosis {
            bugs: si,
            checkpoint_id: ckpt_id,
            rollbacks: ledger.rollbacks,
            elapsed_ns: ledger.elapsed_ns,
            log: ledger.log,
            until_cursor: until,
        })
    }
}

impl Default for DiagnosisEngine {
    fn default() -> Self {
        DiagnosisEngine::new(EngineConfig::default())
    }
}
