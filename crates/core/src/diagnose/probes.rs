//! Probe semantics: trial-spec constructors, manifestation rules, and the
//! sentry fast path.
//!
//! The spec constructors are shared by the drivers and the speculation
//! generators, so predicted and actual specs compare equal — the property
//! the wave cache keys on.

use std::collections::{HashSet, VecDeque};

use fa_allocext::{BugType, ChangePlan, Manifestation, Mode, TrapRecord};
use fa_checkpoint::CheckpointManager;
use fa_exec::{ProcessSlab, ReplayHarness, RunReport, TrialLedger as Ledger, TrialSpec};
use fa_faults::FaultStage;
use fa_proc::{CallSite, Process};

use super::{trap_bug_type, trap_seed_site, DiagnosedBug, Diagnosis, DiagnosisEngine, SpecCache};

impl DiagnosisEngine {
    /// Sentry fast-path diagnosis: a trapped failure arrives with the bug
    /// type and triggering call-site already suggested, so instead of the
    /// full ladder (non-determinism probe, phase-1 checkpoint scan, the
    /// `Su` rule-out chain) the engine runs one confirming re-execution
    /// with the suspected type exposing and everything else preventive.
    /// For directly-identifiable types the manifestations name the sites;
    /// for the read bugs the trapped site seeds the search: a clean
    /// `ExposeExcept({site})` run pins the whole bug on it, and only a
    /// residue falls back to the (seeded) binary search.
    ///
    /// Returns `None` when the trap does not confirm — a wedged engine,
    /// an expired deadline, or a probe that never manifests — in which
    /// case the caller falls back to [`DiagnosisEngine::diagnose`].
    pub fn diagnose_fast(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        trap: &TrapRecord,
    ) -> Option<Diagnosis> {
        let failure = process.failure.clone()?;
        let f_idx = failure.input_index;
        let margin_ns = self.config.margin_intervals * manager.interval_ns();
        let until = ReplayHarness::success_end_cursor(process, f_idx, margin_ns);
        let bug = trap_bug_type(trap);
        let mut ledger = Ledger::new(format!(
            "sentry fast path: {} trap at input #{f_idx} suggests {bug}",
            trap.kind
        ));
        // A wedged engine degrades to the full ladder (which will consult
        // the same gate) instead of hanging the fast path.
        if self.faults.should_fail(FaultStage::DiagnosisTimeout) {
            return None;
        }
        let mut cache = SpecCache::default();
        let mut slab = ProcessSlab::new();
        // Checkpoint selection follows the ladder's phase-1 rule (latest
        // checkpoint that survives all-preventive with clean marks) so
        // both paths bisect over the same re-execution window — a later
        // checkpoint would see only a suffix of the triggering sites.
        let mut chosen: Option<u64> = None;
        for k in 0..self.config.max_checkpoint_tries {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(&ledger) {
                return None;
            }
            let Some(ckpt) = manager.nth_newest(k) else {
                break;
            };
            let id = ckpt.id;
            let r = self.run(process, manager, &Self::phase1_spec(id, until));
            ledger.charge(&r);
            if r.passed && !r.mark_corrupt() {
                ledger.log.push(format!(
                    "fast path: checkpoint {id} (-{k}) precedes the trigger"
                ));
                chosen = Some(id);
                break;
            }
        }
        let ckpt_id = chosen?;
        {
            // One confirming re-execution: the suspected type exposing,
            // everything else preventive.
            let spec = TrialSpec {
                ckpt_id,
                plan: ChangePlan::probe(bug, &BugType::ALL),
                mark: false,
                timing_seed: 0,
                until,
            };
            let r = self.run(process, manager, &spec);
            ledger.charge(&r);
            if !Self::manifested(bug, &r) {
                ledger.log.push(format!(
                    "fast path: {bug} did not manifest from checkpoint {ckpt_id}; full ladder"
                ));
                return None;
            }
            ledger.log.push(format!(
                "fast path: {bug} confirmed from checkpoint {ckpt_id}"
            ));
            let sites = if bug.directly_identifiable() {
                Self::direct_sites(bug, &r)
            } else {
                let seed = trap_seed_site(trap, bug)?;
                let mut plan = ChangePlan::probe(bug, &BugType::ALL);
                *plan.mode_mut(bug) = Mode::ExposeExcept([seed].into_iter().collect());
                let spec = TrialSpec {
                    ckpt_id,
                    plan,
                    mark: false,
                    timing_seed: 0,
                    until,
                };
                let r2 = self.run(process, manager, &spec);
                ledger.charge(&r2);
                if !Self::manifested(bug, &r2) {
                    ledger.log.push(format!(
                        "fast path: trapped call-site {:x?} alone accounts for the bug",
                        seed.0
                    ));
                    vec![seed]
                } else {
                    ledger
                        .log
                        .push("fast path: residue beyond the trapped site; seeded search".into());
                    self.binary_search_sites(
                        process,
                        manager,
                        &mut slab,
                        &mut cache,
                        ckpt_id,
                        bug,
                        &BugType::ALL,
                        &r,
                        until,
                        &mut ledger,
                        &[seed],
                    )
                }
            };
            if sites.is_empty() {
                return None;
            }
            ledger.log.push(format!(
                "fast path: {bug} triggered at {} call-site(s)",
                sites.len()
            ));
            Some(Diagnosis {
                bugs: vec![DiagnosedBug {
                    bug,
                    sites,
                    evidence: r.manifests.clone(),
                }],
                checkpoint_id: ckpt_id,
                rollbacks: ledger.rollbacks,
                elapsed_ns: ledger.elapsed_ns,
                log: ledger.log,
                until_cursor: until,
            })
        }
    }

    /// Decides whether bug type `b` manifested in a probe run.
    pub(super) fn manifested(b: BugType, r: &RunReport) -> bool {
        match b {
            BugType::BufferOverflow | BugType::DanglingWrite | BugType::DoubleFree => {
                r.manifested(b)
            }
            // The exposing changes for the read bugs manifest as failures;
            // the extension's access counters disambiguate which kind of
            // read preceded the failure.
            BugType::DanglingRead => !r.passed && r.quarantine_reads > 0,
            BugType::UninitRead => !r.passed && r.uninit_reads > 0,
        }
    }

    /// Reads the triggering call-sites directly off the manifestations.
    pub(super) fn direct_sites(b: BugType, r: &RunReport) -> Vec<CallSite> {
        let mut sites = Vec::new();
        for m in &r.manifests {
            let site = match (b, m) {
                (BugType::BufferOverflow, Manifestation::PaddingCorrupt { alloc_site, .. }) => {
                    Some(*alloc_site)
                }
                (BugType::DanglingWrite, Manifestation::QuarantineCorrupt { freed_site, .. }) => {
                    Some(*freed_site)
                }
                (
                    BugType::DoubleFree,
                    Manifestation::DoubleFree {
                        first_free_site, ..
                    },
                ) => Some(*first_free_site),
                _ => None,
            };
            if let Some(s) = site {
                if !sites.contains(&s) {
                    sites.push(s);
                }
            }
        }
        sites
    }

    /// The phase-1 trial at checkpoint `id`: all preventive changes with
    /// heap marking.
    pub(super) fn phase1_spec(id: u64, until: usize) -> TrialSpec {
        TrialSpec {
            ckpt_id: id,
            plan: ChangePlan {
                heap_marking: true,
                ..ChangePlan::all_preventive()
            },
            mark: true,
            timing_seed: 0,
            until,
        }
    }

    /// The coverage-check trial: preventive for the identified set,
    /// exposing for the rest.
    pub(super) fn coverage_spec(
        ckpt: u64,
        su: &[BugType],
        si: &[BugType],
        until: usize,
    ) -> TrialSpec {
        let mut plan = ChangePlan::none();
        for &b in si {
            *plan.mode_mut(b) = Mode::Prevent;
        }
        for &b in su {
            *plan.mode_mut(b) = Mode::Expose;
        }
        TrialSpec {
            ckpt_id: ckpt,
            plan,
            mark: false,
            timing_seed: 0,
            until,
        }
    }

    /// Speculative phase-2 tail at `ckpt`: the rule-out chain (probe `j`
    /// runs if probes `0..j` were all ruled out) plus the coverage check
    /// that follows if the first probe manifests and identifies directly.
    pub(super) fn phase2_tail(
        ckpt: u64,
        su: &[BugType],
        si: &[BugType],
        until: usize,
    ) -> Vec<TrialSpec> {
        let mut out = Vec::new();
        for j in 0..su.len() {
            let prevent: Vec<BugType> = su[j..].iter().chain(si.iter()).copied().collect();
            out.push(TrialSpec {
                ckpt_id: ckpt,
                plan: ChangePlan::probe(su[j], &prevent),
                mark: false,
                timing_seed: 0,
                until,
            });
        }
        if su.len() > 1 {
            let mut si_plus: Vec<BugType> = si.to_vec();
            si_plus.push(su[0]);
            out.push(Self::coverage_spec(ckpt, &su[1..], &si_plus, until));
        }
        out
    }

    /// Speculative tail for the call-site binary search: a breadth-first
    /// walk of the bisection decision tree over `range`. A node with more
    /// than one candidate emits the `ExposeOnly(first half)` trial the
    /// driver runs next on that branch and recurses into both halves; a
    /// leaf emits the follow-up `ExposeExcept` trial that re-checks for
    /// further triggering sites once the leaf is identified.
    pub(super) fn bisect_tail(
        bug: BugType,
        prevent: &[BugType],
        ckpt: u64,
        until: usize,
        range: &[CallSite],
        identified: &[CallSite],
    ) -> Vec<TrialSpec> {
        let mut out = Vec::new();
        let mut queue: VecDeque<Vec<CallSite>> = VecDeque::new();
        queue.push_back(range.to_vec());
        while let Some(r) = queue.pop_front() {
            match r.len() {
                0 => {}
                1 => {
                    let mut except: HashSet<CallSite> = identified.iter().copied().collect();
                    except.insert(r[0]);
                    let mut plan = ChangePlan::probe(bug, prevent);
                    *plan.mode_mut(bug) = Mode::ExposeExcept(except);
                    out.push(TrialSpec {
                        ckpt_id: ckpt,
                        plan,
                        mark: false,
                        timing_seed: 0,
                        until,
                    });
                }
                n => {
                    let half: HashSet<CallSite> = r[..n / 2].iter().copied().collect();
                    let mut plan = ChangePlan::probe(bug, prevent);
                    *plan.mode_mut(bug) = Mode::ExposeOnly(half);
                    out.push(TrialSpec {
                        ckpt_id: ckpt,
                        plan,
                        mark: false,
                        timing_seed: 0,
                        until,
                    });
                    queue.push_back(r[..n / 2].to_vec());
                    queue.push_back(r[n / 2..].to_vec());
                }
            }
        }
        out
    }
}
