//! The O(M·log N) call-site bisection for the read bugs.
//!
//! Dangling and uninitialized reads leave no direct evidence at a single
//! call-site, so the triggering sites are found by binary search over the
//! candidate set: expose half the candidates, see whether the bug still
//! manifests, and recurse into the manifesting half. Each identified site
//! is then held preventive while the remainder is re-checked, so multiple
//! triggering sites cost M searches of log N trials each.

use std::collections::HashSet;

use fa_allocext::{BugType, ChangePlan, Mode};
use fa_checkpoint::CheckpointManager;
use fa_exec::{ProcessSlab, RunReport, TrialLedger as Ledger, TrialSpec};
use fa_proc::{CallSite, Process};

use super::{DiagnosisEngine, SpecCache};

impl DiagnosisEngine {
    /// Binary call-site search for dangling-read / uninit-read bugs:
    /// O(M·log N) re-executions for M triggering sites among N candidates.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn binary_search_sites(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        slab: &mut ProcessSlab,
        cache: &mut SpecCache,
        ckpt_id: u64,
        bug: BugType,
        prevent: &[BugType],
        first_probe: &RunReport,
        until: usize,
        ledger: &mut Ledger,
        seeded: &[CallSite],
    ) -> Vec<CallSite> {
        let mut identified: Vec<CallSite> = seeded.to_vec();
        // Candidates from the manifesting probe run.
        let mut candidates: Vec<CallSite> = if bug.patches_at_allocation() {
            first_probe.alloc_sites.clone()
        } else {
            first_probe.dealloc_sites.clone()
        };

        loop {
            if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(ledger) {
                if self.past_deadline(ledger) {
                    ledger
                        .log
                        .push("diagnosis deadline exceeded during binary search".into());
                }
                break;
            }
            // Do the remaining candidates still trigger the bug with the
            // identified sites held preventive?
            let except: HashSet<CallSite> = identified.iter().copied().collect();
            let mut plan = ChangePlan::probe(bug, prevent);
            *plan.mode_mut(bug) = Mode::ExposeExcept(except);
            let spec = TrialSpec {
                ckpt_id,
                plan,
                mark: false,
                timing_seed: 0,
                until,
            };
            // Speculate the bisection tree over the current candidate
            // view (a site refresh below can invalidate the prediction).
            let predicted: Vec<CallSite> = candidates
                .iter()
                .filter(|s| !identified.contains(*s))
                .copied()
                .collect();
            let tail = Self::bisect_tail(bug, prevent, ckpt_id, until, &predicted, &identified);
            let r = self.fetch(process, manager, slab, cache, ledger, spec, tail);
            if !Self::manifested(bug, &r) {
                break;
            }
            // Refresh candidates from the farthest-reaching view.
            let seen = if bug.patches_at_allocation() {
                &r.alloc_sites
            } else {
                &r.dealloc_sites
            };
            for &s in seen {
                if !candidates.contains(&s) {
                    candidates.push(s);
                }
            }
            let mut range: Vec<CallSite> = candidates
                .iter()
                .filter(|s| !identified.contains(s))
                .copied()
                .collect();
            if range.is_empty() {
                break;
            }
            while range.len() > 1 {
                if ledger.rollbacks >= self.config.max_reexecutions || self.past_deadline(ledger) {
                    break;
                }
                let half: Vec<CallSite> = range[..range.len() / 2].to_vec();
                let half_set: HashSet<CallSite> = half.iter().copied().collect();
                let mut plan = ChangePlan::probe(bug, prevent);
                *plan.mode_mut(bug) = Mode::ExposeOnly(half_set);
                let spec = TrialSpec {
                    ckpt_id,
                    plan,
                    mark: false,
                    timing_seed: 0,
                    until,
                };
                let tail = Self::bisect_tail(bug, prevent, ckpt_id, until, &range, &identified);
                let r = self.fetch(process, manager, slab, cache, ledger, spec, tail);
                if Self::manifested(bug, &r) {
                    range = half;
                } else {
                    range = range[range.len() / 2..].to_vec();
                }
            }
            let site = range[0];
            ledger.log.push(format!(
                "binary search: identified {bug} trigger call-site {:x?}",
                site.0
            ));
            identified.push(site);
        }
        identified
    }
}
