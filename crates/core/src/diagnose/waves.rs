//! The trial broker: sequential path, speculative wave scheduling, and
//! commit-order charging.
//!
//! Every trial runs on an fa-exec substrate. The leader of a wave runs on
//! the supervised process through [`fa_exec::ManagedSubstrate`]
//! (preserving phase-0 semantics — on a nondeterminism verdict the
//! runtime keeps the re-executed state); speculative members run on
//! [`SlabSubstrate`]s over pooled contexts from the diagnosis-scoped
//! [`ProcessSlab`], each restored from its own COW clone of the
//! checkpoint snapshot. A recycled context already shares most pages with
//! the snapshot, so its restore touches only the pages the previous trial
//! diverged — the hot-path win over forking fresh processes per wave.

use fa_checkpoint::CheckpointManager;
use fa_exec::{
    FaultGate, ManagedSubstrate, ProcessSlab, RunReport, SlabSubstrate, TrialLedger as Ledger,
    TrialSpec, TrialSubstrate, Watchdog, ROLLBACK_COST_NS,
};
use fa_proc::Process;

use super::DiagnosisEngine;

/// Results of the most recent speculative wave, keyed by trial spec.
#[derive(Default)]
pub(super) struct SpecCache {
    entries: Vec<(TrialSpec, RunReport)>,
    /// Virtual time already charged for the current wave. Committing a
    /// trial charges only the increment over this running maximum, so a
    /// fully-consumed wave costs `max` over its trials instead of the sum
    /// — the trials ran concurrently.
    charged: u64,
}

impl DiagnosisEngine {
    /// Produces the report for `spec`, charging the ledger.
    ///
    /// Sequential mode (`parallelism == 1`) runs the trial directly.
    /// Parallel mode first consults the wave cache; on a miss it discards
    /// the stale cache and launches a new wave — the leader trial on the
    /// calling thread plus up to `parallelism - 1` trials from `tail`
    /// running concurrently on pooled contexts. Either way the fault gate
    /// resolves once per *committed* trial, in the same order as the
    /// sequential engine, so fault-plan consultation (and hence every
    /// injected-fault outcome) is identical at any width.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn fetch(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        slab: &mut ProcessSlab,
        cache: &mut SpecCache,
        ledger: &mut Ledger,
        spec: TrialSpec,
        tail: Vec<TrialSpec>,
    ) -> RunReport {
        let width = self.config.parallelism.max(1);
        if width == 1 {
            let r = self.run(process, manager, &spec);
            ledger.charge(&r);
            return r;
        }
        if let Some(i) = cache.entries.iter().position(|(s, _)| *s == spec) {
            let (_, raw) = cache.entries.remove(i);
            self.spec_hits.set(self.spec_hits.get() + 1);
            let r = self.commit(cache, raw);
            ledger.charge(&r);
            return r;
        }
        // Miss: whatever the last wave predicted is now stale.
        if !cache.entries.is_empty() {
            self.spec_wasted
                .set(self.spec_wasted.get() + cache.entries.len());
            cache.entries.clear();
        }
        cache.charged = 0;
        // The fault gate resolves before the trial runs, exactly as in
        // the sequential path; an exhausted gate means it never executes.
        match self.gate().resolve() {
            Err(penalty) => {
                let r = RunReport {
                    passed: false,
                    elapsed_ns: penalty + ROLLBACK_COST_NS,
                    ..RunReport::default()
                };
                ledger.charge(&r);
                r
            }
            Ok(penalty) => {
                let speculative = Self::plan_wave(manager, &spec, tail, width);
                let (mut raw, results) = self.run_wave(process, manager, slab, &spec, &speculative);
                if !speculative.is_empty() {
                    self.waves.set(self.waves.get() + 1);
                    self.spec_launched
                        .set(self.spec_launched.get() + speculative.len());
                }
                cache.entries = results;
                cache.charged = raw.elapsed_ns;
                // The watchdog judges the leader at its commit point, so
                // one wedged trial cannot stall the wave: a reaped leader
                // degrades to a failed run and diagnosis moves on.
                match self.watchdog().judge(raw.elapsed_ns) {
                    Ok(wd) => raw.elapsed_ns += penalty + wd,
                    Err(wd) => {
                        raw = RunReport {
                            passed: false,
                            elapsed_ns: penalty + wd + ROLLBACK_COST_NS,
                            ..RunReport::default()
                        };
                    }
                }
                ledger.charge(&raw);
                raw
            }
        }
    }

    /// Applies the fault gate to a cached speculative result and charges
    /// its share of the wave's virtual time.
    fn commit(&self, cache: &mut SpecCache, raw: RunReport) -> RunReport {
        match self.gate().resolve() {
            Err(penalty) => {
                // The gate killed this iteration: the speculative result
                // is discarded, exactly as the sequential engine would
                // never have run the trial.
                self.spec_wasted.set(self.spec_wasted.get() + 1);
                RunReport {
                    passed: false,
                    elapsed_ns: penalty + ROLLBACK_COST_NS,
                    ..RunReport::default()
                }
            }
            Ok(penalty) => {
                let extra = raw.elapsed_ns.saturating_sub(cache.charged);
                cache.charged += extra;
                // Judge the trial's own elapsed time (not the wave-share
                // increment) so the verdict is identical at any width.
                match self.watchdog().judge(raw.elapsed_ns) {
                    Ok(wd) => {
                        let mut r = raw;
                        r.elapsed_ns = extra + penalty + wd;
                        r
                    }
                    Err(wd) => {
                        self.spec_wasted.set(self.spec_wasted.get() + 1);
                        RunReport {
                            passed: false,
                            elapsed_ns: extra + penalty + wd + ROLLBACK_COST_NS,
                            ..RunReport::default()
                        }
                    }
                }
            }
        }
    }

    /// Selects the speculative members of a wave: the tail specs, deduped
    /// against the leader and each other, filtered to intact retained
    /// checkpoints, truncated so leader + speculation fit the wave width.
    fn plan_wave(
        manager: &CheckpointManager,
        leader: &TrialSpec,
        tail: Vec<TrialSpec>,
        width: usize,
    ) -> Vec<TrialSpec> {
        let mut wave: Vec<TrialSpec> = Vec::new();
        for s in tail {
            if wave.len() + 1 >= width {
                break;
            }
            if s == *leader || wave.contains(&s) {
                continue;
            }
            if !manager.get(s.ckpt_id).is_some_and(|c| c.verify()) {
                continue;
            }
            wave.push(s);
        }
        wave
    }

    /// Runs one wave: the leader trial on the calling thread against the
    /// main process, the speculative trials concurrently on pooled
    /// contexts acquired from the slab, each bound to its own clone of
    /// the checkpoint snapshot (COW: an `Arc` clone per page). Results
    /// return in spec order. A trial that errors is dropped from the
    /// results (its context returns to the pool); the driver then misses
    /// in the cache and re-runs the spec sequentially, so a poisoned
    /// trial degrades the wave instead of aborting diagnosis.
    fn run_wave(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        slab: &mut ProcessSlab,
        leader: &TrialSpec,
        speculative: &[TrialSpec],
    ) -> (RunReport, Vec<(TrialSpec, RunReport)>) {
        let integrity_check = self.config.integrity_check;
        let reuses_before = slab.reuses();
        let mut substrates: Vec<(TrialSpec, SlabSubstrate)> = speculative
            .iter()
            .map(|spec| {
                let snap = manager
                    .get(spec.ckpt_id)
                    .expect("wave specs are filtered to retained checkpoints")
                    .snap
                    .clone();
                let sub = SlabSubstrate::new(slab.acquire(process), snap, integrity_check);
                (spec.clone(), sub)
            })
            .collect();
        self.slab_reuses
            .set(self.slab_reuses.get() + (slab.reuses() - reuses_before));
        let (leader_report, joined) = std::thread::scope(|scope| {
            let handles: Vec<_> = substrates
                .drain(..)
                .map(|(spec, mut sub)| {
                    scope.spawn(move || {
                        let r = sub.reexecute(&spec);
                        (spec, r, sub.into_process())
                    })
                })
                .collect();
            let leader_report = self.execute(process, manager, leader);
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            (leader_report, joined)
        });
        let mut results = Vec::new();
        for outcome in joined {
            match outcome {
                Ok((spec, Ok(r), ctx)) => {
                    slab.release(ctx);
                    results.push((spec, r));
                }
                Ok((spec, Err(e), ctx)) => {
                    slab.release(ctx);
                    self.trial_errors.set(self.trial_errors.get() + 1);
                    crate::log::warn(format!("speculative trial errored ({e}): {spec:?}"));
                }
                Err(_panic) => {
                    // The context is lost with the worker; diagnosis
                    // continues on sequential re-runs.
                    self.trial_errors.set(self.trial_errors.get() + 1);
                    crate::log::warn("speculative trial worker panicked; context dropped");
                }
            }
        }
        (leader_report, results)
    }

    /// One re-execution of `spec` on the managed substrate. An errored
    /// trial (lost or corrupt checkpoint) is reported as a failed run —
    /// the ladder then treats it like any other insufficient checkpoint —
    /// rather than aborting the supervisor.
    fn execute(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        spec: &TrialSpec,
    ) -> RunReport {
        let mut substrate = ManagedSubstrate::new(process, manager, self.config.integrity_check);
        match substrate.reexecute(spec) {
            Ok(r) => r,
            Err(e) => {
                self.trial_errors.set(self.trial_errors.get() + 1);
                crate::log::warn(format!("trial degraded to failed run ({e}): {spec:?}"));
                RunReport {
                    passed: false,
                    elapsed_ns: ROLLBACK_COST_NS,
                    ..RunReport::default()
                }
            }
        }
    }

    /// The flaky-re-execution fault gate over this engine's plan and
    /// retry budget.
    fn gate(&self) -> FaultGate<'_> {
        FaultGate::new(
            &self.faults,
            self.config.reexec_retries,
            self.config.retry_backoff_ns,
            &self.retries,
        )
    }

    /// The hung-trial watchdog over this engine's plan, deadline, and
    /// retry budget. Like the gate, it resolves once per *committed*
    /// trial, so injected hangs land in the same sequential order at any
    /// parallelism.
    fn watchdog(&self) -> Watchdog<'_> {
        Watchdog::new(
            &self.faults,
            self.config.trial_deadline_ns,
            self.config.reexec_retries,
            self.config.retry_backoff_ns,
            &self.trial_hangs,
        )
    }

    /// One re-execution, with bounded retry-with-backoff against flaky
    /// iterations: if the fault plan declares this re-execution flaky
    /// (it dies for reasons unrelated to the bug), the engine charges
    /// an exponentially growing backoff and retries up to
    /// `reexec_retries` times before writing the iteration off as a
    /// failed run.
    pub(super) fn run(
        &self,
        process: &mut Process,
        manager: &CheckpointManager,
        spec: &TrialSpec,
    ) -> RunReport {
        match self.gate().resolve() {
            Err(penalty) => RunReport {
                passed: false,
                elapsed_ns: penalty + ROLLBACK_COST_NS,
                ..RunReport::default()
            },
            Ok(penalty) => {
                let r = self.execute(process, manager, spec);
                match self.watchdog().judge(r.elapsed_ns) {
                    Ok(wd) => {
                        let mut r = r;
                        r.elapsed_ns += penalty + wd;
                        r
                    }
                    Err(wd) => RunReport {
                        passed: false,
                        elapsed_ns: penalty + wd + ROLLBACK_COST_NS,
                        ..RunReport::default()
                    },
                }
            }
        }
    }
}
