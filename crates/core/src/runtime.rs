//! The First-Aid supervisor runtime.
//!
//! Wraps a simulated process with the full pipeline of paper Fig. 1:
//! periodic checkpoints during normal execution; on failure, diagnosis →
//! patch generation → patch application → resumed execution; then patch
//! validation on a fork and bug-report generation.

use fa_allocext::{ExtAllocator, Patch};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager, CheckpointStats};
use fa_proc::{BoxedApp, Fault, Input, Process, ProcessCtx, StepResult};

use crate::diagnose::{Diagnosis, DiagnosisEngine, DiagnosisOutcome, EngineConfig};
use crate::harness::expect_ext;
use crate::metrics::ThroughputSampler;
use crate::patchpool::PatchPool;
use crate::report::BugReport;
use crate::validate::{ValidationEngine, ValidationOutcome};

/// Configuration of the First-Aid runtime.
#[derive(Clone, Debug)]
pub struct FirstAidConfig {
    /// Simulated heap size limit.
    pub heap_limit: u64,
    /// Checkpointing configuration (interval 200 ms by default, adaptive).
    pub adaptive: AdaptiveConfig,
    /// Maximum retained checkpoints.
    pub max_checkpoints: usize,
    /// Diagnosis engine tunables.
    pub engine: EngineConfig,
    /// Randomized validation iterations (0 disables validation).
    pub validation_iterations: usize,
    /// Delay-free quarantine byte budget (1 MB in the paper).
    pub quarantine_bytes: u64,
    /// Run the heap-integrity error monitor every N served inputs
    /// (0 disables it). A stronger monitor catches metadata corruption
    /// closer to the bug-triggering point, shortening error-propagation
    /// distance (paper §3 invites deploying such detectors).
    pub integrity_check_every: usize,
}

impl Default for FirstAidConfig {
    fn default() -> Self {
        FirstAidConfig {
            heap_limit: 1 << 30,
            adaptive: AdaptiveConfig::default(),
            max_checkpoints: 50,
            engine: EngineConfig::default(),
            validation_iterations: 3,
            quarantine_bytes: fa_allocext::DEFAULT_QUARANTINE_BYTES,
            integrity_check_every: 0,
        }
    }
}

/// How one recovery concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Bugs diagnosed; runtime patches installed; execution resumed.
    Patched,
    /// The failure did not reproduce under timing changes; execution
    /// simply continued.
    NonDeterministic,
    /// Diagnosis gave up; the poisoned input was dropped and execution
    /// continued unprotected.
    Dropped,
}

/// Everything produced by one recovery.
#[derive(Debug)]
pub struct RecoveryRecord {
    /// How the recovery concluded.
    pub kind: RecoveryKind,
    /// The diagnosis, when one completed.
    pub diagnosis: Option<Diagnosis>,
    /// The patches installed by this recovery.
    pub patches: Vec<Patch>,
    /// Wall (virtual) time from failure catch to back-to-normal.
    pub recovery_ns: u64,
    /// The validation outcome, when validation ran.
    pub validation: Option<ValidationOutcome>,
    /// The assembled bug report, when validation ran.
    pub report: Option<BugReport>,
}

/// Outcome of feeding one input through the supervised process.
#[derive(Clone, Debug)]
pub struct FeedOutcome {
    /// The input was ultimately served (possibly after a recovery).
    pub served: bool,
    /// A failure occurred while first handling this input.
    pub failed: bool,
    /// Index into [`FirstAidRuntime::recoveries`] if a recovery ran.
    pub recovery: Option<usize>,
}

/// Summary of a full workload run.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Inputs served successfully.
    pub served: usize,
    /// Failures caught by the error monitor.
    pub failures: usize,
    /// Recoveries performed.
    pub recoveries: usize,
    /// Inputs dropped (non-patchable path).
    pub dropped: usize,
    /// Final wall time.
    pub wall_ns: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
}

/// A point-in-time health summary of one supervised runtime, cheap to
/// read from a fleet supervisor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeHealth {
    /// Total recoveries performed so far.
    pub recoveries: usize,
    /// Recoveries that ended with the input dropped (the degraded path).
    pub dropped: usize,
    /// Recoveries that installed patches.
    pub patched: usize,
    /// Inputs not yet consumed from the replay log.
    pub backlog: usize,
    /// Patch-pool epoch this runtime last synchronized to.
    pub pool_epoch: u64,
}

/// The First-Aid supervisor.
pub struct FirstAidRuntime {
    process: Process,
    manager: CheckpointManager,
    pool: PatchPool,
    config: FirstAidConfig,
    program: String,
    wall_ns: u64,
    last_proc_clock: u64,
    /// Pool version (any program) observed at the last patch sync; lets
    /// `refresh_patches` skip even the pool lock on the fast path.
    pool_version_seen: u64,
    /// Pool epoch for *this* program at the last patch sync.
    pool_epoch_seen: u64,
    /// Input index of the most recent failure, for crash-loop detection.
    last_failure_index: Option<usize>,
    /// All recoveries performed, in order.
    pub recoveries: Vec<RecoveryRecord>,
}

impl FirstAidRuntime {
    /// Launches an application under First-Aid supervision.
    ///
    /// Installs the allocator extension (with any patches already in the
    /// pool for this program) and takes checkpoint 0.
    pub fn launch(
        app: BoxedApp,
        mut config: FirstAidConfig,
        pool: PatchPool,
    ) -> Result<FirstAidRuntime, Fault> {
        // Re-execution must use the same error monitors as normal
        // execution, or monitor-caught failures would not reproduce.
        config.engine.integrity_check = config.integrity_check_every > 0;
        let program = app.name().to_owned();
        let mut ctx = ProcessCtx::new(config.heap_limit);
        let pool_version_seen = pool.version();
        let (patches, pool_epoch_seen) = pool.get_with_epoch(&program);
        let quarantine = config.quarantine_bytes;
        ctx.swap_alloc(|old| {
            let mut ext = ExtAllocator::attach(old.heap().clone());
            ext.set_quarantine_threshold(quarantine);
            ext.set_normal(patches);
            Box::new(ext)
        });
        let mut process = Process::launch(app, ctx)?;
        let mut manager = CheckpointManager::new(config.adaptive, config.max_checkpoints);
        manager.force_checkpoint(&mut process);
        let last_proc_clock = process.ctx.clock.now();
        Ok(FirstAidRuntime {
            process,
            manager,
            pool,
            config,
            program,
            wall_ns: last_proc_clock,
            last_proc_clock,
            pool_version_seen,
            pool_epoch_seen,
            last_failure_index: None,
            recoveries: Vec::new(),
        })
    }

    /// Returns the supervised process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Returns the supervised process mutably (experiment harness use).
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// Returns the wall (virtual) time, which only moves forward even
    /// across rollbacks.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Returns the program name (patch-pool key).
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Returns checkpointing statistics (paper Table 7).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.manager.stats()
    }

    /// Returns the shared patch pool.
    pub fn pool(&self) -> &PatchPool {
        &self.pool
    }

    /// Re-reads this program's patches from the pool and updates the
    /// sync markers (single lock hold).
    fn sync_pool_patches(&mut self) -> fa_allocext::PatchSet {
        self.pool_version_seen = self.pool.version();
        let (patches, epoch) = self.pool.get_with_epoch(&self.program);
        self.pool_epoch_seen = epoch;
        patches
    }

    /// Picks up patches other processes added to the shared pool since
    /// this runtime last looked, without re-launching (paper §3: patches
    /// are "available to all the processes that are running the same
    /// program").
    ///
    /// The fast path is one atomic load, so fleet workers can call this
    /// before every input. Returns `true` if new patches were installed.
    pub fn refresh_patches(&mut self) -> bool {
        if self.pool.version() == self.pool_version_seen {
            return false;
        }
        let before = self.pool_epoch_seen;
        let patches = self.sync_pool_patches();
        if self.pool_epoch_seen == before {
            // Another program's patches moved the global version; nothing
            // to install here.
            return false;
        }
        self.process.ctx.with_alloc_and_mem(|alloc, _mem| {
            expect_ext(alloc).set_normal(patches);
        });
        true
    }

    /// Returns the number of inputs enqueued but not yet consumed.
    pub fn backlog(&self) -> usize {
        self.process.pending()
    }

    /// Returns a point-in-time health summary (fleet supervision).
    pub fn health(&self) -> RuntimeHealth {
        RuntimeHealth {
            recoveries: self.recoveries.len(),
            dropped: self
                .recoveries
                .iter()
                .filter(|r| r.kind == RecoveryKind::Dropped)
                .count(),
            patched: self
                .recoveries
                .iter()
                .filter(|r| r.kind == RecoveryKind::Patched)
                .count(),
            backlog: self.process.pending(),
            pool_epoch: self.pool_epoch_seen,
        }
    }

    /// Runs a closure over the allocator extension (counters, tables).
    pub fn with_ext<R>(&mut self, f: impl FnOnce(&mut ExtAllocator) -> R) -> R {
        self.process
            .ctx
            .with_alloc_and_mem(|alloc, _mem| f(expect_ext(alloc)))
    }

    fn sync_wall(&mut self) {
        let now = self.process.ctx.clock.now();
        if now > self.last_proc_clock {
            self.wall_ns += now - self.last_proc_clock;
        }
        self.last_proc_clock = now;
    }

    fn resync_without_credit(&mut self) {
        self.last_proc_clock = self.process.ctx.clock.now();
    }

    /// Feeds one input; recovers on failure.
    pub fn feed(&mut self, input: Input) -> FeedOutcome {
        let r = self.process.feed(input);
        self.sync_wall();
        match r {
            StepResult::Ok(_) => {
                if self.manager.maybe_checkpoint(&mut self.process).is_some() {
                    self.sync_wall();
                }
                FeedOutcome {
                    served: true,
                    failed: false,
                    recovery: None,
                }
            }
            StepResult::Failed(_) => {
                let idx = self.recover();
                // After recovery the failing input either succeeded during
                // the patched replay or was dropped.
                let served = self.recoveries[idx].kind != RecoveryKind::Dropped;
                FeedOutcome {
                    served,
                    failed: true,
                    recovery: Some(idx),
                }
            }
        }
    }

    /// Runs a whole recorded workload, recovering as needed; optionally
    /// samples throughput for Fig. 4-style series.
    pub fn run(
        &mut self,
        workload: impl IntoIterator<Item = Input>,
        mut sampler: Option<&mut ThroughputSampler>,
    ) -> RunSummary {
        let mut summary = RunSummary::default();
        for input in workload {
            self.process.enqueue(input);
        }
        loop {
            match self.process.step() {
                None => {
                    if self.process.pending() == 0 {
                        break;
                    }
                    // A pending failure without a step means recover.
                    let idx = self.recover();
                    summary.recoveries += 1;
                    if self.recoveries[idx].kind == RecoveryKind::Dropped {
                        summary.dropped += 1;
                    }
                }
                Some(StepResult::Ok(_)) => {
                    summary.served += 1;
                    self.sync_wall();
                    if self.manager.maybe_checkpoint(&mut self.process).is_some() {
                        self.sync_wall();
                    }
                    let every = self.config.integrity_check_every;
                    if every > 0 && summary.served % every == 0 {
                        let verdict = self
                            .process
                            .ctx
                            .with_alloc_and_mem(|alloc, mem| alloc.heap().check_integrity(mem));
                        if let Err(e) = verdict {
                            self.process.raise_failure(Fault::Heap(e));
                            summary.failures += 1;
                            self.sync_wall();
                            let idx = self.recover();
                            summary.recoveries += 1;
                            if self.recoveries[idx].kind == RecoveryKind::Dropped {
                                summary.dropped += 1;
                            }
                        }
                    }
                }
                Some(StepResult::Failed(_)) => {
                    summary.failures += 1;
                    self.sync_wall();
                    let idx = self.recover();
                    summary.recoveries += 1;
                    if self.recoveries[idx].kind == RecoveryKind::Dropped {
                        summary.dropped += 1;
                    }
                }
            }
            if let Some(s) = sampler.as_deref_mut() {
                s.record(self.wall_ns, self.process.bytes_delivered);
            }
        }
        summary.wall_ns = self.wall_ns;
        summary.bytes_delivered = self.process.bytes_delivered;
        summary
    }

    /// Diagnoses the pending failure, installs patches, resumes execution,
    /// validates, and files a [`RecoveryRecord`]. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if no failure is pending.
    pub fn recover(&mut self) -> usize {
        let failure = self
            .process
            .failure
            .clone()
            .expect("recover requires a pending failure");
        self.sync_wall();
        let wall_at_failure = self.wall_ns;

        // Crash-loop safeguard: if failures recur within a few inputs of
        // the previous one, diagnosis is evidently not helping (e.g. an
        // ineffective patch, or a bug First-Aid cannot fix) — resort to
        // the cheap recovery scheme and drop the input (paper §2: "times
        // out and resorts to other recovery schemes").
        let crash_loop = self
            .last_failure_index
            .is_some_and(|prev| failure.input_index.saturating_sub(prev) < 20);
        self.last_failure_index = Some(failure.input_index);
        if crash_loop {
            self.process.clear_failure();
            self.process.skip_current();
            self.manager.rearm(&self.process);
            self.recoveries.push(RecoveryRecord {
                kind: RecoveryKind::Dropped,
                diagnosis: None,
                patches: Vec::new(),
                recovery_ns: self.wall_ns - wall_at_failure,
                validation: None,
                report: None,
            });
            return self.recoveries.len() - 1;
        }

        let engine = DiagnosisEngine::new(self.config.engine);
        let outcome = engine.diagnose(&mut self.process, &self.manager);
        let record = match outcome {
            DiagnosisOutcome::NonDeterministic {
                elapsed_ns, log, ..
            } => {
                // The successful plain re-execution left the process past
                // the failure region; keep going from there.
                self.wall_ns += elapsed_ns;
                self.resync_without_credit();
                self.manager.rearm(&self.process);
                let _ = log;
                RecoveryRecord {
                    kind: RecoveryKind::NonDeterministic,
                    diagnosis: None,
                    patches: Vec::new(),
                    recovery_ns: self.wall_ns - wall_at_failure,
                    validation: None,
                    report: None,
                }
            }
            DiagnosisOutcome::NonPatchable { elapsed_ns, .. } => {
                self.wall_ns += elapsed_ns;
                // Fall back: roll back to the newest checkpoint, replay in
                // normal mode up to the poisoned input, drop it.
                let newest = self
                    .manager
                    .nth_newest(0)
                    .expect("launch guarantees a checkpoint")
                    .id;
                self.manager.rollback_to(&mut self.process, newest);
                let patches = self.sync_pool_patches();
                self.process.ctx.with_alloc_and_mem(|alloc, _mem| {
                    expect_ext(alloc).set_normal(patches);
                });
                let t0 = self.process.ctx.clock.now();
                while self.process.cursor() < failure.input_index {
                    match self.process.step() {
                        Some(r) if r.is_ok() => {}
                        _ => break,
                    }
                }
                self.process.clear_failure();
                self.process.skip_current();
                self.wall_ns += self.process.ctx.clock.now().saturating_sub(t0);
                self.resync_without_credit();
                self.manager.truncate_after(newest);
                self.manager.rearm(&self.process);
                RecoveryRecord {
                    kind: RecoveryKind::Dropped,
                    diagnosis: None,
                    patches: Vec::new(),
                    recovery_ns: self.wall_ns - wall_at_failure,
                    validation: None,
                    report: None,
                }
            }
            DiagnosisOutcome::Diagnosed(diagnosis) => {
                self.wall_ns += diagnosis.elapsed_ns;
                let patches = diagnosis.patches(&self.process.ctx.symbols);
                self.pool.add(&self.program, patches.iter().cloned());
                let patchset = self.sync_pool_patches();

                // Final recovery pass: back to the diagnosis checkpoint in
                // normal mode with the patches installed; replay forward.
                self.manager
                    .rollback_to(&mut self.process, diagnosis.checkpoint_id);
                let ps = patchset.clone();
                self.process.ctx.with_alloc_and_mem(|alloc, _mem| {
                    expect_ext(alloc).set_normal(ps);
                });
                // Recovery ends when the process is back in normal mode
                // and has caught up to the input it crashed on; traffic
                // beyond that is ordinary execution (the paper's recovery
                // time is "from when the failure is first caught to when
                // the program changes back to normal mode").
                let t0 = self.process.ctx.clock.now();
                while self.process.cursor() <= failure.input_index {
                    match self.process.step() {
                        Some(r) if r.is_ok() => {}
                        _ => break,
                    }
                }
                if self.process.failure.is_some() {
                    // The patch did not carry the replay through the
                    // region (should not happen after a clean phase 1);
                    // drop the poisoned input rather than loop.
                    self.process.clear_failure();
                    self.process.skip_current();
                }
                self.wall_ns += self.process.ctx.clock.now().saturating_sub(t0) + 80_000;
                self.resync_without_credit();
                let recovery_ns = self.wall_ns - wall_at_failure;

                // Validation runs on a fork from the diagnosis checkpoint;
                // it is parallel in the paper, so its virtual time is
                // reported but not added to the main wall.
                let (validation, report) = if self.config.validation_iterations > 0 {
                    let snap = self
                        .manager
                        .get(diagnosis.checkpoint_id)
                        .map(|c| c.snap.clone());
                    match snap {
                        Some(snap) => {
                            let v = ValidationEngine::new(self.config.validation_iterations)
                                .validate(&self.process, &snap, &patchset, diagnosis.until_cursor);
                            if !v.consistent {
                                for p in &patches {
                                    self.pool.remove_site(&self.program, p.site);
                                }
                                let reduced = self.sync_pool_patches();
                                self.process.ctx.with_alloc_and_mem(|alloc, _mem| {
                                    expect_ext(alloc).set_normal(reduced);
                                });
                            }
                            let report = BugReport::build(
                                &self.program,
                                &failure,
                                &diagnosis,
                                &patches,
                                &v,
                                &self.process.ctx.symbols,
                            );
                            (Some(v), Some(report))
                        }
                        None => (None, None),
                    }
                } else {
                    (None, None)
                };

                self.manager.truncate_after(diagnosis.checkpoint_id);
                self.manager.rearm(&self.process);
                RecoveryRecord {
                    kind: RecoveryKind::Patched,
                    diagnosis: Some(diagnosis),
                    patches,
                    recovery_ns,
                    validation,
                    report,
                }
            }
        };
        self.recoveries.push(record);
        self.recoveries.len() - 1
    }
}
