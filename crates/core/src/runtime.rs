//! The First-Aid supervisor runtime.
//!
//! Wraps a simulated process with the full pipeline of paper Fig. 1:
//! periodic checkpoints during normal execution; on failure, diagnosis →
//! patch generation → patch application → resumed execution; then patch
//! validation on a fork and bug-report generation.

use std::collections::HashMap;

use fa_allocext::{
    BugType, ExtAllocator, Patch, PatchSet, SentryConfig, SentryMetrics, TrapRecord, GENERIC_SITE,
};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager, CheckpointStats};
use fa_faults::{FaultPlan, FaultStage};
use fa_proc::{BoxedApp, CallSite, FailureRecord, Fault, Input, Process, ProcessCtx, StepResult};

use crate::diagnose::{
    trap_bug_type, trap_seed_site, Diagnosis, DiagnosisEngine, DiagnosisOutcome, EngineConfig,
};
use crate::harness::expect_ext;
use crate::log;
use crate::metrics::{DegradationMetrics, ThroughputSampler};
use crate::patchpool::PatchPool;
use crate::report::BugReport;
use crate::validate::{ValidationEngine, ValidationOutcome};

/// Configuration of the First-Aid runtime.
#[derive(Clone, Debug)]
pub struct FirstAidConfig {
    /// Simulated heap size limit.
    pub heap_limit: u64,
    /// Checkpointing configuration (interval 200 ms by default, adaptive).
    pub adaptive: AdaptiveConfig,
    /// Maximum retained checkpoints.
    pub max_checkpoints: usize,
    /// Diagnosis engine tunables.
    pub engine: EngineConfig,
    /// Randomized validation iterations (0 disables validation).
    pub validation_iterations: usize,
    /// Delay-free quarantine byte budget (1 MB in the paper).
    pub quarantine_bytes: u64,
    /// Quarantine budget while program-wide generic patches are active:
    /// best-effort delay-free quarantines *every* free, so it needs a
    /// far larger window to span the same error-propagation distance.
    pub generic_quarantine_bytes: u64,
    /// Run the heap-integrity error monitor every N served inputs
    /// (0 disables it). A stronger monitor catches metadata corruption
    /// closer to the bug-triggering point, shortening error-propagation
    /// distance (paper §3 invites deploying such detectors).
    pub integrity_check_every: usize,
    /// Fault plan injected into the pipeline's own stages (checkpoint
    /// corruption, flaky/wedged diagnosis, validation-fork death, pool
    /// persistence I/O). [`FaultPlan::none`] in production.
    pub faults: FaultPlan,
    /// Health monitor: after how many failures with the same bug
    /// signature the installed patches are revoked as ineffective and
    /// the ladder descends one rung (minimum 2: the first failure of a
    /// signature is what *creates* its patches).
    pub patch_recurrence_limit: u32,
    /// Declare the runtime restart-worthy after this many consecutive
    /// dropped inputs (rung 4; fleet workers relaunch on it; 0 never).
    pub restart_after_drops: usize,
    /// Always-on sampling sentry tier: redirect ~1/rate allocations into
    /// guarded slots that trap memory bugs at the faulting access and
    /// feed the fast diagnosis path. `None` disables the tier.
    pub sentry: Option<SentryConfig>,
}

impl Default for FirstAidConfig {
    fn default() -> Self {
        FirstAidConfig {
            heap_limit: 1 << 30,
            adaptive: AdaptiveConfig::default(),
            max_checkpoints: 50,
            engine: EngineConfig::default(),
            validation_iterations: 3,
            quarantine_bytes: fa_allocext::DEFAULT_QUARANTINE_BYTES,
            generic_quarantine_bytes: 16 << 20,
            integrity_check_every: 0,
            faults: FaultPlan::none(),
            patch_recurrence_limit: 2,
            restart_after_drops: 4,
            sentry: None,
        }
    }
}

/// How one recovery concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Bugs diagnosed; runtime patches installed; execution resumed.
    Patched,
    /// Precise diagnosis failed, but the program-wide best-effort
    /// patches carried the poisoned input through (ladder rung 2).
    GenericPatched,
    /// The failure did not reproduce under timing changes; execution
    /// simply continued.
    NonDeterministic,
    /// Diagnosis gave up; the poisoned input was dropped and execution
    /// continued (ladder rung 3, or the crash-loop fast path).
    Dropped,
}

/// Health-monitor state for one bug signature: how often it recurred
/// and which patch sites its last recovery installed (the revocation
/// targets if it keeps recurring).
#[derive(Default)]
struct SigState {
    count: u32,
    sites: Vec<CallSite>,
}

/// Everything produced by one recovery.
#[derive(Debug)]
pub struct RecoveryRecord {
    /// How the recovery concluded.
    pub kind: RecoveryKind,
    /// The diagnosis, when one completed.
    pub diagnosis: Option<Diagnosis>,
    /// The patches installed by this recovery.
    pub patches: Vec<Patch>,
    /// Wall (virtual) time from failure catch to back-to-normal.
    pub recovery_ns: u64,
    /// The validation outcome, when validation ran.
    pub validation: Option<ValidationOutcome>,
    /// The assembled bug report, when validation ran.
    pub report: Option<BugReport>,
}

/// Outcome of feeding one input through the supervised process.
#[derive(Clone, Debug)]
pub struct FeedOutcome {
    /// The input was ultimately served (possibly after a recovery).
    pub served: bool,
    /// A failure occurred while first handling this input.
    pub failed: bool,
    /// Index into [`FirstAidRuntime::recoveries`] if a recovery ran.
    pub recovery: Option<usize>,
}

/// Summary of a full workload run.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Inputs served successfully.
    pub served: usize,
    /// Failures caught by the error monitor.
    pub failures: usize,
    /// Recoveries performed.
    pub recoveries: usize,
    /// Inputs dropped (non-patchable path).
    pub dropped: usize,
    /// Final wall time.
    pub wall_ns: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
    /// Degradation-ladder counters accumulated over the run.
    pub degradation: DegradationMetrics,
    /// Sentry-tier counters accumulated over the run.
    pub sentry: SentryMetrics,
}

/// A point-in-time health summary of one supervised runtime, cheap to
/// read from a fleet supervisor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeHealth {
    /// Total recoveries performed so far.
    pub recoveries: usize,
    /// Recoveries that ended with the input dropped (the degraded path).
    pub dropped: usize,
    /// Recoveries that installed patches.
    pub patched: usize,
    /// Inputs not yet consumed from the replay log.
    pub backlog: usize,
    /// Patch-pool epoch this runtime last synchronized to.
    pub pool_epoch: u64,
    /// Consecutive dropped inputs (resets on any non-dropped recovery);
    /// feeds the rung-4 restart decision.
    pub drop_streak: usize,
}

/// The First-Aid supervisor.
pub struct FirstAidRuntime {
    process: Process,
    manager: CheckpointManager,
    pool: PatchPool,
    config: FirstAidConfig,
    program: String,
    wall_ns: u64,
    last_proc_clock: u64,
    /// Pool version (any program) observed at the last patch sync; lets
    /// `refresh_patches` skip even the pool lock on the fast path.
    pool_version_seen: u64,
    /// Pool epoch for *this* program at the last patch sync.
    pool_epoch_seen: u64,
    /// Input index of the most recent failure, for crash-loop detection.
    last_failure_index: Option<usize>,
    /// Degradation-ladder counters (core stages; pool I/O counters are
    /// read live from the pool by [`FirstAidRuntime::degradation`]).
    degradation: DegradationMetrics,
    /// Patch health monitor: recurrence count and installed patch sites
    /// per bug signature.
    monitor: HashMap<String, SigState>,
    /// Consecutive dropped inputs; rung-4 restart trigger.
    drop_streak: usize,
    /// Runtime-side sentry counters (fast-path/full-ladder split, false
    /// traps); the allocator extension keeps the sampling-side counters.
    sentry_counters: SentryMetrics,
    /// All recoveries performed, in order.
    pub recoveries: Vec<RecoveryRecord>,
}

impl FirstAidRuntime {
    /// Launches an application under First-Aid supervision.
    ///
    /// Installs the allocator extension (with any patches already in the
    /// pool for this program) and takes checkpoint 0.
    pub fn launch(
        app: BoxedApp,
        mut config: FirstAidConfig,
        pool: PatchPool,
    ) -> Result<FirstAidRuntime, Fault> {
        // Re-execution must use the same error monitors as normal
        // execution, or monitor-caught failures would not reproduce.
        config.engine.integrity_check = config.integrity_check_every > 0;
        let program = app.name().to_owned();
        let mut ctx = ProcessCtx::new(config.heap_limit);
        let pool_version_seen = pool.version();
        let (patches, pool_epoch_seen) = pool.get_with_epoch(&program);
        let quarantine = config.quarantine_bytes;
        let sentry_cfg = config.sentry.clone();
        ctx.swap_alloc(|old| {
            let mut ext = ExtAllocator::attach(old.heap().clone());
            ext.set_quarantine_threshold(quarantine);
            if let Some(cfg) = sentry_cfg {
                ext.enable_sentry(cfg);
            }
            ext.set_normal(patches);
            Box::new(ext)
        });
        let mut process = Process::launch(app, ctx)?;
        let mut manager = CheckpointManager::new(config.adaptive, config.max_checkpoints);
        manager.force_checkpoint(&mut process);
        let last_proc_clock = process.ctx.clock.now();
        Ok(FirstAidRuntime {
            process,
            manager,
            pool,
            config,
            program,
            wall_ns: last_proc_clock,
            last_proc_clock,
            pool_version_seen,
            pool_epoch_seen,
            last_failure_index: None,
            degradation: DegradationMetrics::default(),
            monitor: HashMap::new(),
            drop_streak: 0,
            sentry_counters: SentryMetrics::default(),
            recoveries: Vec::new(),
        })
    }

    /// Returns the supervised process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Returns the supervised process mutably (experiment harness use).
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// Returns the wall (virtual) time, which only moves forward even
    /// across rollbacks.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Returns the program name (patch-pool key).
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Returns checkpointing statistics (paper Table 7).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.manager.stats()
    }

    /// Returns the shared patch pool.
    pub fn pool(&self) -> &PatchPool {
        &self.pool
    }

    /// Re-reads this program's patches from the pool and updates the
    /// sync markers (single lock hold).
    fn sync_pool_patches(&mut self) -> fa_allocext::PatchSet {
        self.pool_version_seen = self.pool.version();
        let (patches, epoch) = self.pool.get_with_epoch(&self.program);
        self.pool_epoch_seen = epoch;
        patches
    }

    /// Picks up patches other processes added to the shared pool since
    /// this runtime last looked, without re-launching (paper §3: patches
    /// are "available to all the processes that are running the same
    /// program").
    ///
    /// The fast path is one atomic load, so fleet workers can call this
    /// before every input. Returns `true` if new patches were installed.
    pub fn refresh_patches(&mut self) -> bool {
        if self.pool.version() == self.pool_version_seen {
            return false;
        }
        let before = self.pool_epoch_seen;
        let patches = self.sync_pool_patches();
        if self.pool_epoch_seen == before {
            // Another program's patches moved the global version; nothing
            // to install here.
            return false;
        }
        self.install_patchset(patches);
        true
    }

    /// Installs a patch set on the live allocator, widening the
    /// delay-free quarantine when program-wide generic patches are
    /// active (they quarantine *every* free, so the production budget
    /// would recycle poisoned blocks far too early).
    fn install_patchset(&mut self, patches: PatchSet) {
        let threshold = if patches.has_generic() {
            self.config
                .quarantine_bytes
                .max(self.config.generic_quarantine_bytes)
        } else {
            self.config.quarantine_bytes
        };
        self.process.ctx.with_alloc_and_mem(|alloc, _mem| {
            let ext = expect_ext(alloc);
            ext.set_quarantine_threshold(threshold);
            ext.set_normal(patches);
        });
    }

    /// Fault-injection hook: after a checkpoint is taken, the plan may
    /// silently rot it. The damage is discovered (via checksum) only
    /// when a later recovery goes looking for a rollback target.
    fn maybe_corrupt_checkpoint(&mut self) {
        if self
            .config
            .faults
            .should_fail(FaultStage::CheckpointCorrupt)
        {
            self.manager.corrupt_newest();
        }
    }

    /// Health-monitor key for a failure: fault class + failing op code.
    /// Deliberately coarse — a patch that "works" but lets the same kind
    /// of failure recur on the same request type is not working.
    ///
    /// Sentry traps carry the faulting object's call-site, so their
    /// signature additionally pins the patch-relevant site: a sampled
    /// trap at one call-site must not count as a recurrence against a
    /// patch that was installed for a *different* call-site signature.
    fn bug_signature(&self, failure: &FailureRecord, trap: Option<&TrapRecord>) -> String {
        let op = self
            .process
            .log()
            .get(failure.input_index)
            .map(|i| i.op)
            .unwrap_or(u32::MAX);
        match trap {
            Some(t) => {
                let bug = trap_bug_type(t);
                let site = trap_seed_site(t, bug).unwrap_or(t.alloc_site);
                format!("{}@op{op}@s{:x}", failure.fault.class(), site.leaf())
            }
            None => format!("{}@op{op}", failure.fault.class()),
        }
    }

    /// Returns the sentry-tier counters: the allocator extension's
    /// sampling/trap side merged with the runtime's diagnosis-path side.
    pub fn sentry_metrics(&mut self) -> SentryMetrics {
        let mut m = self.with_ext(|ext| ext.sentry_metrics().cloned().unwrap_or_default());
        m.merge(&self.sentry_counters);
        m
    }

    /// Returns the degradation-ladder counters, with the pool's
    /// persistence health folded in.
    pub fn degradation(&self) -> DegradationMetrics {
        let mut d = self.degradation.clone();
        d.pool_io_errors = self.pool.io_error_count();
        d.pool_degraded = self.pool.is_degraded();
        d
    }

    /// Rung 4 trigger: too many consecutive dropped inputs means even
    /// the generic rung is not holding; a supervisor should fold this
    /// runtime's results and relaunch it from scratch.
    pub fn needs_restart(&self) -> bool {
        self.config.restart_after_drops > 0 && self.drop_streak >= self.config.restart_after_drops
    }

    /// Files a recovery record, maintaining the drop streak and making
    /// sure a checkpoint survives (corruption sweeps can empty the ring;
    /// every later recovery assumes a rollback target exists).
    fn push_record(&mut self, record: RecoveryRecord) -> usize {
        if record.kind == RecoveryKind::Dropped {
            self.drop_streak += 1;
        } else {
            self.drop_streak = 0;
        }
        if self.manager.is_empty() {
            self.manager.force_checkpoint(&mut self.process);
            self.sync_wall();
        }
        self.recoveries.push(record);
        self.recoveries.len() - 1
    }

    /// Returns the number of inputs enqueued but not yet consumed.
    pub fn backlog(&self) -> usize {
        self.process.pending()
    }

    /// Returns a point-in-time health summary (fleet supervision).
    pub fn health(&self) -> RuntimeHealth {
        RuntimeHealth {
            recoveries: self.recoveries.len(),
            dropped: self
                .recoveries
                .iter()
                .filter(|r| r.kind == RecoveryKind::Dropped)
                .count(),
            patched: self
                .recoveries
                .iter()
                .filter(|r| r.kind == RecoveryKind::Patched)
                .count(),
            backlog: self.process.pending(),
            pool_epoch: self.pool_epoch_seen,
            drop_streak: self.drop_streak,
        }
    }

    /// Runs a closure over the allocator extension (counters, tables).
    pub fn with_ext<R>(&mut self, f: impl FnOnce(&mut ExtAllocator) -> R) -> R {
        self.process
            .ctx
            .with_alloc_and_mem(|alloc, _mem| f(expect_ext(alloc)))
    }

    fn sync_wall(&mut self) {
        let now = self.process.ctx.clock.now();
        if now > self.last_proc_clock {
            self.wall_ns += now - self.last_proc_clock;
        }
        self.last_proc_clock = now;
    }

    fn resync_without_credit(&mut self) {
        self.last_proc_clock = self.process.ctx.clock.now();
    }

    /// Feeds one input; recovers on failure.
    pub fn feed(&mut self, input: Input) -> FeedOutcome {
        let r = self.process.feed(input);
        self.sync_wall();
        match r {
            StepResult::Ok(_) => {
                self.drop_streak = 0;
                if self.manager.maybe_checkpoint(&mut self.process).is_some() {
                    self.sync_wall();
                    self.maybe_corrupt_checkpoint();
                }
                FeedOutcome {
                    served: true,
                    failed: false,
                    recovery: None,
                }
            }
            StepResult::Failed(_) => {
                let skipped_before = self.process.skipped_count();
                let idx = self.recover();
                // After recovery the failing input either succeeded during
                // the (possibly generic-)patched replay or was skipped.
                let served = self.process.skipped_count() == skipped_before;
                FeedOutcome {
                    served,
                    failed: true,
                    recovery: Some(idx),
                }
            }
        }
    }

    /// Runs a whole recorded workload, recovering as needed; optionally
    /// samples throughput for Fig. 4-style series.
    pub fn run(
        &mut self,
        workload: impl IntoIterator<Item = Input>,
        mut sampler: Option<&mut ThroughputSampler>,
    ) -> RunSummary {
        let mut summary = RunSummary::default();
        let mut enqueued = 0usize;
        for input in workload {
            self.process.enqueue(input);
            enqueued += 1;
        }
        let skipped_at_entry = self.process.skipped_count();
        let mut ok_steps = 0usize;
        loop {
            match self.process.step() {
                None => {
                    if self.process.pending() == 0 {
                        break;
                    }
                    // A pending failure without a step means recover.
                    self.recover();
                    summary.recoveries += 1;
                }
                Some(StepResult::Ok(_)) => {
                    ok_steps += 1;
                    self.drop_streak = 0;
                    self.sync_wall();
                    if self.manager.maybe_checkpoint(&mut self.process).is_some() {
                        self.sync_wall();
                        self.maybe_corrupt_checkpoint();
                    }
                    let every = self.config.integrity_check_every;
                    if every > 0 && ok_steps.is_multiple_of(every) {
                        let verdict = self
                            .process
                            .ctx
                            .with_alloc_and_mem(|alloc, mem| alloc.heap().check_integrity(mem));
                        if let Err(e) = verdict {
                            self.process.raise_failure(Fault::Heap(e));
                            summary.failures += 1;
                            self.sync_wall();
                            self.recover();
                            summary.recoveries += 1;
                        }
                    }
                }
                Some(StepResult::Failed(_)) => {
                    summary.failures += 1;
                    self.sync_wall();
                    self.recover();
                    summary.recoveries += 1;
                }
            }
            if let Some(s) = sampler.as_deref_mut() {
                s.record(self.wall_ns, self.process.bytes_delivered);
            }
        }
        // Conservation: every enqueued input was either served (possibly
        // during a patched replay inside a recovery) or skipped. This is
        // what the liveness property tests check under fault injection.
        summary.dropped = self.process.skipped_count() - skipped_at_entry;
        summary.served = enqueued.saturating_sub(summary.dropped);
        summary.wall_ns = self.wall_ns;
        summary.bytes_delivered = self.process.bytes_delivered;
        summary.degradation = self.degradation();
        summary.sentry = self.sentry_metrics();
        summary
    }

    /// Diagnoses the pending failure, installs patches, resumes execution,
    /// validates, and files a [`RecoveryRecord`]. Returns its index.
    ///
    /// When precise diagnosis is impossible (timeout, flaky re-execution,
    /// lost checkpoints, revoked patches), recovery descends the
    /// degradation ladder instead of giving up: generic best-effort
    /// patches → rollback-and-drop → (via [`FirstAidRuntime::needs_restart`])
    /// drop-and-restart.
    ///
    /// # Panics
    ///
    /// Panics if no failure is pending.
    pub fn recover(&mut self) -> usize {
        let failure = self
            .process
            .failure
            .clone()
            .expect("recover requires a pending failure");
        self.sync_wall();
        let wall_at_failure = self.wall_ns;

        // A sentry trap caught the bug at the faulting access; consume
        // the trap record now (rollbacks below would discard it) so it
        // can key the health monitor and seed the fast diagnosis path.
        let trap = if failure.fault.class() == "sentry-trap" {
            self.with_ext(|ext| ext.take_pending_trap())
        } else {
            None
        };
        if let Some(t) = &trap {
            // The extension's counters for this trap sit in state the
            // recovery is about to roll back; re-home the trap onto the
            // runtime's own counters (which survive rollbacks) and drop
            // the extension's copy so no-rollback recoveries do not
            // count it twice.
            let kind = t.kind;
            self.with_ext(|ext| {
                if let Some(e) = ext.sentry_mut() {
                    e.metrics_mut().uncount_trap(kind);
                }
            });
            self.sentry_counters.count_trap(kind);
        }

        // Discard checkpoints whose checksum no longer matches before
        // anything relies on the ring: diagnosis and the ladder both
        // fall back to the next-older intact checkpoint.
        let swept = self.manager.sweep_corrupt();
        if !swept.is_empty() {
            self.degradation.checkpoint_checksum_misses += swept.len();
            log::warn(format!(
                "{}: discarded {} corrupt checkpoint(s) {:?}; falling back to older intact ones",
                self.program,
                swept.len(),
                swept
            ));
        }

        // Patch health monitor: a recurring bug signature means the
        // patches installed for it are not working. Revoke them (fleet-
        // wide tombstone) and escalate one rung.
        let sig = self.bug_signature(&failure, trap.as_ref());
        let recurrence = {
            let entry = self.monitor.entry(sig.clone()).or_default();
            entry.count += 1;
            entry.count
        };
        if recurrence >= self.config.patch_recurrence_limit.max(2) {
            let sites = self
                .monitor
                .get_mut(&sig)
                .map(|e| std::mem::take(&mut e.sites))
                .unwrap_or_default();
            if !sites.is_empty() {
                let mut revoked = 0usize;
                for site in sites {
                    if self.pool.revoke(&self.program, site) {
                        revoked += 1;
                    }
                }
                if revoked > 0 {
                    self.degradation.patch_revocations += revoked;
                    log::warn(format!(
                        "{}: bug signature {sig} recurred {recurrence}x under its patches; \
                         revoked {revoked} site(s) and escalating one rung",
                        self.program
                    ));
                }
                if let Some(e) = self.monitor.get_mut(&sig) {
                    e.count = 0;
                }
                self.last_failure_index = Some(failure.input_index);
                let record =
                    self.descend_ladder(&failure, wall_at_failure, Vec::new(), &sig, trap.as_ref());
                return self.push_record(record);
            }
        }

        // Crash-loop safeguard: if failures recur within a few inputs of
        // the previous one, diagnosis is evidently not helping (e.g. an
        // ineffective patch, or a bug First-Aid cannot fix) — resort to
        // the cheap recovery scheme and drop the input (paper §2: "times
        // out and resorts to other recovery schemes").
        let crash_loop = self
            .last_failure_index
            .is_some_and(|prev| failure.input_index.saturating_sub(prev) < 20);
        self.last_failure_index = Some(failure.input_index);
        if crash_loop {
            let record = self.descend_cheap(wall_at_failure, &sig);
            return self.push_record(record);
        }

        let engine = DiagnosisEngine::with_faults(self.config.engine, self.config.faults.clone());
        // Sentry traps name the faulting call-site, so try the fast path
        // first: one confirming re-execution seeded with the trapped
        // site instead of the full trial ladder. When it cannot confirm
        // (or a pipeline fault wedges it), degrade to the full ladder.
        let outcome = match trap
            .as_ref()
            .and_then(|t| engine.diagnose_fast(&mut self.process, &self.manager, t))
        {
            Some(d) => {
                self.sentry_counters.fast_path_diagnoses += 1;
                DiagnosisOutcome::Diagnosed(d)
            }
            None => {
                if trap.is_some() {
                    self.sentry_counters.full_ladder_diagnoses += 1;
                }
                engine.diagnose(&mut self.process, &self.manager)
            }
        };
        self.degradation.reexec_retries += engine.retries_used();
        self.degradation.speculative_trials += engine.speculative_trials();
        self.degradation.parallel_waves += engine.parallel_waves();
        let record = match outcome {
            DiagnosisOutcome::NonDeterministic {
                elapsed_ns, log, ..
            } => {
                // The successful plain re-execution left the process past
                // the failure region; keep going from there.
                self.wall_ns += elapsed_ns;
                self.resync_without_credit();
                self.manager.rearm(&self.process);
                self.degradation.nondeterministic += 1;
                let _ = log;
                RecoveryRecord {
                    kind: RecoveryKind::NonDeterministic,
                    diagnosis: None,
                    patches: Vec::new(),
                    recovery_ns: self.wall_ns - wall_at_failure,
                    validation: None,
                    report: None,
                }
            }
            DiagnosisOutcome::NonPatchable {
                elapsed_ns, log, ..
            } => {
                self.wall_ns += elapsed_ns;
                if log.iter().any(|l| l.contains("deadline exceeded")) {
                    self.degradation.diagnosis_timeouts += 1;
                }
                self.descend_ladder(&failure, wall_at_failure, log, &sig, trap.as_ref())
            }
            DiagnosisOutcome::Diagnosed(diagnosis) => {
                self.wall_ns += diagnosis.elapsed_ns;
                let patches = diagnosis.patches(&self.process.ctx.symbols);
                // A diagnosis that only re-derives revoked (known-
                // ineffective) sites would re-install them and loop;
                // escalate instead.
                if !patches.is_empty()
                    && patches
                        .iter()
                        .all(|p| self.pool.is_revoked(&self.program, p.site))
                {
                    log::warn(format!(
                        "{}: diagnosis re-derived only revoked patch site(s); escalating",
                        self.program
                    ));
                    let record = self.descend_ladder(
                        &failure,
                        wall_at_failure,
                        diagnosis.log.clone(),
                        &sig,
                        trap.as_ref(),
                    );
                    return self.push_record(record);
                }
                self.pool.add(&self.program, patches.iter().cloned());
                if let Some(e) = self.monitor.get_mut(&sig) {
                    e.sites = patches.iter().map(|p| p.site).collect();
                }
                self.degradation.precise_patches += 1;
                let patchset = self.sync_pool_patches();

                // Final recovery pass: back to the diagnosis checkpoint in
                // normal mode with the patches installed; replay forward.
                self.manager
                    .rollback_to(&mut self.process, diagnosis.checkpoint_id);
                self.install_patchset(patchset.clone());
                // Recovery ends when the process is back in normal mode
                // and has caught up to the input it crashed on; traffic
                // beyond that is ordinary execution (the paper's recovery
                // time is "from when the failure is first caught to when
                // the program changes back to normal mode").
                let t0 = self.process.ctx.clock.now();
                while self.process.cursor() <= failure.input_index {
                    match self.process.step() {
                        Some(r) if r.is_ok() => {}
                        _ => break,
                    }
                }
                if self.process.failure.is_some() {
                    // The patch did not carry the replay through the
                    // region (should not happen after a clean phase 1);
                    // drop the poisoned input rather than loop.
                    self.process.clear_failure();
                    self.process.skip_current();
                }
                self.wall_ns += self.process.ctx.clock.now().saturating_sub(t0) + 80_000;
                self.resync_without_credit();
                let recovery_ns = self.wall_ns - wall_at_failure;

                // Validation runs on a fork from the diagnosis checkpoint;
                // it is parallel in the paper, so its virtual time is
                // reported but not added to the main wall.
                let (validation, report) = if self.config.validation_iterations > 0 {
                    let snap = self
                        .manager
                        .get(diagnosis.checkpoint_id)
                        .map(|c| c.snap.clone());
                    match snap {
                        Some(snap) => {
                            let verdict = ValidationEngine::new(self.config.validation_iterations)
                                .try_validate(
                                    &self.config.faults,
                                    &self.process,
                                    &snap,
                                    &patchset,
                                    diagnosis.until_cursor,
                                );
                            match verdict {
                                None => {
                                    // The validation fork died; the patches
                                    // already survived diagnosis, so keep
                                    // them — but file no consistency verdict
                                    // and no report.
                                    self.degradation.validation_fork_failures += 1;
                                    log::warn(format!(
                                        "{}: validation fork failed; keeping patches unvalidated",
                                        self.program
                                    ));
                                    (None, None)
                                }
                                Some(v) => {
                                    if !v.consistent {
                                        for p in &patches {
                                            self.pool.remove_site(&self.program, p.site);
                                        }
                                        let reduced = self.sync_pool_patches();
                                        self.install_patchset(reduced);
                                        if let Some(e) = self.monitor.get_mut(&sig) {
                                            e.sites.clear();
                                        }
                                    }
                                    let report = BugReport::build(
                                        &self.program,
                                        &failure,
                                        &diagnosis,
                                        &patches,
                                        &v,
                                        &self.process.ctx.symbols,
                                        trap.as_ref(),
                                    );
                                    (Some(v), Some(report))
                                }
                            }
                        }
                        None => (None, None),
                    }
                } else {
                    (None, None)
                };

                self.manager.truncate_after(diagnosis.checkpoint_id);
                self.manager.rearm(&self.process);
                RecoveryRecord {
                    kind: RecoveryKind::Patched,
                    diagnosis: Some(diagnosis),
                    patches,
                    recovery_ns,
                    validation,
                    report,
                }
            }
        };
        // A trap that did not end in precise patches is a false (or at
        // least unconfirmable) trap; feed the rate back into metrics so
        // the bench can police sampling quality.
        if trap.is_some() && record.kind != RecoveryKind::Patched {
            self.sentry_counters.false_traps += 1;
        }
        self.push_record(record)
    }

    /// Makes sure the program-wide generic best-effort patches
    /// (`AddPadding` + `DelayFree` at every call-site) are in the pool,
    /// unless that rung has itself been revoked. Returns the freshly
    /// added patches (empty if they were already present or revoked).
    fn arm_generic_rung(&mut self) -> Vec<Patch> {
        if self.pool.is_revoked(&self.program, GENERIC_SITE) {
            return Vec::new();
        }
        let generics = vec![
            Patch::generic(BugType::BufferOverflow),
            Patch::generic(BugType::DanglingRead),
        ];
        if self.pool.add(&self.program, generics.iter().cloned()) > 0 {
            log::warn(format!(
                "{}: descending to generic best-effort patches \
                 (program-wide add-padding + delay-free)",
                self.program
            ));
            generics
        } else {
            Vec::new()
        }
    }

    /// Ladder rungs 2 and 3: roll back to the **oldest** intact
    /// checkpoint (maximum distance from the poisoned state), install
    /// the generic best-effort patches if that rung is still available,
    /// replay, and — under generic protection — attempt the poisoned
    /// input itself. Serving it is rung 2 ([`RecoveryKind::GenericPatched`]);
    /// dropping it is rung 3 ([`RecoveryKind::Dropped`]).
    fn descend_ladder(
        &mut self,
        failure: &FailureRecord,
        wall_at_failure: u64,
        diag_log: Vec<String>,
        sig: &str,
        trap: Option<&TrapRecord>,
    ) -> RecoveryRecord {
        let fresh = self.arm_generic_rung();
        let patchset = self.sync_pool_patches();
        let generic_active = patchset.has_generic();

        let Some(target) = self.manager.oldest().map(|c| c.id) else {
            // Every checkpoint was corrupt and got swept: no rollback
            // target at all. Cheapest possible recovery in place.
            return self.descend_cheap(wall_at_failure, sig);
        };
        self.manager.rollback_to(&mut self.process, target);
        self.install_patchset(patchset);
        let t0 = self.process.ctx.clock.now();
        while self.process.cursor() < failure.input_index {
            match self.process.step() {
                Some(r) if r.is_ok() => {}
                _ => break,
            }
        }
        let mut served_through = false;
        if self.process.failure.is_some() {
            // The replay itself failed en route; drop whatever input it
            // died on rather than loop.
            self.process.clear_failure();
            self.process.skip_current();
        } else if self.process.cursor() == failure.input_index {
            if generic_active {
                // Attempt the poisoned input under generic protection.
                match self.process.step() {
                    Some(r) if r.is_ok() => served_through = true,
                    _ => {
                        if self.process.failure.is_some() {
                            self.process.clear_failure();
                        }
                        self.process.skip_current();
                    }
                }
            } else {
                self.process.skip_current();
            }
        }
        self.wall_ns += self.process.ctx.clock.now().saturating_sub(t0) + 80_000;
        self.resync_without_credit();
        self.manager.truncate_after(target);
        self.manager.rearm(&self.process);

        if generic_active {
            // The generic rung now guards this signature; if it recurs
            // anyway, the health monitor revokes GENERIC_SITE and the
            // next descent lands on rung 3.
            let entry = self.monitor.entry(sig.to_owned()).or_default();
            entry.sites = vec![GENERIC_SITE];
        }
        let (kind, rung) = if served_through {
            self.degradation.generic_patches += 1;
            (
                RecoveryKind::GenericPatched,
                "generic best-effort patch (rung 2)",
            )
        } else {
            self.degradation.rollback_drops += 1;
            (RecoveryKind::Dropped, "rollback-and-drop (rung 3)")
        };
        let report = BugReport::degraded(&self.program, failure, rung, &fresh, diag_log, trap);
        RecoveryRecord {
            kind,
            diagnosis: None,
            patches: fresh,
            recovery_ns: self.wall_ns - wall_at_failure,
            validation: None,
            report: Some(report),
        }
    }

    /// Cheap in-place descent (crash loops, or no intact checkpoint):
    /// no rollback, no replay — arm the generic rung so prevention gets
    /// a chance to break the loop, then drop the poisoned input.
    fn descend_cheap(&mut self, wall_at_failure: u64, sig: &str) -> RecoveryRecord {
        let fresh = self.arm_generic_rung();
        if !fresh.is_empty() {
            let patchset = self.sync_pool_patches();
            self.install_patchset(patchset);
            let entry = self.monitor.entry(sig.to_owned()).or_default();
            entry.sites = vec![GENERIC_SITE];
        }
        self.process.clear_failure();
        self.process.skip_current();
        self.manager.rearm(&self.process);
        self.degradation.rollback_drops += 1;
        RecoveryRecord {
            kind: RecoveryKind::Dropped,
            diagnosis: None,
            patches: fresh,
            recovery_ns: self.wall_ns - wall_at_failure,
            validation: None,
            report: None,
        }
    }
}
