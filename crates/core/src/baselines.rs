//! The comparison systems of the paper's evaluation (§7.3, Fig. 4,
//! Table 4): Rx-style checkpoint recovery and whole-process restart.

use fa_allocext::{ChangePlan, ExtAllocator, PatchSet};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager};
use fa_proc::{BoxedApp, Fault, Input, Process, ProcessCtx, StepResult};

use crate::harness::{expect_ext, ReexecOptions, ReplayHarness};
use crate::log;
use crate::metrics::ThroughputSampler;
use crate::runtime::RunSummary;

/// One Rx recovery (for Table 4 accounting).
#[derive(Clone, Debug)]
pub struct RxRecovery {
    /// Wall time from failure to resumed normal execution.
    pub recovery_ns: u64,
    /// Rollback iterations used.
    pub rollbacks: usize,
    /// Objects the environmental changes touched in the buggy region.
    pub changed_objects: u64,
    /// Distinct call-sites the changes touched in the buggy region.
    pub changed_sites: usize,
}

/// Rx (SOSP'05): survive by re-executing from a checkpoint with
/// environmental changes applied to **all** memory objects, then disable
/// the changes once past the failure region.
///
/// Because the changes are disabled after recovery (they are too heavy to
/// leave on for every object), the same deterministic bug fails again on
/// the next triggering input — the sawtooth of paper Fig. 4.
pub struct RxRuntime {
    process: Process,
    manager: CheckpointManager,
    wall_ns: u64,
    last_proc_clock: u64,
    margin_intervals: u64,
    max_checkpoint_tries: usize,
    /// All recoveries performed.
    pub recoveries: Vec<RxRecovery>,
}

impl RxRuntime {
    /// Launches an application under Rx supervision.
    pub fn launch(
        app: BoxedApp,
        adaptive: AdaptiveConfig,
        heap_limit: u64,
    ) -> Result<RxRuntime, Fault> {
        let mut ctx = ProcessCtx::new(heap_limit);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        let mut process = Process::launch(app, ctx)?;
        let mut manager = CheckpointManager::new(adaptive, 50);
        manager.force_checkpoint(&mut process);
        let last_proc_clock = process.ctx.clock.now();
        Ok(RxRuntime {
            process,
            manager,
            wall_ns: last_proc_clock,
            last_proc_clock,
            margin_intervals: 3,
            max_checkpoint_tries: 8,
            recoveries: Vec::new(),
        })
    }

    /// Returns the wall (virtual) time.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Returns the supervised process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    fn sync_wall(&mut self) {
        let now = self.process.ctx.clock.now();
        if now > self.last_proc_clock {
            self.wall_ns += now - self.last_proc_clock;
        }
        self.last_proc_clock = now;
    }

    /// Runs a workload, recovering Rx-style on failures.
    pub fn run(
        &mut self,
        workload: impl IntoIterator<Item = Input>,
        mut sampler: Option<&mut ThroughputSampler>,
    ) -> RunSummary {
        let mut summary = RunSummary::default();
        for input in workload {
            self.process.enqueue(input);
        }
        loop {
            match self.process.step() {
                None => {
                    if self.process.pending() == 0 {
                        break;
                    }
                    self.recover(&mut summary);
                }
                Some(StepResult::Ok(_)) => {
                    summary.served += 1;
                    self.sync_wall();
                    if self.manager.maybe_checkpoint(&mut self.process).is_some() {
                        self.sync_wall();
                    }
                }
                Some(StepResult::Failed(_)) => {
                    summary.failures += 1;
                    self.sync_wall();
                    self.recover(&mut summary);
                }
            }
            if let Some(s) = sampler.as_deref_mut() {
                s.record(self.wall_ns, self.process.bytes_delivered);
            }
        }
        summary.wall_ns = self.wall_ns;
        summary.bytes_delivered = self.process.bytes_delivered;
        summary
    }

    fn recover(&mut self, summary: &mut RunSummary) {
        let Some(failure) = self.process.failure.clone() else {
            // A stray call with nothing pending is not a recovery.
            return;
        };
        let wall_start = self.wall_ns;
        let margin_ns = self.margin_intervals * self.manager.interval_ns();
        let until =
            ReplayHarness::success_end_cursor(&self.process, failure.input_index, margin_ns);
        let mut rollbacks = 0usize;
        let mut survived = false;
        #[allow(clippy::explicit_counter_loop)] // rollbacks counts work, not iterations reached
        for k in 0..self.max_checkpoint_tries {
            let Some(ckpt) = self.manager.nth_newest(k) else {
                break;
            };
            let id = ckpt.id;
            // Rx applies all preventive changes to ALL objects — no
            // in-depth diagnosis, no heap marking.
            let r = ReplayHarness::reexecute(
                &mut self.process,
                &self.manager,
                id,
                ChangePlan::all_preventive(),
                &ReexecOptions {
                    mark_heap: false,
                    timing_seed: 0,
                    until_cursor: until,
                    integrity_check: false,
                },
            );
            rollbacks += 1;
            self.wall_ns += r.elapsed_ns;
            if r.passed {
                // Survived: record the footprint of the global changes in
                // the buggy region (Table 4), then DISABLE the changes —
                // Rx cannot afford them during normal execution.
                self.recoveries.push(RxRecovery {
                    recovery_ns: self.wall_ns - wall_start,
                    rollbacks,
                    changed_objects: r.changed_objects,
                    changed_sites: r.changed_sites,
                });
                self.process.ctx.with_alloc_and_mem(|alloc, mem| {
                    let ext = expect_ext(alloc);
                    ext.set_normal(PatchSet::new());
                    // Delay-freed objects drain back to the heap.
                    let _ = ext.flush_quarantine(mem);
                });
                self.manager.truncate_after(id);
                self.manager.rearm(&self.process);
                self.last_proc_clock = self.process.ctx.clock.now();
                survived = true;
                summary.recoveries += 1;
                break;
            }
        }
        if !survived {
            // Give up on the input: replay to it in normal mode and drop.
            let Some(newest) = self.manager.nth_newest(0).map(|c| c.id) else {
                // The ring is empty (launch normally guarantees a
                // checkpoint): drop the poisoned input in place.
                self.process.clear_failure();
                self.process.skip_current();
                self.last_proc_clock = self.process.ctx.clock.now();
                self.manager.rearm(&self.process);
                summary.dropped += 1;
                return;
            };
            self.manager.rollback_to(&mut self.process, newest);
            self.process.ctx.with_alloc_and_mem(|alloc, _mem| {
                expect_ext(alloc).set_normal(PatchSet::new());
            });
            while self.process.cursor() < failure.input_index {
                match self.process.step() {
                    Some(r) if r.is_ok() => {}
                    _ => break,
                }
            }
            self.process.clear_failure();
            self.process.skip_current();
            self.last_proc_clock = self.process.ctx.clock.now();
            self.manager.rearm(&self.process);
            summary.dropped += 1;
        }
    }
}

/// The classic restart approach: on failure, restart the whole process.
///
/// Restart loses all in-memory state, pays a fixed downtime, drops the
/// poisoned request, and — the bug being deterministic — fails again on
/// every future triggering input (paper Fig. 4, bottom rows).
pub struct RestartRuntime {
    process: Process,
    template: BoxedApp,
    heap_limit: u64,
    restart_cost_ns: u64,
    wall_ns: u64,
    last_proc_clock: u64,
    bytes_delivered_past: u64,
    /// Number of restarts performed.
    pub restarts: usize,
}

impl RestartRuntime {
    /// Launches an application with restart-on-failure supervision.
    ///
    /// `restart_cost_ns` is the downtime charged per restart (process
    /// teardown + exec + init; server restarts are of the order of a
    /// second).
    pub fn launch(
        app: BoxedApp,
        heap_limit: u64,
        restart_cost_ns: u64,
    ) -> Result<RestartRuntime, Fault> {
        let template = app.clone();
        let mut ctx = ProcessCtx::new(heap_limit);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        let process = Process::launch(app, ctx)?;
        let last_proc_clock = process.ctx.clock.now();
        Ok(RestartRuntime {
            process,
            template,
            heap_limit,
            restart_cost_ns,
            wall_ns: last_proc_clock,
            last_proc_clock,
            bytes_delivered_past: 0,
            restarts: 0,
        })
    }

    /// Returns the wall (virtual) time.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Total bytes delivered across all incarnations.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered_past + self.process.bytes_delivered
    }

    fn sync_wall(&mut self) {
        let now = self.process.ctx.clock.now();
        if now > self.last_proc_clock {
            self.wall_ns += now - self.last_proc_clock;
        }
        self.last_proc_clock = now;
    }

    /// Runs a workload, restarting on every failure.
    pub fn run(
        &mut self,
        workload: impl IntoIterator<Item = Input>,
        mut sampler: Option<&mut ThroughputSampler>,
    ) -> RunSummary {
        let mut summary = RunSummary::default();
        for input in workload {
            let r = self.process.feed(input);
            self.sync_wall();
            match r {
                StepResult::Ok(_) => summary.served += 1,
                StepResult::Failed(_) => {
                    summary.failures += 1;
                    summary.dropped += 1;
                    self.restart();
                    summary.recoveries += 1;
                }
            }
            if let Some(s) = sampler.as_deref_mut() {
                s.record(self.wall_ns, self.bytes_delivered());
            }
        }
        summary.wall_ns = self.wall_ns;
        summary.bytes_delivered = self.bytes_delivered();
        summary
    }

    fn restart(&mut self) {
        self.restarts += 1;
        self.wall_ns += self.restart_cost_ns;
        self.bytes_delivered_past += self.process.bytes_delivered;
        let mut ctx = ProcessCtx::new(self.heap_limit);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        let app = self.template.clone();
        match Process::launch(app, ctx) {
            Ok(p) => {
                self.process = p;
                self.last_proc_clock = self.process.ctx.clock.now();
                self.wall_ns += self.last_proc_clock; // init work of the new process
            }
            Err(e) => {
                // The relaunch itself died in app init; keep serving on
                // the old incarnation (with the poisoned input dropped)
                // rather than aborting the supervisor.
                log::warn(format!(
                    "restart: relaunch failed ({e}); continuing on the old process"
                ));
                self.process.clear_failure();
                self.process.skip_current();
                self.last_proc_clock = self.process.ctx.clock.now();
            }
        }
    }
}
