//! On-site bug reports (paper §5, Fig. 5).
//!
//! Besides the usual core dump, First-Aid gives developers: (a) the
//! diagnosis log, (b) the runtime patch information (bug type +
//! call-sites), (c) allocation/deallocation traces of the buggy region
//! with and without the patch, and (d) the illegal accesses the patch
//! neutralizes, grouped by the code making them.

use std::collections::BTreeMap;
use std::fmt;

use serde::Serialize;

use fa_allocext::{IllegalKind, Patch, SentryEngine, TraceEvent, TrapKind, TrapRecord};
use fa_mem::AccessKind;
use fa_proc::{FailureRecord, SymbolTable};

use crate::diagnose::Diagnosis;
use crate::validate::ValidationOutcome;

/// A rendered-on-demand diagnostic bug report.
///
/// Serializes to JSON for shipping to developers alongside the core dump
/// (`serde_json::to_string_pretty(&report)`).
#[derive(Clone, Debug, Serialize)]
pub struct BugReport {
    /// Program name.
    pub program: String,
    /// Description of the original failure (the "core dump").
    pub failure: String,
    /// How the bug was first detected: `"crash"` (the paper's error
    /// monitors), `"canary-on-free"` (silent-overflow evidence harvested
    /// from sentry slack), or `"sentry-trap"` (a guarded slot trapped
    /// the faulting access itself).
    pub detection: String,
    /// Guarded-slot layout of the trapped object, when a sentry was the
    /// detector (developers reading the report see exactly which bytes
    /// were armed).
    pub sentry_slot: Option<String>,
    /// Recovery time in virtual seconds.
    pub recovery_s: f64,
    /// Validation time in virtual seconds.
    pub validation_s: f64,
    /// The diagnosis log.
    pub diagnosis_log: Vec<String>,
    /// Patches with their trigger counts from validation.
    pub patches: Vec<(Patch, u64)>,
    /// Paired allocation/deallocation trace lines: (without patch, with
    /// patch).
    pub mm_diff: Vec<(String, String)>,
    /// Illegal access summary per patch: (patch index, reads, writes,
    /// lines like "from N instruction site(s) in f").
    pub illegal_summary: Vec<(usize, u64, u64, Vec<String>)>,
}

impl BugReport {
    /// Assembles a report from the recovery artifacts.
    pub fn build(
        program: &str,
        failure: &FailureRecord,
        diagnosis: &Diagnosis,
        patches: &[Patch],
        validation: &ValidationOutcome,
        symbols: &SymbolTable,
        trap: Option<&TrapRecord>,
    ) -> BugReport {
        let patched_trace = validation.traces.first().cloned().unwrap_or_default();
        let triggers = validation
            .trigger_counts
            .first()
            .cloned()
            .unwrap_or_default();
        let patches_with_counts: Vec<(Patch, u64)> = patches
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), triggers.get(&i).copied().unwrap_or(0)))
            .collect();

        let (detection, sentry_slot) = Self::detection_tier(trap);
        BugReport {
            program: program.to_owned(),
            failure: format!(
                "{} at input #{} (t={:.3}s)",
                failure.fault,
                failure.input_index,
                failure.at_ns as f64 / 1e9
            ),
            detection,
            sentry_slot,
            recovery_s: diagnosis.elapsed_ns as f64 / 1e9,
            validation_s: validation.validation_ns as f64 / 1e9,
            diagnosis_log: diagnosis.log.clone(),
            patches: patches_with_counts,
            mm_diff: Self::mm_diff(&validation.unpatched_trace, &patched_trace),
            illegal_summary: Self::illegal_summary(&patched_trace, symbols),
        }
    }

    /// Assembles a minimal report for a degraded recovery: diagnosis
    /// could not conclude, so there is no validation trace or trigger
    /// data — only the ladder rung taken, the patches (if any) it
    /// installed, and the log explaining why.
    pub fn degraded(
        program: &str,
        failure: &FailureRecord,
        rung: &str,
        patches: &[Patch],
        mut log: Vec<String>,
        trap: Option<&TrapRecord>,
    ) -> BugReport {
        log.push(format!("degraded recovery: {rung}"));
        let (detection, sentry_slot) = Self::detection_tier(trap);
        BugReport {
            program: program.to_owned(),
            failure: format!(
                "{} at input #{} (t={:.3}s)",
                failure.fault,
                failure.input_index,
                failure.at_ns as f64 / 1e9
            ),
            detection,
            sentry_slot,
            recovery_s: 0.0,
            validation_s: 0.0,
            diagnosis_log: log,
            patches: patches.iter().map(|p| (p.clone(), 0)).collect(),
            mm_diff: Vec::new(),
            illegal_summary: Vec::new(),
        }
    }

    /// Classifies the detection tier and renders the armed slot layout
    /// for sentry-detected bugs.
    fn detection_tier(trap: Option<&TrapRecord>) -> (String, Option<String>) {
        match trap {
            None => ("crash".to_owned(), None),
            Some(t) => {
                let tier = if t.kind == TrapKind::CanaryOnFree {
                    "canary-on-free"
                } else {
                    "sentry-trap"
                };
                (tier.to_owned(), Some(SentryEngine::slot_layout(t.size)))
            }
        }
    }

    /// Pairs the memory-management operations of the unpatched and patched
    /// traces (paper Fig. 5, item 4).
    fn mm_diff(unpatched: &[TraceEvent], patched: &[TraceEvent]) -> Vec<(String, String)> {
        fn render(e: &TraceEvent) -> Option<String> {
            match e {
                TraceEvent::Alloc { user, size, .. } => Some(format!("malloc({size}): {user}")),
                TraceEvent::Dealloc {
                    user, delayed_by, ..
                } => Some(match delayed_by {
                    Some(p) => format!("free({user})  (delayed, patch {})", p + 1),
                    None => format!("free({user})"),
                }),
                TraceEvent::Illegal { .. } => None,
            }
        }
        let left: Vec<String> = unpatched.iter().filter_map(render).collect();
        let right: Vec<String> = patched.iter().filter_map(render).collect();
        let n = left.len().max(right.len()).min(64);
        (0..n)
            .map(|i| {
                (
                    left.get(i).cloned().unwrap_or_default(),
                    right.get(i).cloned().unwrap_or_default(),
                )
            })
            .collect()
    }

    /// Groups illegal accesses by neutralizing patch and accessing
    /// call-site (paper Fig. 5, item 5).
    fn illegal_summary(
        trace: &[TraceEvent],
        symbols: &SymbolTable,
    ) -> Vec<(usize, u64, u64, Vec<String>)> {
        // patch index (or usize::MAX for unattributed) →
        //   (reads, writes, site → count)
        let mut groups: BTreeMap<usize, (u64, u64, BTreeMap<String, u64>)> = BTreeMap::new();
        for e in trace {
            let TraceEvent::Illegal {
                kind,
                access,
                access_site,
                patch,
                ..
            } = e
            else {
                continue;
            };
            let idx = patch.unwrap_or(match kind {
                // Unattributed events group by kind-implied change.
                IllegalKind::PaddingWrite => 0,
                IllegalKind::QuarantineRead | IllegalKind::QuarantineWrite => 0,
                IllegalKind::UninitRead => 0,
            });
            let entry = groups.entry(idx).or_default();
            match access {
                AccessKind::Read => entry.0 += 1,
                AccessKind::Write => entry.1 += 1,
            }
            let site = symbols.name(access_site.leaf()).to_owned();
            *entry.2.entry(site).or_insert(0) += 1;
        }
        groups
            .into_iter()
            .map(|(idx, (reads, writes, sites))| {
                let lines = sites
                    .into_iter()
                    .map(|(site, n)| format!("from {n} access(es) in {site}"))
                    .collect();
                (idx, reads, writes, lines)
            })
            .collect()
    }
}

impl BugReport {
    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Bug report for {}:", self.program)?;
        writeln!(f, "1. Failure coredump: {}", self.failure)?;
        writeln!(f, "    detected by: {}", self.detection)?;
        if let Some(slot) = &self.sentry_slot {
            writeln!(f, "    armed slot: {slot}")?;
        }
        writeln!(
            f,
            "2. Diagnosis summary: recovery: {:.3}(s); validation: {:.3}(s)",
            self.recovery_s, self.validation_s
        )?;
        for line in &self.diagnosis_log {
            writeln!(f, "    | {line}")?;
        }
        writeln!(f, "3. Patch applied: {} patch(es)", self.patches.len())?;
        for (i, (patch, triggered)) in self.patches.iter().enumerate() {
            writeln!(
                f,
                "    Patch {}: {} on callsite for {} (triggered {} times)",
                i + 1,
                patch.change.label(),
                patch.bug,
                triggered
            )?;
            for name in &patch.site_names {
                writeln!(f, "        @{name}")?;
            }
        }
        writeln!(f, "4. Memory allocations/deallocations in buggy region:")?;
        writeln!(f, "    {:<40} | with patch", "without patch")?;
        for (l, r) in self.mm_diff.iter().take(16) {
            writeln!(f, "    {l:<40} | {r}")?;
        }
        if self.mm_diff.len() > 16 {
            writeln!(f, "    ... ({} more lines)", self.mm_diff.len() - 16)?;
        }
        writeln!(f, "5. Illegal access trace in buggy region:")?;
        for (idx, reads, writes, lines) in &self.illegal_summary {
            writeln!(
                f,
                "    patch {}: {} accesses ({} read, {} write):",
                idx + 1,
                reads + writes,
                reads,
                writes
            )?;
            for line in lines {
                writeln!(f, "        {line}")?;
            }
        }
        Ok(())
    }
}
