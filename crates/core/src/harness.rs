//! Re-execution harness — now hosted by the fa-exec trial substrate.
//!
//! The rollback/replay/scan loop that used to live here is the heart of
//! every trial-execution path (diagnosis waves, the degradation ladder,
//! fa-sentry's fast path, fa-fleet workers), so it moved down a layer
//! into the [`fa_exec`] crate where all of them share one implementation.
//! This module remains as the stable `core::harness` path for existing
//! callers.

pub use fa_exec::{expect_ext, try_ext, ReexecOptions, ReplayHarness, RunReport};
