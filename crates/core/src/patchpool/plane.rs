//! The lock-free read plane: RCU-style published pool snapshots.
//!
//! The pool's writer side (mutations, journaling, quarantine
//! bookkeeping) stays behind its mutex; this module is the *reader*
//! side. After every effective mutation the writer rebuilds the
//! affected program's [`PlaneEntry`] and publishes a new snapshot
//! directory with a single atomic pointer swap. Readers — one per
//! allocation on the supervised fast path — do one `Acquire` pointer
//! load, one hash lookup, and one `Arc` clone: no locks, no `PatchSet`
//! construction, no allocation.
//!
//! # Reclamation
//!
//! A hand-rolled arc-swap needs a grace period: a reader may hold a
//! directory pointer it just loaded while a writer swaps in the next
//! one. Instead of hazard pointers or epoch counters we *retire*
//! superseded directories into a keep-alive list owned by the plane,
//! freeing them only when the plane itself drops. That trades a little
//! memory for zero read-side bookkeeping, and is bounded in practice:
//! directories are published only on effective pool mutations (patch
//! publish / revoke / canary traffic), which are rare and finite —
//! the paper's model is a handful of patches per program per
//! deployment, not a mutation stream. A directory is a map of
//! `Arc` handles, not patch data, so each retired snapshot costs
//! O(programs) pointers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use fa_allocext::PatchSet;

/// One program's published view: its epoch, the fleet-wide patch set,
/// and per-worker canary overlays (base set + canary patches, merged
/// at publish time so scoped readers stay zero-cost too).
#[derive(Clone)]
pub(super) struct PlaneEntry {
    pub epoch: u64,
    pub set: Arc<PatchSet>,
    /// Worker id -> merged (fleet + canary) set, for workers with an
    /// in-flight canary. Empty for almost every publish.
    pub scoped: HashMap<u64, Arc<PatchSet>>,
}

/// A published snapshot directory: program name -> entry.
type Dir = HashMap<String, PlaneEntry>;

/// The atomic publication point between the pool's writer side and its
/// lock-free readers.
pub(super) struct ReadPlane {
    /// The current directory. Readers `Acquire`-load it; the writer
    /// (serialized by the pool mutex) publishes with a `Release` swap,
    /// so a reader that sees the new pointer sees the fully-built
    /// directory behind it.
    cur: AtomicPtr<Dir>,
    /// Superseded directories, kept alive until the plane drops so a
    /// concurrent reader's loaded pointer can never dangle. The `Box`
    /// is load-bearing despite the lint: a reader may still hold `&Dir`
    /// into the retired allocation, so it must stay at its address —
    /// `Vec<Dir>` would move it.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Dir>>>,
    /// Shared empty set handed to readers of unknown programs, so even
    /// the miss path allocates nothing.
    empty: Arc<PatchSet>,
}

impl ReadPlane {
    pub fn new() -> ReadPlane {
        ReadPlane {
            cur: AtomicPtr::new(Box::into_raw(Box::new(Dir::new()))),
            retired: Mutex::new(Vec::new()),
            empty: Arc::new(PatchSet::new()),
        }
    }

    /// The current directory.
    ///
    /// Safety of the borrow: `cur` only ever points at a directory that
    /// is either current or retired, and retired directories live until
    /// the plane drops; the returned borrow cannot outlive `&self`.
    fn dir(&self) -> &Dir {
        // Acquire pairs with the Release swap in `publish`: observing
        // the new pointer implies observing the directory it points at.
        unsafe { &*self.cur.load(Ordering::Acquire) }
    }

    /// Lock-free read of one program's published set, honoring a worker
    /// scope (canary overlay) when one is present for that worker.
    pub fn get(&self, program: &str, scope: Option<u64>) -> (Arc<PatchSet>, u64) {
        match self.dir().get(program) {
            Some(entry) => {
                let set = scope
                    .and_then(|w| entry.scoped.get(&w))
                    .unwrap_or(&entry.set);
                (Arc::clone(set), entry.epoch)
            }
            None => (Arc::clone(&self.empty), 0),
        }
    }

    /// Lock-free epoch read (0 for unknown programs).
    pub fn epoch(&self, program: &str) -> u64 {
        self.dir().get(program).map_or(0, |e| e.epoch)
    }

    /// Lock-free fleet-set length (canary overlays excluded: they are
    /// not fleet state yet).
    pub fn len(&self, program: &str) -> usize {
        self.dir().get(program).map_or(0, |e| e.set.len())
    }

    /// Publishes the next directory. Must be called with the pool's
    /// writer mutex held (publishes are serialized); `rebuild` edits a
    /// clone of the current directory, which then replaces it in one
    /// swap. Entries the rebuild does not touch keep their `Arc`s, so
    /// unchanged programs stay pointer-stable across foreign publishes.
    pub fn publish(&self, rebuild: impl FnOnce(&mut Dir)) {
        // Relaxed is enough here: only the lock-holding writer mutates
        // `cur`, so this load is ordered by the mutex, not the atomic.
        let old = self.cur.load(Ordering::Relaxed);
        let mut next = unsafe { (*old).clone() };
        rebuild(&mut next);
        let next = Box::into_raw(Box::new(next));
        // Release pairs with the Acquire in `dir()`.
        let prev = self.cur.swap(next, Ordering::Release);
        self.retired.lock().push(unsafe { Box::from_raw(prev) });
    }

    /// Superseded directories currently kept alive (test hook: bounded
    /// by the number of effective mutations, not by reads).
    #[cfg(test)]
    pub fn retired_count(&self) -> usize {
        self.retired.lock().len()
    }
}

impl Drop for ReadPlane {
    fn drop(&mut self) {
        // `&mut self`: no readers can exist anymore, so the current
        // directory and every retired one can finally be freed.
        let cur = *self.cur.get_mut();
        drop(unsafe { Box::from_raw(cur) });
    }
}

// The raw pointer is only dereferenced under the documented protocol;
// the plane is shared across worker threads exactly like an Arc.
unsafe impl Send for ReadPlane {}
unsafe impl Sync for ReadPlane {}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::{BugType, Patch};
    use fa_proc::{CallSite, SymbolTable};

    fn entry(epoch: u64, ids: &[u64]) -> PlaneEntry {
        let patches = ids.iter().map(|&id| {
            Patch::new(
                BugType::BufferOverflow,
                CallSite([id, 0, 0]),
                &SymbolTable::new(),
            )
        });
        PlaneEntry {
            epoch,
            set: Arc::new(PatchSet::from_patches(patches)),
            scoped: HashMap::new(),
        }
    }

    #[test]
    fn unknown_program_reads_the_shared_empty_set() {
        let plane = ReadPlane::new();
        let (a, epoch_a) = plane.get("apache", None);
        let (b, epoch_b) = plane.get("squid", Some(3));
        assert!(a.is_empty() && b.is_empty());
        assert_eq!((epoch_a, epoch_b), (0, 0));
        assert!(Arc::ptr_eq(&a, &b), "miss path allocates nothing");
    }

    #[test]
    fn foreign_publishes_keep_unrelated_programs_pointer_stable() {
        let plane = ReadPlane::new();
        plane.publish(|dir| {
            dir.insert("apache".into(), entry(1, &[1]));
        });
        let (before, _) = plane.get("apache", None);
        plane.publish(|dir| {
            dir.insert("squid".into(), entry(1, &[2]));
        });
        let (after, _) = plane.get("apache", None);
        assert!(Arc::ptr_eq(&before, &after));
        assert_eq!(plane.retired_count(), 2, "one retirement per publish");
    }

    #[test]
    fn scoped_reads_prefer_the_worker_overlay() {
        let plane = ReadPlane::new();
        let mut e = entry(2, &[1]);
        e.scoped.insert(
            7,
            Arc::new(PatchSet::from_patches([Patch::new(
                BugType::DanglingRead,
                CallSite([9, 0, 0]),
                &SymbolTable::new(),
            )])),
        );
        plane.publish(|dir| {
            dir.insert("mutt".into(), e);
        });
        assert_eq!(plane.get("mutt", None).0.len(), 1);
        assert_eq!(plane.get("mutt", Some(7)).0.len(), 1);
        assert!(plane
            .get("mutt", Some(7))
            .0
            .match_dealloc(CallSite([9, 0, 0]))
            .is_some());
        assert!(plane
            .get("mutt", Some(8))
            .0
            .match_dealloc(CallSite([9, 0, 0]))
            .is_none());
    }
}
