//! Epoch-stamped pool events: the fleet's "anything new?" fan-out.
//!
//! Before this queue existed, every fleet worker polled the pool's
//! global version atomic once per input and, on any movement, re-read
//! its program's patch set — even when the movement belonged to a
//! different program. The event log makes the fan-out precise: each
//! effective pool mutation appends one [`PoolEvent`] carrying the
//! program and its post-mutation epoch, and a subscriber decides from
//! the events alone whether *its* program moved.
//!
//! The quiet path stays one atomic load ([`PoolEvents::poll`] compares
//! `head` against the cursor and returns [`EventPoll::Quiet`] without
//! touching the ring lock). Only when the head moved does the
//! subscriber take the ring lock to drain its window. The ring is
//! bounded; a subscriber that fell more than a ring's worth behind
//! gets [`EventPoll::Lagged`] and must do one full refresh — the same
//! degradation the old version-polling protocol lived in permanently.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Events kept before the oldest is dropped and laggards must refresh.
const DEFAULT_CAPACITY: usize = 1024;

/// What kind of pool mutation an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolEventKind {
    /// New patches published fleet-wide.
    Publish,
    /// A call-site's patches revoked (tombstoned).
    Revoke,
    /// Patches removed at a site (validation failure).
    Remove,
    /// A canary admitted for one worker.
    CanaryAdmit,
    /// A canary validated and promoted fleet-wide.
    CanaryPromote,
    /// A sentry suppression recorded in the journal (no epoch bump;
    /// informational for fleet observers).
    Suppress,
    /// Journal recovery replayed state for this program.
    Recovered,
}

/// One pool mutation, as seen by subscribers.
#[derive(Clone, Debug)]
pub struct PoolEvent {
    /// Position in the event log (strictly increasing).
    pub seq: u64,
    /// The program whose pool state moved.
    pub program: String,
    /// The program's epoch after the mutation.
    pub epoch: u64,
    /// What happened.
    pub kind: PoolEventKind,
}

/// A subscriber's read position in the event log.
#[derive(Clone, Copy, Debug)]
pub struct EventCursor {
    /// Sequence number of the next event this cursor has not seen.
    next: u64,
}

/// Outcome of one [`PoolEvents::poll`].
#[derive(Debug)]
pub enum EventPoll {
    /// Nothing happened since the last poll (one atomic load).
    Quiet,
    /// The events since the last poll, oldest first.
    Events(Vec<PoolEvent>),
    /// The subscriber fell behind the ring: events were dropped, and it
    /// must treat every program as potentially moved (full refresh).
    Lagged,
}

/// The bounded, multi-subscriber pool event log.
///
/// Writers (the pool's mutators, already serialized by the pool mutex)
/// append under the ring lock and then advance `head` with a `Release`
/// store; the subscriber's `Acquire` load of `head` therefore also
/// observes the plane snapshot published just before the event — an
/// event can never be seen ahead of the state it announces.
pub struct PoolEvents {
    head: AtomicU64,
    ring: Mutex<VecDeque<PoolEvent>>,
    capacity: usize,
}

impl Default for PoolEvents {
    fn default() -> Self {
        PoolEvents::with_capacity(DEFAULT_CAPACITY)
    }
}

impl PoolEvents {
    /// An event log keeping at most `capacity` undrained events.
    pub fn with_capacity(capacity: usize) -> PoolEvents {
        PoolEvents {
            head: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// A cursor positioned at "now": it will see only events appended
    /// after this call.
    pub fn subscribe(&self) -> EventCursor {
        EventCursor {
            next: self.head.load(Ordering::Acquire),
        }
    }

    /// Total events ever appended.
    pub fn appended(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends one event. Called by the pool with its writer mutex
    /// held, after the matching plane publish.
    pub(super) fn emit(&self, program: &str, epoch: u64, kind: PoolEventKind) {
        let mut ring = self.ring.lock();
        // Only lock-holding writers advance head, so Relaxed suffices
        // for the read; the mutex orders writer against writer.
        let seq = self.head.load(Ordering::Relaxed);
        ring.push_back(PoolEvent {
            seq,
            program: program.to_owned(),
            epoch,
            kind,
        });
        while ring.len() > self.capacity {
            ring.pop_front();
        }
        // Release pairs with the Acquire in `poll`/`subscribe`.
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Drains everything the cursor has not seen. The quiet path is one
    /// atomic load and no lock.
    pub fn poll(&self, cursor: &mut EventCursor) -> EventPoll {
        let head = self.head.load(Ordering::Acquire);
        if head == cursor.next {
            return EventPoll::Quiet;
        }
        let ring = self.ring.lock();
        let oldest = ring.front().map_or(head, |e| e.seq);
        if cursor.next < oldest {
            cursor.next = head;
            return EventPoll::Lagged;
        }
        let events: Vec<PoolEvent> = ring
            .iter()
            .filter(|e| e.seq >= cursor.next)
            .cloned()
            .collect();
        cursor.next = head;
        EventPoll::Events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_until_something_happens_then_precise_events() {
        let log = PoolEvents::default();
        let mut cursor = log.subscribe();
        assert!(matches!(log.poll(&mut cursor), EventPoll::Quiet));

        log.emit("apache", 1, PoolEventKind::Publish);
        log.emit("squid", 1, PoolEventKind::Publish);
        log.emit("apache", 2, PoolEventKind::Revoke);

        let EventPoll::Events(events) = log.poll(&mut cursor) else {
            panic!("expected events");
        };
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[0].program, "apache");
        assert_eq!(events[2].kind, PoolEventKind::Revoke);
        assert_eq!(events[2].epoch, 2);
        assert!(matches!(log.poll(&mut cursor), EventPoll::Quiet));
    }

    #[test]
    fn a_subscriber_behind_the_ring_is_told_to_refresh() {
        let log = PoolEvents::with_capacity(4);
        let mut cursor = log.subscribe();
        for epoch in 1..=9 {
            log.emit("m4", epoch, PoolEventKind::Publish);
        }
        assert!(matches!(log.poll(&mut cursor), EventPoll::Lagged));
        // After the forced refresh the cursor is current again.
        assert!(matches!(log.poll(&mut cursor), EventPoll::Quiet));
        log.emit("m4", 10, PoolEventKind::Publish);
        let EventPoll::Events(events) = log.poll(&mut cursor) else {
            panic!("expected events");
        };
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn late_subscribers_skip_history() {
        let log = PoolEvents::default();
        log.emit("pine", 1, PoolEventKind::Publish);
        let mut cursor = log.subscribe();
        assert!(matches!(log.poll(&mut cursor), EventPoll::Quiet));
        assert_eq!(log.appended(), 1);
    }
}
