//! The central patch pool (paper §3, "Patch management").
//!
//! "Once the diagnostic engine generates a patch, the patch management
//! component stores it in a central patch pool based on the call-site
//! information. First-Aid maintains a patch pool for each program so that
//! the patches do not mix for different programs." Patches are persisted
//! per program executable so subsequent runs and *other processes of the
//! same program* start protected.
//!
//! The pool is split into two planes:
//!
//! * **Writer plane** (this module): every mutation — publish, revoke,
//!   canary traffic, journal replay — runs under one mutex, where the
//!   quarantine gate, tombstones and journaling live. Before releasing
//!   the mutex the writer rebuilds the affected program's snapshot and
//!   publishes it to the read plane with one atomic pointer swap.
//! * **Read plane** ([`plane`]): the allocation fast path. [`PatchPool::get`]
//!   is one `Acquire` pointer load, one hash lookup and one `Arc`
//!   clone — zero locks, zero `PatchSet` clones, and pointer-stable
//!   across same-epoch reads. The pre-RCU locked read survives as
//!   [`PatchPool::get_locked`], the benchmark baseline and stress-test
//!   oracle.
//!
//! For fleet operation the pool carries two change signals: the cheap
//! global [`PatchPool::version`] / per-program [`PatchPool::epoch`]
//! counters, and an epoch-stamped event log ([`PatchPool::events`])
//! that tells subscribers *which* program moved, so a worker refreshes
//! only on events for its own program instead of on any pool movement.
//!
//! Two crash-safety layers sit underneath:
//!
//! * **Journaling** ([`PatchPool::journaled`] / [`PatchPool::with_journal`]):
//!   every effective mutation is appended to an `fa-wal` journal before
//!   readers can observe it, and [`PatchPool::recover_from_journal`]
//!   replays the log (idempotently, via a sequence-number watermark) to
//!   the exact pre-crash epoch.
//! * **Flap quarantine** ([`QuarantinePolicy`]): a call-site revoked
//!   repeatedly across the fleet is quarantined; re-admission is paced
//!   by an exponentially growing denial window and, once quarantined,
//!   goes through a single-worker canary ([`PatchPool::for_worker`],
//!   [`PatchPool::confirm_canary`]) before any fleet-wide re-publish.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use fa_allocext::{Patch, PatchSet};
use fa_exec::Backoff;
use fa_faults::{FaultPlan, FaultStage};
use fa_proc::CallSite;
use fa_wal::{
    CanaryOp, DenyOp, PoolSnapshot, ProgramSnapshot, PublishOp, QuarantineEntry, RevokeOp, SiteOp,
    Wal, WalOp, WalRecord,
};

use crate::log;

mod events;
mod plane;

pub use events::{EventCursor, EventPoll, PoolEvent, PoolEventKind, PoolEvents};
use plane::{PlaneEntry, ReadPlane};

/// Persistence attempts before the pool gives up and goes in-memory.
const PERSIST_ATTEMPTS: u32 = 3;

/// Base virtual-time backoff between persistence retries (1 ms).
const PERSIST_RETRY_BASE_NS: u64 = 1_000_000;

/// When a call-site's patches may flap back in after revocation.
///
/// Disabled by default (a plain pool's tombstones are permanent, which
/// is what single-process deployments and the existing revocation tests
/// expect); the fleet supervisor enables it so one worker's flapping
/// patch cannot permanently disable a site fleet-wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Fleet-wide revocations after which the site is quarantined and
    /// re-admission must go through a single-worker canary.
    pub quarantine_after: u32,
    /// Cap on the exponential denial window (in refused re-admission
    /// attempts).
    pub max_window: u32,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            quarantine_after: 3,
            max_window: 64,
        }
    }
}

/// Flap bookkeeping for one revoked call-site.
#[derive(Clone, Debug, Default)]
struct SiteState {
    /// Fleet-wide revocations of this site.
    flaps: u32,
    /// Refused re-admission attempts before the next one is accepted.
    window: u32,
    /// Denials recorded in the current window.
    denials: u32,
    /// Quarantined: re-admission is canary-only.
    quarantined: bool,
    /// An in-flight canary: `(worker, candidate patches)`.
    canary: Option<(u64, Vec<Patch>)>,
}

impl SiteState {
    /// State for a site first seen through the re-admission gate (a
    /// tombstone that predates the policy): one denial before retry.
    fn tracked() -> SiteState {
        SiteState {
            window: 1,
            ..SiteState::default()
        }
    }
}

/// How one patch fares at the re-admission gate.
enum Gate {
    Publish,
    Deny(u32),
    Canary(u64),
    Refuse,
}

#[derive(Default)]
struct Pools {
    by_program: HashMap<String, Vec<Patch>>,
    epoch_by_program: HashMap<String, u64>,
    /// Call-sites whose patches the health monitor revoked as
    /// ineffective. Tombstones: `add` refuses to re-admit patches at
    /// these sites, so a revoked patch can never re-propagate through
    /// the fleet. Without a [`QuarantinePolicy`] they are permanent
    /// and in-memory only (a fresh deployment may retry).
    revoked_by_program: HashMap<String, HashSet<CallSite>>,
    /// Flap bookkeeping per revoked site, populated only when a
    /// quarantine policy is active (or replayed from a journal).
    quarantine_by_program: HashMap<String, HashMap<CallSite, SiteState>>,
    /// Replay watermark: highest journal sequence number applied, so
    /// recovery is idempotent (replay twice == replay once).
    last_seq: u64,
    /// The active quarantine policy, if any.
    policy: Option<QuarantinePolicy>,
}

impl Pools {
    fn bump_epoch(&mut self, program: &str) {
        *self.epoch_by_program.entry(program.to_owned()).or_insert(0) += 1;
    }
}

/// A shared, optionally persistent pool of runtime patches, keyed by
/// program name.
///
/// Clones share the same underlying pool, so multiple supervised processes
/// of the same program observe each other's patches immediately. A
/// worker-scoped clone ([`PatchPool::for_worker`]) additionally sees the
/// canary patches admitted for its worker.
#[derive(Clone)]
pub struct PatchPool {
    inner: Arc<Mutex<Pools>>,
    /// Lock-free read side: the published snapshot directory served to
    /// the allocation fast path. Rebuilt (for the affected program) and
    /// swapped under `inner`'s mutex on every effective mutation.
    plane: Arc<ReadPlane>,
    /// Epoch-stamped mutation events for fleet subscribers.
    events: Arc<PoolEvents>,
    /// Bumped on every effective `add`/`remove_site`/`revoke`, across
    /// all programs.
    version: Arc<AtomicU64>,
    /// Serializes persistence so concurrent writers cannot rename a stale
    /// snapshot over a newer one.
    io_lock: Arc<Mutex<()>>,
    dir: Option<PathBuf>,
    /// Fault plan consulted before each persistence write.
    faults: FaultPlan,
    /// Set once persistence has failed `PERSIST_ATTEMPTS` times in a
    /// row; from then on the pool operates in-memory only.
    degraded: Arc<AtomicBool>,
    /// Persistence I/O errors absorbed so far (injected or real).
    io_errors: Arc<AtomicU64>,
    /// Virtual time charged to persistence-retry backoff.
    io_backoff: Arc<AtomicU64>,
    /// The supervision journal, if this pool is crash-safe.
    journal: Option<Wal>,
    /// Worker scope of this clone: which canaries it sees.
    scope: Option<u64>,
}

impl PatchPool {
    /// Creates a pool that lives only in memory.
    pub fn in_memory() -> PatchPool {
        PatchPool {
            inner: Arc::new(Mutex::new(Pools::default())),
            plane: Arc::new(ReadPlane::new()),
            events: Arc::new(PoolEvents::default()),
            version: Arc::new(AtomicU64::new(0)),
            io_lock: Arc::new(Mutex::new(())),
            dir: None,
            faults: FaultPlan::none(),
            degraded: Arc::new(AtomicBool::new(false)),
            io_errors: Arc::new(AtomicU64::new(0)),
            io_backoff: Arc::new(AtomicU64::new(0)),
            journal: None,
            scope: None,
        }
    }

    /// Creates a pool persisted as one JSON file per program in `dir`,
    /// loading any existing patch files. Only an unusable directory is
    /// an error; unreadable or damaged individual files are logged and
    /// skipped so a half-broken pool directory never bricks a launch.
    pub fn persistent(dir: impl Into<PathBuf>) -> std::io::Result<PatchPool> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut pools = Pools::default();
        match std::fs::read_dir(&dir) {
            Ok(entries) => {
                for entry in entries {
                    let path = match entry {
                        Ok(e) => e.path(),
                        Err(e) => {
                            log::warn(format!("skipping unreadable entry in {dir:?}: {e}"));
                            continue;
                        }
                    };
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    let Some(program) = name.strip_suffix(".patches.json") else {
                        continue;
                    };
                    let data = match std::fs::read_to_string(&path) {
                        Ok(data) => data,
                        Err(e) => {
                            log::warn(format!("skipping unreadable patch file {path:?}: {e}"));
                            continue;
                        }
                    };
                    match serde_json::from_str::<Vec<Patch>>(&data) {
                        Ok(patches) => {
                            pools.by_program.insert(program.to_owned(), patches);
                        }
                        Err(e) => {
                            // A damaged pool file must not brick the runtime.
                            log::warn(format!("ignoring damaged patch file {path:?}: {e}"));
                        }
                    }
                }
            }
            Err(e) => {
                log::warn(format!(
                    "cannot list patch pool {dir:?}: {e}; starting empty"
                ));
            }
        }
        let pool = PatchPool {
            inner: Arc::new(Mutex::new(pools)),
            dir: Some(dir),
            ..PatchPool::in_memory()
        };
        // The loaded state predates the plane: publish it before any
        // reader can look.
        pool.republish_all(&pool.inner.lock());
        Ok(pool)
    }

    /// Creates a crash-safe pool journaled to `dir/pool.wal`, replaying
    /// any existing journal to the pre-crash state. The journal *is*
    /// the durable state (no per-program JSON files); auto-compaction
    /// keeps it bounded.
    pub fn journaled(dir: impl Into<PathBuf>) -> std::io::Result<PatchPool> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let wal = Wal::open(dir.join("pool.wal"))?;
        wal.set_compact_every(256);
        Ok(PatchPool::with_journal(wal))
    }

    /// Creates a pool journaled to an already-open [`Wal`], replaying
    /// whatever valid prefix the journal holds.
    pub fn with_journal(wal: Wal) -> PatchPool {
        let pool = PatchPool {
            journal: Some(wal),
            ..PatchPool::in_memory()
        };
        pool.recover_from_journal();
        pool
    }

    /// Subjects this pool's persistence writes to `faults`.
    pub fn with_faults(mut self, faults: FaultPlan) -> PatchPool {
        self.faults = faults;
        self
    }

    /// Enables the flap quarantine with `policy` (shared by all clones).
    pub fn enable_quarantine(&self, policy: QuarantinePolicy) {
        self.inner.lock().policy = Some(policy);
    }

    /// Builder form of [`PatchPool::enable_quarantine`].
    pub fn with_quarantine(self, policy: QuarantinePolicy) -> PatchPool {
        self.enable_quarantine(policy);
        self
    }

    /// A worker-scoped clone: shares all pool state, but `add` may admit
    /// canaries for this worker and `get` includes them.
    pub fn for_worker(&self, worker: u64) -> PatchPool {
        PatchPool {
            scope: Some(worker),
            ..self.clone()
        }
    }

    /// The worker scope of this clone, if any.
    pub fn scope(&self) -> Option<u64> {
        self.scope
    }

    /// The supervision journal, if this pool is crash-safe.
    pub fn journal(&self) -> Option<&Wal> {
        self.journal.as_ref()
    }

    /// Appends a non-pool supervision record (checkpoint registration,
    /// ladder descent, worker membership, ...) to the journal, if any,
    /// keeping the replay watermark in step.
    pub fn journal_append(&self, op: WalOp) {
        if self.journal.is_none() {
            return;
        }
        let mut pools = self.inner.lock();
        // Suppression syncs do not bump epochs (they are runtime
        // records, not pool state), but fleet observers still want to
        // see them flow past.
        let suppressed = match &op {
            WalOp::SentrySuppress(s) => Some(s.program.clone()),
            _ => None,
        };
        self.journal_ops(&mut pools, vec![op]);
        if let Some(program) = suppressed {
            let epoch = pools.epoch_by_program.get(&program).copied().unwrap_or(0);
            self.events.emit(&program, epoch, PoolEventKind::Suppress);
        }
    }

    /// Replays the journal into the pool. Records at or below the
    /// watermark are skipped, so calling this twice is the same as
    /// calling it once (and calling it on a live pool is a no-op).
    /// Returns the number of records newly applied.
    pub fn recover_from_journal(&self) -> usize {
        let Some(wal) = &self.journal else { return 0 };
        let records = wal.replay();
        let mut pools = self.inner.lock();
        let mut applied = 0usize;
        let mut bumps = 0u64;
        for record in &records {
            if Self::apply_record(&mut pools, record) {
                applied += 1;
                if record.op.bumps_epoch() || matches!(record.op, WalOp::Snapshot(_)) {
                    bumps += 1;
                }
            }
        }
        if applied > 0 {
            // Replay bypassed the per-mutation publishes: rebuild the
            // whole plane once and announce each recovered program.
            self.republish_all(&pools);
            let programs: Vec<(String, u64)> = pools
                .epoch_by_program
                .iter()
                .map(|(p, e)| (p.clone(), *e))
                .collect();
            for (program, epoch) in programs {
                self.events.emit(&program, epoch, PoolEventKind::Recovered);
            }
        }
        drop(pools);
        if bumps > 0 {
            self.version.fetch_add(bumps, Ordering::AcqRel);
        }
        applied
    }

    /// True once the pool gave up on persistence and went in-memory.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Persistence I/O errors absorbed so far.
    pub fn io_error_count(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Virtual time charged to persistence-retry backoff so far.
    pub fn io_backoff_ns(&self) -> u64 {
        self.io_backoff.load(Ordering::Relaxed)
    }

    fn set_for(&self, pools: &Pools, program: &str) -> PatchSet {
        let mut patches: Vec<Patch> = pools
            .by_program
            .get(program)
            .map(|list| list.to_vec())
            .unwrap_or_default();
        if let Some(worker) = self.scope {
            if let Some(sites) = pools.quarantine_by_program.get(program) {
                for st in sites.values() {
                    if let Some((w, canary)) = &st.canary {
                        if *w == worker {
                            patches.extend(canary.iter().cloned());
                        }
                    }
                }
            }
        }
        PatchSet::from_patches(patches)
    }

    /// Builds one program's publishable plane entry from the writer
    /// state: epoch, fleet set, and merged base+canary overlays for
    /// each worker with an in-flight canary (merged at publish time so
    /// scoped readers stay zero-cost).
    fn rebuild_entry(pools: &Pools, program: &str) -> PlaneEntry {
        let base: Vec<Patch> = pools.by_program.get(program).cloned().unwrap_or_default();
        let mut scoped: HashMap<u64, Arc<PatchSet>> = HashMap::new();
        if let Some(sites) = pools.quarantine_by_program.get(program) {
            let mut per_worker: HashMap<u64, Vec<Patch>> = HashMap::new();
            for st in sites.values() {
                if let Some((w, canary)) = &st.canary {
                    per_worker
                        .entry(*w)
                        .or_default()
                        .extend(canary.iter().cloned());
                }
            }
            for (worker, canaries) in per_worker {
                let mut merged = base.clone();
                merged.extend(canaries);
                scoped.insert(worker, Arc::new(PatchSet::from_patches(merged)));
            }
        }
        PlaneEntry {
            epoch: pools.epoch_by_program.get(program).copied().unwrap_or(0),
            set: Arc::new(PatchSet::from_patches(base)),
            scoped,
        }
    }

    /// Publishes `program`'s current state to the read plane. Called
    /// with the pool mutex held, after journaling and before the
    /// version bump, so journal order, publication order and version
    /// movement always agree.
    fn publish_program(&self, pools: &Pools, program: &str) {
        let entry = Self::rebuild_entry(pools, program);
        self.plane.publish(|dir| {
            dir.insert(program.to_owned(), entry);
        });
    }

    /// Rebuilds the whole plane from the writer state (initial load,
    /// journal replay). Called with the pool mutex held.
    fn republish_all(&self, pools: &Pools) {
        let mut programs: Vec<&String> = pools
            .by_program
            .keys()
            .chain(pools.epoch_by_program.keys())
            .chain(pools.revoked_by_program.keys())
            .chain(pools.quarantine_by_program.keys())
            .collect();
        programs.sort();
        programs.dedup();
        let mut entries: Vec<(String, PlaneEntry)> = programs
            .into_iter()
            .map(|p| (p.clone(), Self::rebuild_entry(pools, p)))
            .collect();
        self.plane.publish(|dir| {
            dir.clear();
            for (program, entry) in entries.drain(..) {
                dir.insert(program, entry);
            }
        });
    }

    /// Returns the published patch set for a program (shared empty set
    /// if none). A worker-scoped clone also sees its own canaries.
    ///
    /// This is the allocation fast path: one `Acquire` pointer load,
    /// one hash lookup, one `Arc` clone. No locks, no `PatchSet`
    /// construction — repeated same-epoch calls return the identical
    /// `Arc` (pointer-equal).
    pub fn get(&self, program: &str) -> Arc<PatchSet> {
        self.plane.get(program, self.scope).0
    }

    /// Returns the published patch set and its epoch in one atomic
    /// snapshot read, so a reader can never observe a set newer than
    /// its epoch. Lock-free, like [`PatchPool::get`].
    pub fn get_with_epoch(&self, program: &str) -> (Arc<PatchSet>, u64) {
        self.plane.get(program, self.scope)
    }

    /// The pre-RCU read path: take the pool mutex, build a fresh
    /// `PatchSet` from the writer-side state. Kept as the benchmark
    /// baseline (`fleet_scale` measures it against [`PatchPool::get`])
    /// and as the stress-test oracle the lock-free plane is checked
    /// against — the two must always agree.
    pub fn get_locked(&self, program: &str) -> PatchSet {
        let pools = self.inner.lock();
        self.set_for(&pools, program)
    }

    /// Locked read of the set and epoch in one mutex hold; oracle
    /// counterpart of [`PatchPool::get_with_epoch`].
    pub fn get_locked_with_epoch(&self, program: &str) -> (PatchSet, u64) {
        let pools = self.inner.lock();
        let set = self.set_for(&pools, program);
        let epoch = pools.epoch_by_program.get(program).copied().unwrap_or(0);
        (set, epoch)
    }

    /// The pool's event log: epoch-stamped mutation events for fleet
    /// subscribers ([`PoolEvents::subscribe`] / [`PoolEvents::poll`]).
    pub fn events(&self) -> &PoolEvents {
        &self.events
    }

    /// Returns the global mutation counter (any program).
    ///
    /// One `Acquire` atomic load — cheap enough to poll per input from
    /// every fleet worker. The load pairs with the writer's `AcqRel`
    /// `fetch_add`, which happens *after* the plane swap: a reader that
    /// observes a new version is guaranteed to find the matching (or a
    /// newer) snapshot already published on its next [`PatchPool::get`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Returns the per-program mutation counter (lock-free, from the
    /// published plane).
    pub fn epoch(&self, program: &str) -> u64 {
        self.plane.epoch(program)
    }

    /// Returns the number of patches stored for a program (canaries
    /// excluded — they are not fleet state yet). Lock-free.
    pub fn len(&self, program: &str) -> usize {
        self.plane.len(program)
    }

    /// Returns `true` if no patches are stored for the program.
    pub fn is_empty(&self, program: &str) -> bool {
        self.len(program) == 0
    }

    /// Adds patches for a program, skipping exact duplicates and
    /// patches at revoked call-sites (tombstoned by the health
    /// monitor), and persists. With a [`QuarantinePolicy`] active,
    /// revoked sites may be re-admitted after their denial window — or,
    /// once quarantined, as a canary visible only to this clone's
    /// worker. Returns how many patches were actually admitted
    /// (canaries included).
    pub fn add(&self, program: &str, patches: impl IntoIterator<Item = Patch>) -> usize {
        let mut pools = self.inner.lock();
        let mut ops: Vec<WalOp> = Vec::new();
        let mut published: Vec<Patch> = Vec::new();
        let mut bumps = 0u64;
        let mut canaried = 0usize;
        let mut skipped_revoked = 0usize;

        for p in patches {
            let revoked = pools
                .revoked_by_program
                .get(program)
                .is_some_and(|s| s.contains(&p.site));
            if !revoked {
                let list = pools.by_program.entry(program.to_owned()).or_default();
                if !list.contains(&p) && !published.contains(&p) {
                    published.push(p);
                }
                continue;
            }
            if pools.policy.is_none() {
                skipped_revoked += 1;
                continue;
            }
            let scope = self.scope;
            let gate = {
                let st = pools
                    .quarantine_by_program
                    .entry(program.to_owned())
                    .or_default()
                    .entry(p.site)
                    .or_insert_with(SiteState::tracked);
                if st.quarantined {
                    match scope {
                        // Fleet-wide publication of a quarantined site is
                        // always refused: re-admission goes via a canary.
                        None => Gate::Refuse,
                        Some(worker) => {
                            if st.canary.is_some() {
                                Gate::Refuse
                            } else if st.denials < st.window {
                                st.denials += 1;
                                Gate::Deny(st.denials)
                            } else {
                                st.denials = 0;
                                Gate::Canary(worker)
                            }
                        }
                    }
                } else if st.denials < st.window {
                    st.denials += 1;
                    Gate::Deny(st.denials)
                } else {
                    st.denials = 0;
                    Gate::Publish
                }
            };
            match gate {
                Gate::Refuse => skipped_revoked += 1,
                Gate::Deny(denials) => {
                    skipped_revoked += 1;
                    ops.push(WalOp::SiteDenied(DenyOp {
                        program: program.to_owned(),
                        site: p.site,
                        denials,
                    }));
                }
                Gate::Canary(worker) => {
                    let site = p.site;
                    let candidate = vec![p];
                    if let Some(st) = pools
                        .quarantine_by_program
                        .get_mut(program)
                        .and_then(|m| m.get_mut(&site))
                    {
                        st.canary = Some((worker, candidate.clone()));
                    }
                    canaried += candidate.len();
                    bumps += 1;
                    pools.bump_epoch(program);
                    log::warn(format!(
                        "patch pool for {program}: quarantined site re-admitted \
                         as a canary on worker {worker}"
                    ));
                    ops.push(WalOp::CanaryAdmit(CanaryOp {
                        program: program.to_owned(),
                        site,
                        worker,
                        patches: candidate,
                    }));
                }
                Gate::Publish => {
                    // The denial window was served: the site may try again
                    // fleet-wide. Clear the tombstone and admit normally.
                    if let Some(set) = pools.revoked_by_program.get_mut(program) {
                        set.remove(&p.site);
                    }
                    let list = pools.by_program.entry(program.to_owned()).or_default();
                    if !list.contains(&p) && !published.contains(&p) {
                        published.push(p);
                    }
                }
            }
        }

        if skipped_revoked > 0 {
            log::warn(format!(
                "patch pool for {program}: refused {skipped_revoked} patch(es) at revoked call-site(s)"
            ));
        }
        if !published.is_empty() {
            let list = pools.by_program.entry(program.to_owned()).or_default();
            list.extend(published.iter().cloned());
            bumps += 1;
            pools.bump_epoch(program);
            ops.push(WalOp::PatchPublish(PublishOp {
                program: program.to_owned(),
                patches: published.clone(),
            }));
        }
        let added = published.len() + canaried;
        self.journal_ops(&mut pools, ops);
        if bumps > 0 {
            // Journal, then plane, then events — all under the mutex —
            // then version: readers can never observe state the journal
            // does not yet hold, and an event is never visible before
            // the snapshot it announces.
            self.publish_program(&pools, program);
            let epoch = pools.epoch_by_program.get(program).copied().unwrap_or(0);
            if canaried > 0 {
                self.events.emit(program, epoch, PoolEventKind::CanaryAdmit);
            }
            if !published.is_empty() {
                self.events.emit(program, epoch, PoolEventKind::Publish);
            }
        }
        drop(pools);
        if bumps > 0 {
            self.version.fetch_add(bumps, Ordering::AcqRel);
            self.persist(program);
        }
        added
    }

    /// Revokes all patches at `site`: removes them from the pool and
    /// tombstones the site so `add` refuses to re-admit them (one
    /// worker's ineffective patch must not keep re-poisoning the
    /// fleet). Bumps the epoch so sibling workers uninstall the patch
    /// on their next refresh. With a [`QuarantinePolicy`] active, each
    /// revocation is a *flap*: the denial window doubles and, past the
    /// policy threshold, the site is quarantined (an in-flight canary
    /// is cancelled and counts as a failed trial). Returns `false` if
    /// the site was already revoked and held no patches.
    pub fn revoke(&self, program: &str, site: CallSite) -> bool {
        let mut pools = self.inner.lock();
        let newly_tombstoned = pools
            .revoked_by_program
            .entry(program.to_owned())
            .or_default()
            .insert(site);
        let removed = match pools.by_program.get_mut(program) {
            Some(list) => {
                let before = list.len();
                list.retain(|p| p.site != site);
                list.len() != before
            }
            None => false,
        };
        let canary_cancelled = pools.policy.is_some()
            && pools
                .quarantine_by_program
                .get_mut(program)
                .and_then(|m| m.get_mut(&site))
                .is_some_and(|st| st.canary.take().is_some());
        if !newly_tombstoned && !removed && !canary_cancelled {
            return false;
        }
        let mut ops: Vec<WalOp> = Vec::new();
        let mut flap = (0u32, 0u32, false);
        if let Some(policy) = pools.policy {
            if canary_cancelled {
                ops.push(WalOp::CanaryReject(SiteOp {
                    program: program.to_owned(),
                    site,
                }));
            }
            let st = pools
                .quarantine_by_program
                .entry(program.to_owned())
                .or_default()
                .entry(site)
                .or_insert_with(SiteState::tracked);
            st.flaps += 1;
            st.denials = 0;
            st.window = (1u32 << (st.flaps - 1).min(16)).min(policy.max_window.max(1));
            let was_quarantined = st.quarantined;
            st.quarantined = st.flaps >= policy.quarantine_after;
            flap = (st.flaps, st.window, st.quarantined);
            if st.quarantined && !was_quarantined {
                log::warn(format!(
                    "patch pool for {program}: site flapped {} times, quarantined \
                     (re-admission is canary-only)",
                    st.flaps
                ));
            }
        }
        ops.push(WalOp::PatchRevoke(RevokeOp {
            program: program.to_owned(),
            site,
            flaps: flap.0,
            window: flap.1,
            quarantined: flap.2,
        }));
        pools.bump_epoch(program);
        self.journal_ops(&mut pools, ops);
        self.publish_program(&pools, program);
        let epoch = pools.epoch_by_program.get(program).copied().unwrap_or(0);
        self.events.emit(program, epoch, PoolEventKind::Revoke);
        drop(pools);
        self.version.fetch_add(1, Ordering::AcqRel);
        self.persist(program);
        true
    }

    /// Promotes this worker's validated canaries for `program` to the
    /// fleet: the candidate patches are published, the tombstone and
    /// quarantine are lifted. Called by a fleet worker after a canary
    /// patch demonstrably neutralized the bug (a patch hit). Returns
    /// the number of patches promoted fleet-wide.
    pub fn confirm_canary(&self, program: &str) -> usize {
        let Some(worker) = self.scope else { return 0 };
        let mut pools = self.inner.lock();
        let sites: Vec<CallSite> = pools
            .quarantine_by_program
            .get(program)
            .map(|m| {
                m.iter()
                    .filter(|(_, st)| st.canary.as_ref().is_some_and(|(w, _)| *w == worker))
                    .map(|(site, _)| *site)
                    .collect()
            })
            .unwrap_or_default();
        if sites.is_empty() {
            return 0;
        }
        let mut ops: Vec<WalOp> = Vec::new();
        let mut bumps = 0u64;
        let mut promoted = 0usize;
        for site in sites {
            let Some((_, candidate)) = pools
                .quarantine_by_program
                .get_mut(program)
                .and_then(|m| m.get_mut(&site))
                .and_then(|st| {
                    st.quarantined = false;
                    st.denials = 0;
                    st.canary.take()
                })
            else {
                continue;
            };
            if let Some(set) = pools.revoked_by_program.get_mut(program) {
                set.remove(&site);
            }
            let list = pools.by_program.entry(program.to_owned()).or_default();
            for p in candidate {
                if !list.contains(&p) {
                    list.push(p);
                    promoted += 1;
                }
            }
            bumps += 1;
            pools.bump_epoch(program);
            log::warn(format!(
                "patch pool for {program}: canary on worker {worker} validated; \
                 patches promoted fleet-wide"
            ));
            ops.push(WalOp::CanaryPromote(SiteOp {
                program: program.to_owned(),
                site,
            }));
        }
        self.journal_ops(&mut pools, ops);
        if bumps > 0 {
            self.publish_program(&pools, program);
            let epoch = pools.epoch_by_program.get(program).copied().unwrap_or(0);
            self.events
                .emit(program, epoch, PoolEventKind::CanaryPromote);
        }
        drop(pools);
        if bumps > 0 {
            self.version.fetch_add(bumps, Ordering::AcqRel);
            self.persist(program);
        }
        promoted
    }

    /// Returns `true` if patches at `site` have been revoked.
    pub fn is_revoked(&self, program: &str, site: CallSite) -> bool {
        self.inner
            .lock()
            .revoked_by_program
            .get(program)
            .is_some_and(|s| s.contains(&site))
    }

    /// Number of revoked (tombstoned) call-sites for a program.
    pub fn revoked_count(&self, program: &str) -> usize {
        self.inner
            .lock()
            .revoked_by_program
            .get(program)
            .map_or(0, HashSet::len)
    }

    /// Returns `true` if `site` is quarantined (canary-only re-admission).
    pub fn is_quarantined(&self, program: &str, site: CallSite) -> bool {
        self.inner
            .lock()
            .quarantine_by_program
            .get(program)
            .and_then(|m| m.get(&site))
            .is_some_and(|st| st.quarantined)
    }

    /// Fleet-wide flap count of `site` (revocations under the policy).
    pub fn flap_count(&self, program: &str, site: CallSite) -> u32 {
        self.inner
            .lock()
            .quarantine_by_program
            .get(program)
            .and_then(|m| m.get(&site))
            .map_or(0, |st| st.flaps)
    }

    /// Returns `true` if a canary for `site` is in flight.
    pub fn has_canary(&self, program: &str, site: CallSite) -> bool {
        self.inner
            .lock()
            .quarantine_by_program
            .get(program)
            .and_then(|m| m.get(&site))
            .is_some_and(|st| st.canary.is_some())
    }

    /// Removes all patches at the given call-site (validation failure).
    pub fn remove_site(&self, program: &str, site: fa_proc::CallSite) {
        let mut pools = self.inner.lock();
        let Some(list) = pools.by_program.get_mut(program) else {
            return;
        };
        let before = list.len();
        list.retain(|p| p.site != site);
        if list.len() == before {
            return;
        }
        pools.bump_epoch(program);
        let ops = vec![WalOp::PatchRemove(SiteOp {
            program: program.to_owned(),
            site,
        })];
        self.journal_ops(&mut pools, ops);
        self.publish_program(&pools, program);
        let epoch = pools.epoch_by_program.get(program).copied().unwrap_or(0);
        self.events.emit(program, epoch, PoolEventKind::Remove);
        drop(pools);
        self.version.fetch_add(1, Ordering::AcqRel);
        self.persist(program);
    }

    /// Canonical JSON of one program's complete pool state (patches,
    /// tombstones, quarantine bookkeeping, epoch), with every unordered
    /// collection sorted — byte-identical across pools holding the same
    /// state, which is what the crash acceptance sweep compares.
    pub fn export_state(&self, program: &str) -> String {
        let pools = self.inner.lock();
        let snap = Self::program_snapshot(&pools, program);
        serde_json::to_string(&snap).expect("pool state always serializes")
    }

    fn program_snapshot(pools: &Pools, program: &str) -> ProgramSnapshot {
        let mut patches = pools.by_program.get(program).cloned().unwrap_or_default();
        patches.sort_by_key(|p| {
            (
                p.site,
                serde_json::to_string(p).expect("patches always serialize"),
            )
        });
        let mut revoked: Vec<CallSite> = pools
            .revoked_by_program
            .get(program)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        revoked.sort();
        let mut quarantine: Vec<QuarantineEntry> = pools
            .quarantine_by_program
            .get(program)
            .map(|m| {
                m.iter()
                    .map(|(site, st)| QuarantineEntry {
                        site: *site,
                        flaps: st.flaps,
                        window: st.window,
                        denials: st.denials,
                        quarantined: st.quarantined,
                        canary_worker: st.canary.as_ref().map(|(w, _)| *w),
                        canary_patches: st
                            .canary
                            .as_ref()
                            .map(|(_, ps)| ps.clone())
                            .unwrap_or_default(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        quarantine.sort_by_key(|e| e.site);
        ProgramSnapshot {
            program: program.to_owned(),
            epoch: pools.epoch_by_program.get(program).copied().unwrap_or(0),
            patches,
            revoked,
            quarantine,
        }
    }

    fn full_snapshot(pools: &Pools) -> PoolSnapshot {
        let mut programs: Vec<&String> = pools
            .by_program
            .keys()
            .chain(pools.epoch_by_program.keys())
            .chain(pools.revoked_by_program.keys())
            .chain(pools.quarantine_by_program.keys())
            .collect();
        programs.sort();
        programs.dedup();
        PoolSnapshot {
            programs: programs
                .into_iter()
                .map(|p| Self::program_snapshot(pools, p))
                .collect(),
        }
    }

    /// Appends the mutation records just produced (in mutation order,
    /// under the pool lock so journal order matches observation order),
    /// advancing the replay watermark, and compacts when due.
    fn journal_ops(&self, pools: &mut Pools, ops: Vec<WalOp>) {
        let Some(wal) = &self.journal else { return };
        for op in ops {
            if let Some(seq) = wal.append(op) {
                pools.last_seq = seq;
            }
        }
        if wal.needs_compaction() {
            let snapshot = Self::full_snapshot(pools);
            if let Some(seq) = wal.compact(snapshot) {
                pools.last_seq = seq;
            }
        }
    }

    /// Applies one journal record to the pool state; `false` if it was
    /// at or below the watermark (already applied). Quarantine records
    /// carry their resulting counters, so replay needs no policy.
    fn apply_record(pools: &mut Pools, record: &WalRecord) -> bool {
        if record.seq <= pools.last_seq {
            return false;
        }
        pools.last_seq = record.seq;
        match &record.op {
            WalOp::PatchPublish(op) => {
                // A publish implies every carried site was admissible:
                // clear any tombstone (re-admission) and its denials.
                for p in &op.patches {
                    if let Some(set) = pools.revoked_by_program.get_mut(&op.program) {
                        set.remove(&p.site);
                    }
                    if let Some(st) = pools
                        .quarantine_by_program
                        .get_mut(&op.program)
                        .and_then(|m| m.get_mut(&p.site))
                    {
                        st.denials = 0;
                    }
                }
                let list = pools.by_program.entry(op.program.clone()).or_default();
                for p in &op.patches {
                    if !list.contains(p) {
                        list.push(p.clone());
                    }
                }
                pools.bump_epoch(&op.program);
            }
            WalOp::PatchRevoke(op) => {
                pools
                    .revoked_by_program
                    .entry(op.program.clone())
                    .or_default()
                    .insert(op.site);
                if let Some(list) = pools.by_program.get_mut(&op.program) {
                    list.retain(|p| p.site != op.site);
                }
                if op.flaps > 0 {
                    let st = pools
                        .quarantine_by_program
                        .entry(op.program.clone())
                        .or_default()
                        .entry(op.site)
                        .or_insert_with(SiteState::tracked);
                    st.flaps = op.flaps;
                    st.window = op.window;
                    st.denials = 0;
                    st.quarantined = op.quarantined;
                }
                pools.bump_epoch(&op.program);
            }
            WalOp::PatchRemove(op) => {
                if let Some(list) = pools.by_program.get_mut(&op.program) {
                    list.retain(|p| p.site != op.site);
                }
                pools.bump_epoch(&op.program);
            }
            WalOp::SiteDenied(op) => {
                let st = pools
                    .quarantine_by_program
                    .entry(op.program.clone())
                    .or_default()
                    .entry(op.site)
                    .or_insert_with(SiteState::tracked);
                st.denials = op.denials;
            }
            WalOp::CanaryAdmit(op) => {
                let st = pools
                    .quarantine_by_program
                    .entry(op.program.clone())
                    .or_default()
                    .entry(op.site)
                    .or_insert_with(SiteState::tracked);
                st.canary = Some((op.worker, op.patches.clone()));
                st.denials = 0;
                pools.bump_epoch(&op.program);
            }
            WalOp::CanaryPromote(op) => {
                let candidate = pools
                    .quarantine_by_program
                    .get_mut(&op.program)
                    .and_then(|m| m.get_mut(&op.site))
                    .and_then(|st| {
                        st.quarantined = false;
                        st.denials = 0;
                        st.canary.take()
                    });
                if let Some(set) = pools.revoked_by_program.get_mut(&op.program) {
                    set.remove(&op.site);
                }
                if let Some((_, patches)) = candidate {
                    let list = pools.by_program.entry(op.program.clone()).or_default();
                    for p in patches {
                        if !list.contains(&p) {
                            list.push(p);
                        }
                    }
                }
                pools.bump_epoch(&op.program);
            }
            WalOp::CanaryReject(op) => {
                if let Some(st) = pools
                    .quarantine_by_program
                    .get_mut(&op.program)
                    .and_then(|m| m.get_mut(&op.site))
                {
                    st.canary = None;
                }
            }
            WalOp::Snapshot(snap) => {
                pools.by_program.clear();
                pools.epoch_by_program.clear();
                pools.revoked_by_program.clear();
                pools.quarantine_by_program.clear();
                for prog in &snap.programs {
                    pools
                        .by_program
                        .insert(prog.program.clone(), prog.patches.clone());
                    pools
                        .epoch_by_program
                        .insert(prog.program.clone(), prog.epoch);
                    pools
                        .revoked_by_program
                        .insert(prog.program.clone(), prog.revoked.iter().copied().collect());
                    let sites: HashMap<CallSite, SiteState> = prog
                        .quarantine
                        .iter()
                        .map(|e| {
                            (
                                e.site,
                                SiteState {
                                    flaps: e.flaps,
                                    window: e.window,
                                    denials: e.denials,
                                    quarantined: e.quarantined,
                                    canary: e.canary_worker.map(|w| (w, e.canary_patches.clone())),
                                },
                            )
                        })
                        .collect();
                    if !sites.is_empty() {
                        pools
                            .quarantine_by_program
                            .insert(prog.program.clone(), sites);
                    }
                }
            }
            // Runtime/fleet records: not pool state, only the watermark
            // advances (so replay order stays strict).
            WalOp::CheckpointRegister(_)
            | WalOp::CheckpointPrune(_)
            | WalOp::SentrySuppress(_)
            | WalOp::LadderDescend(_)
            | WalOp::WorkerJoin(_)
            | WalOp::WorkerLeave(_) => {}
        }
        true
    }

    /// Persists atomically through [`fa_wal::write_atomic`] (write a
    /// temp file, fsync, rename), so a crash mid-write can never leave
    /// a torn `*.patches.json` for the loader to discard.
    ///
    /// Takes the pool's IO lock and re-reads the current patch list under
    /// it, so the file on disk always ends at the newest state even when
    /// several workers persist concurrently.
    ///
    /// I/O errors (injected via the fault plan or real) are retried up
    /// to [`PERSIST_ATTEMPTS`] times on the shared [`Backoff`] policy;
    /// after that the pool flips to degraded in-memory operation —
    /// patches keep working for this deployment, they just will not
    /// survive it.
    fn persist(&self, program: &str) {
        let Some(dir) = &self.dir else { return };
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let _io = self.io_lock.lock();
        let snapshot = self
            .inner
            .lock()
            .by_program
            .get(program)
            .cloned()
            .unwrap_or_default();
        let path = dir.join(format!("{program}.patches.json"));
        let json = match serde_json::to_string_pretty(&snapshot) {
            Ok(json) => json,
            Err(e) => {
                log::warn(format!("failed to serialize patches: {e}"));
                return;
            }
        };
        let mut backoff = Backoff::new(PERSIST_RETRY_BASE_NS, PERSIST_RETRY_BASE_NS << 8);
        for attempt in 1..=PERSIST_ATTEMPTS {
            let outcome = if self.faults.should_fail(FaultStage::PoolPersistIo) {
                Err(std::io::Error::other("injected pool persistence fault"))
            } else {
                fa_wal::write_atomic(&path, json.as_bytes())
            };
            match outcome {
                Ok(()) => return,
                Err(e) => {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.io_backoff
                        .fetch_add(backoff.next_delay_ns(), Ordering::Relaxed);
                    log::warn(format!(
                        "patch persistence for {program} failed \
                         (attempt {attempt}/{PERSIST_ATTEMPTS}): {e}"
                    ));
                }
            }
        }
        self.degraded.store(true, Ordering::Relaxed);
        log::warn(format!(
            "patch persistence for {program} failed {PERSIST_ATTEMPTS} times; \
             continuing in-memory (degraded)"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::BugType;
    use fa_proc::{CallSite, SymbolTable};

    fn patch(bug: BugType, id: u64) -> Patch {
        Patch::new(bug, CallSite([id, 0, 0]), &SymbolTable::new())
    }

    #[test]
    fn per_program_isolation() {
        let pool = PatchPool::in_memory();
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        pool.add("squid", [patch(BugType::BufferOverflow, 2)]);
        assert_eq!(pool.len("apache"), 1);
        assert_eq!(pool.len("squid"), 1);
        assert!(pool
            .get("apache")
            .match_dealloc(CallSite([1, 0, 0]))
            .is_some());
        assert!(pool
            .get("apache")
            .match_alloc(CallSite([2, 0, 0]))
            .is_none());
    }

    #[test]
    fn duplicates_skipped() {
        let pool = PatchPool::in_memory();
        pool.add("m4", [patch(BugType::DanglingRead, 1)]);
        pool.add("m4", [patch(BugType::DanglingRead, 1)]);
        assert_eq!(pool.len("m4"), 1);
    }

    #[test]
    fn clones_share_state() {
        let pool = PatchPool::in_memory();
        let other = pool.clone();
        pool.add("cvs", [patch(BugType::DoubleFree, 3)]);
        assert_eq!(other.len("cvs"), 1, "other process sees the patch");
    }

    #[test]
    fn remove_site_deletes() {
        let pool = PatchPool::in_memory();
        pool.add(
            "bc",
            [
                patch(BugType::BufferOverflow, 1),
                patch(BugType::BufferOverflow, 2),
            ],
        );
        pool.remove_site("bc", CallSite([1, 0, 0]));
        assert_eq!(pool.len("bc"), 1);
    }

    #[test]
    fn version_and_epoch_track_effective_mutations() {
        let pool = PatchPool::in_memory();
        assert_eq!(pool.version(), 0);
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        assert_eq!(pool.version(), 1);
        assert_eq!(pool.epoch("apache"), 1);
        assert_eq!(pool.epoch("squid"), 0, "other programs unaffected");

        // A duplicate add is not a mutation: no spurious re-reads.
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        assert_eq!(pool.version(), 1);
        assert_eq!(pool.epoch("apache"), 1);

        // Removing a missing site is not a mutation either.
        pool.remove_site("apache", CallSite([99, 0, 0]));
        assert_eq!(pool.version(), 1);

        pool.remove_site("apache", CallSite([1, 0, 0]));
        assert_eq!(pool.version(), 2);
        assert_eq!(pool.epoch("apache"), 2);

        let (set, epoch) = pool.get_with_epoch("apache");
        assert!(set.is_empty());
        assert_eq!(epoch, 2);
    }

    #[test]
    fn concurrent_adds_and_gets_lose_nothing() {
        // Seeds the fleet's sharing guarantee: many threads add distinct
        // patches for one program while readers snapshot continuously;
        // every patch must survive and every snapshot must be internally
        // consistent (alloc/dealloc indexes agree with its patch list).
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 25;
        let pool = PatchPool::in_memory();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for k in 0..PER_WRITER {
                        let id = 1 + w * PER_WRITER + k;
                        let bug = if id.is_multiple_of(2) {
                            BugType::BufferOverflow
                        } else {
                            BugType::DanglingRead
                        };
                        pool.add("apache", [patch(bug, id)]);
                        // Duplicate adds from racing diagnoses must stay
                        // idempotent under contention too.
                        pool.add("apache", [patch(bug, id)]);
                    }
                })
            })
            .collect();

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let mut last_len = 0;
                    let mut last_epoch = 0;
                    while last_len < (WRITERS * PER_WRITER) as usize {
                        let (set, epoch) = pool.get_with_epoch("apache");
                        // Sizes and epochs only grow (no lost updates).
                        assert!(set.len() >= last_len, "snapshot shrank");
                        assert!(epoch >= last_epoch, "epoch went backwards");
                        // Internal consistency: every patch in the
                        // snapshot is findable through its index.
                        for p in set.patches() {
                            let hit = if p.at_allocation() {
                                set.match_alloc(p.site)
                            } else {
                                set.match_dealloc(p.site)
                            };
                            assert!(hit.is_some(), "snapshot lost its own patch");
                        }
                        last_len = set.len();
                        last_epoch = epoch;
                    }
                })
            })
            .collect();

        for t in writers {
            t.join().unwrap();
        }
        for t in readers {
            t.join().unwrap();
        }

        assert_eq!(pool.len("apache"), (WRITERS * PER_WRITER) as usize);
        assert_eq!(pool.epoch("apache"), WRITERS * PER_WRITER);
        assert_eq!(pool.version(), WRITERS * PER_WRITER);
    }

    #[test]
    fn revoked_sites_tombstone_and_block_readdition() {
        let pool = PatchPool::in_memory();
        assert_eq!(pool.add("apache", [patch(BugType::DanglingRead, 1)]), 1);
        assert!(!pool.is_revoked("apache", CallSite([1, 0, 0])));

        assert!(pool.revoke("apache", CallSite([1, 0, 0])));
        assert_eq!(pool.len("apache"), 0);
        assert!(pool.is_revoked("apache", CallSite([1, 0, 0])));
        assert_eq!(pool.revoked_count("apache"), 1);
        let epoch_after_revoke = pool.epoch("apache");

        // Re-adding the same patch is refused with a warning.
        let (added, lines) =
            log::captured(|| pool.add("apache", [patch(BugType::DanglingRead, 1)]));
        assert_eq!(added, 0);
        assert_eq!(pool.len("apache"), 0);
        assert!(
            lines.iter().any(|l| l.contains("revoked")),
            "refusal is logged: {lines:?}"
        );
        assert_eq!(
            pool.epoch("apache"),
            epoch_after_revoke,
            "a refused add is not a mutation"
        );

        // Revoking again is a no-op; other sites are unaffected.
        assert!(!pool.revoke("apache", CallSite([1, 0, 0])));
        assert_eq!(pool.add("apache", [patch(BugType::DanglingRead, 2)]), 1);
        assert!(!pool.is_revoked("squid", CallSite([1, 0, 0])));
    }

    #[test]
    fn revoke_and_rediagnosis_land_within_one_reader_refresh() {
        // The race the epoch protocol must survive: a worker's patch for
        // a bug signature is revoked as ineffective, and — before any
        // sibling refreshes — another worker re-diagnoses the *same*
        // signature, offering both its stale copy of the revoked patch
        // and a fresh patch at the true call-site. A reader's next
        // refresh must see the tombstone and the replacement at once;
        // the refused stale copy must not count as a mutation.
        let pool = PatchPool::in_memory();
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);

        // One reader refresh window starts here.
        let (set0, epoch0) = pool.get_with_epoch("apache");
        assert_eq!(set0.patches().len(), 1);

        assert!(pool.revoke("apache", CallSite([1, 0, 0])));
        let version_after_revoke = pool.version();
        assert_eq!(pool.epoch("apache"), epoch0 + 1);

        let (added, lines) = log::captured(|| {
            pool.add(
                "apache",
                [
                    patch(BugType::DanglingRead, 1), // stale copy of the revoked patch
                    patch(BugType::DanglingRead, 7), // fresh patch, same signature
                ],
            )
        });
        assert_eq!(added, 1, "only the fresh call-site is admitted");
        assert!(
            lines.iter().any(|l| l.contains("revoked")),
            "the refused stale copy is logged: {lines:?}"
        );
        assert_eq!(
            pool.version(),
            version_after_revoke + 1,
            "one bump for the fresh patch; the refused copy is no mutation"
        );

        // The reader's next refresh observes both effects atomically:
        // exactly two epoch steps (revoke, fresh add), the revoked site
        // gone, the replacement present.
        let (set1, epoch1) = pool.get_with_epoch("apache");
        assert_eq!(epoch1, epoch0 + 2);
        assert!(
            !set1.patches().iter().any(|p| p.site == CallSite([1, 0, 0])),
            "revoked site must be absent after refresh"
        );
        assert!(
            set1.patches().iter().any(|p| p.site == CallSite([7, 0, 0])),
            "replacement patch for the same signature must be visible"
        );
        assert!(pool.is_revoked("apache", CallSite([1, 0, 0])));
    }

    #[test]
    fn pool_io_failures_retry_then_degrade_in_memory() {
        use fa_faults::{FaultPlan, FaultStage, Injection};

        let dir = std::env::temp_dir().join(format!("fa-pool-io-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::builder(9)
            .inject(FaultStage::PoolPersistIo, Injection::EveryNth(1))
            .build();
        let pool = PatchPool::persistent(&dir).unwrap().with_faults(plan);

        let (_, lines) = log::captured(|| pool.add("squid", [patch(BugType::BufferOverflow, 1)]));
        assert_eq!(pool.io_error_count(), 3, "three attempts, three errors");
        assert!(pool.is_degraded());
        assert!(pool.io_backoff_ns() > 0, "retries charged virtual backoff");
        assert!(
            lines.iter().any(|l| l.contains("continuing in-memory")),
            "degradation is logged: {lines:?}"
        );

        // The pool still works — in memory.
        assert_eq!(pool.len("squid"), 1);
        pool.add("squid", [patch(BugType::BufferOverflow, 2)]);
        assert_eq!(pool.len("squid"), 2);
        assert_eq!(
            pool.io_error_count(),
            3,
            "a degraded pool stops attempting I/O"
        );
        assert!(
            !dir.join("squid.patches.json").exists(),
            "nothing reached disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fa-pool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let pool = PatchPool::persistent(&dir).unwrap();
            pool.add("pine", [patch(BugType::BufferOverflow, 7)]);
        }
        {
            // A fresh pool (a later run of the program) sees the patch.
            let pool = PatchPool::persistent(&dir).unwrap();
            assert_eq!(pool.len("pine"), 1);
            assert!(pool.get("pine").match_alloc(CallSite([7, 0, 0])).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("fa-pool-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pool = PatchPool::persistent(&dir).unwrap();
        for id in 1..=20 {
            pool.add("mutt", [patch(BugType::BufferOverflow, id)]);
        }
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["mutt.patches.json".to_string()], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_pool_file_is_ignored_with_a_warning() {
        let dir = std::env::temp_dir().join(format!("fa-pool-dmg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("mutt.patches.json"), b"{not json").unwrap();
        let (pool, lines) = log::captured(|| PatchPool::persistent(&dir).unwrap());
        assert_eq!(pool.len("mutt"), 0);
        assert!(
            lines.iter().any(|l| l.contains("damaged patch file")),
            "warning goes through the log facility: {lines:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn journal_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fa-pool-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journaled_pool_recovers_to_the_exact_pre_crash_state() {
        let dir = journal_dir("wal-roundtrip");
        let pool = PatchPool::journaled(&dir).unwrap();
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        pool.add("apache", [patch(BugType::BufferOverflow, 2)]);
        pool.revoke("apache", CallSite([1, 0, 0]));
        pool.add("squid", [patch(BugType::UninitRead, 3)]);
        let live = pool.export_state("apache");
        let live_squid = pool.export_state("squid");

        // A fresh pool over the same journal (a restarted supervisor)
        // lands on byte-identical state, epochs included.
        let recovered = PatchPool::journaled(&dir).unwrap();
        assert_eq!(recovered.export_state("apache"), live);
        assert_eq!(recovered.export_state("squid"), live_squid);
        assert_eq!(recovered.epoch("apache"), pool.epoch("apache"));
        assert!(recovered.is_revoked("apache", CallSite([1, 0, 0])));

        // Replay is idempotent: a second recovery applies nothing.
        assert_eq!(recovered.recover_from_journal(), 0, "replay twice == once");
        assert_eq!(recovered.export_state("apache"), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_compaction_preserves_recovered_state() {
        let dir = journal_dir("wal-compact");
        let pool = PatchPool::journaled(&dir).unwrap();
        pool.journal().unwrap().set_compact_every(4);
        for id in 1..=9 {
            pool.add("mutt", [patch(BugType::BufferOverflow, id)]);
        }
        pool.revoke("mutt", CallSite([3, 0, 0]));
        let live = pool.export_state("mutt");
        let recovered = PatchPool::journaled(&dir).unwrap();
        assert_eq!(recovered.export_state("mutt"), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flapping_site_is_quarantined_after_the_policy_threshold() {
        let pool = PatchPool::in_memory().with_quarantine(QuarantinePolicy::default());
        let site = CallSite([1, 0, 0]);

        // Flap 1: revoke; window 1 -> one denial, then re-admission.
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        assert!(pool.revoke("apache", site));
        assert_eq!(pool.flap_count("apache", site), 1);
        assert_eq!(pool.add("apache", [patch(BugType::DanglingRead, 1)]), 0);
        assert_eq!(
            pool.add("apache", [patch(BugType::DanglingRead, 1)]),
            1,
            "window served: the site is re-admitted"
        );
        assert!(!pool.is_revoked("apache", site), "tombstone lifted");

        // Flap 2: window 2 -> two denials before re-admission.
        assert!(pool.revoke("apache", site));
        assert_eq!(pool.flap_count("apache", site), 2);
        for _ in 0..2 {
            assert_eq!(pool.add("apache", [patch(BugType::DanglingRead, 1)]), 0);
        }
        assert_eq!(pool.add("apache", [patch(BugType::DanglingRead, 1)]), 1);

        // Flap 3: quarantined. Unscoped adds are refused forever.
        assert!(pool.revoke("apache", site));
        assert!(pool.is_quarantined("apache", site));
        for _ in 0..16 {
            assert_eq!(
                pool.add("apache", [patch(BugType::DanglingRead, 1)]),
                0,
                "fleet-wide re-publication of a quarantined site is refused"
            );
        }
        assert!(pool.is_revoked("apache", site));
    }

    #[test]
    fn quarantined_site_readmits_via_a_single_worker_canary() {
        let pool = PatchPool::in_memory().with_quarantine(QuarantinePolicy {
            quarantine_after: 1,
            max_window: 64,
        });
        let site = CallSite([1, 0, 0]);
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        assert!(pool.revoke("apache", site));
        assert!(pool.is_quarantined("apache", site));

        let worker0 = pool.for_worker(0);
        let worker1 = pool.for_worker(1);

        // Window 1: the first scoped attempt is denied, the second is
        // admitted — as a canary visible only to worker 0.
        assert_eq!(worker0.add("apache", [patch(BugType::DanglingRead, 1)]), 0);
        assert_eq!(worker0.add("apache", [patch(BugType::DanglingRead, 1)]), 1);
        assert!(pool.has_canary("apache", site));
        assert_eq!(
            worker0.get("apache").len(),
            1,
            "canary visible to its worker"
        );
        assert_eq!(worker1.get("apache").len(), 0, "invisible to siblings");
        assert_eq!(pool.get("apache").len(), 0, "and to the unscoped pool");
        assert_eq!(pool.len("apache"), 0, "not fleet state yet");

        // While the canary flies, nobody else may start another.
        assert_eq!(worker1.add("apache", [patch(BugType::DanglingRead, 1)]), 0);

        // The canary validates (a patch hit on worker 0): promote.
        assert_eq!(worker0.confirm_canary("apache"), 1);
        assert!(!pool.is_quarantined("apache", site));
        assert!(!pool.is_revoked("apache", site));
        assert_eq!(worker1.get("apache").len(), 1, "promoted fleet-wide");
        assert_eq!(pool.len("apache"), 1);
    }

    #[test]
    fn a_failed_canary_doubles_the_window_and_stays_quarantined() {
        let pool = PatchPool::in_memory().with_quarantine(QuarantinePolicy {
            quarantine_after: 1,
            max_window: 64,
        });
        let site = CallSite([1, 0, 0]);
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        assert!(pool.revoke("apache", site)); // flap 1: quarantined, window 1

        let worker0 = pool.for_worker(0);
        assert_eq!(worker0.add("apache", [patch(BugType::DanglingRead, 1)]), 0);
        assert_eq!(worker0.add("apache", [patch(BugType::DanglingRead, 1)]), 1);
        assert!(pool.has_canary("apache", site));

        // The canary fails: the site is revoked again on worker 0.
        assert!(pool.revoke("apache", site)); // flap 2: window 2
        assert!(!pool.has_canary("apache", site), "failed canary cancelled");
        assert!(pool.is_quarantined("apache", site));
        assert_eq!(pool.flap_count("apache", site), 2);
        assert_eq!(worker0.get("apache").len(), 0, "canary uninstalled");

        // The next canary needs a doubled (2-deny) window.
        assert_eq!(worker0.add("apache", [patch(BugType::DanglingRead, 1)]), 0);
        assert_eq!(worker0.add("apache", [patch(BugType::DanglingRead, 1)]), 0);
        assert_eq!(worker0.add("apache", [patch(BugType::DanglingRead, 1)]), 1);
        assert!(pool.has_canary("apache", site));
    }

    #[test]
    fn quarantine_state_survives_crash_recovery() {
        let dir = journal_dir("wal-quarantine");
        let site = CallSite([1, 0, 0]);
        let live = {
            let pool = PatchPool::journaled(&dir)
                .unwrap()
                .with_quarantine(QuarantinePolicy {
                    quarantine_after: 1,
                    max_window: 64,
                });
            pool.add("apache", [patch(BugType::DanglingRead, 1)]);
            pool.revoke("apache", site);
            let worker0 = pool.for_worker(0);
            worker0.add("apache", [patch(BugType::DanglingRead, 1)]); // denied
            worker0.add("apache", [patch(BugType::DanglingRead, 1)]); // canary
            assert!(pool.has_canary("apache", site));
            pool.export_state("apache")
        };
        // Recovery restores the quarantine bookkeeping and the in-flight
        // canary byte-for-byte — even without the policy re-enabled.
        let recovered = PatchPool::journaled(&dir).unwrap();
        assert_eq!(recovered.export_state("apache"), live);
        assert!(recovered.is_quarantined("apache", site));
        assert!(recovered.has_canary("apache", site));
        assert_eq!(recovered.flap_count("apache", site), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_epoch_gets_are_pointer_equal_and_allocation_free() {
        // The hot-path churn regression: before the RCU plane, every
        // `get` cloned the full `PatchSet` under the pool mutex. Now a
        // repeated same-epoch query must hand back the *identical* Arc
        // — pointer equality is the proof that no set was rebuilt and
        // nothing was allocated on the read path.
        let pool = PatchPool::in_memory();
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);

        let a = pool.get("apache");
        let b = pool.get("apache");
        assert!(Arc::ptr_eq(&a, &b), "same epoch, same snapshot Arc");
        let (c, e1) = pool.get_with_epoch("apache");
        assert!(Arc::ptr_eq(&a, &c));

        // Misses share one static empty set: even unknown programs
        // allocate nothing.
        assert!(Arc::ptr_eq(&pool.get("nope"), &pool.get("also-nope")));

        // A mutation of a *different* program leaves this one's Arc
        // untouched; a mutation of the same program replaces it.
        pool.add("squid", [patch(BugType::BufferOverflow, 2)]);
        assert!(Arc::ptr_eq(&a, &pool.get("apache")));
        pool.add("apache", [patch(BugType::BufferOverflow, 3)]);
        let (d, e2) = pool.get_with_epoch("apache");
        assert!(!Arc::ptr_eq(&a, &d), "new epoch, new snapshot");
        assert_eq!(e2, e1 + 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lock_free_reads_agree_with_the_locked_oracle() {
        let pool = PatchPool::in_memory().with_quarantine(QuarantinePolicy {
            quarantine_after: 1,
            max_window: 64,
        });
        pool.add("apache", [patch(BugType::DanglingRead, 1)]);
        pool.add("apache", [patch(BugType::BufferOverflow, 2)]);
        pool.revoke("apache", CallSite([1, 0, 0]));
        let worker0 = pool.for_worker(0);
        worker0.add("apache", [patch(BugType::DanglingRead, 1)]); // denied
        worker0.add("apache", [patch(BugType::DanglingRead, 1)]); // canary

        for view in [&pool, &worker0] {
            let (fast, fast_epoch) = view.get_with_epoch("apache");
            let (locked, locked_epoch) = view.get_locked_with_epoch("apache");
            assert_eq!(fast_epoch, locked_epoch);
            assert_eq!(fast.len(), locked.len());
            assert_eq!(fast.patches(), locked.patches());
        }
        // The scoped view sees its canary through the plane overlay.
        assert!(worker0
            .get("apache")
            .match_dealloc(CallSite([1, 0, 0]))
            .is_some());
        assert!(pool
            .get("apache")
            .match_dealloc(CallSite([1, 0, 0]))
            .is_none());
    }
}
