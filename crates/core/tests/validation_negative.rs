//! Negative validation tests (paper §5): a *semantic* bug whose wild
//! write lands just past an allocation looks exactly like a buffer
//! overflow to the diagnosis engine — but its effect is layout-dependent,
//! so the three randomized validation re-executions observe different
//! illegal-access offsets, the consistency check fails, and First-Aid
//! removes the patch rather than mislead developers.

use fa_checkpoint::AdaptiveConfig;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool};

fn config() -> FirstAidConfig {
    FirstAidConfig {
        adaptive: AdaptiveConfig {
            base_interval_ns: 2_000_000,
            ..AdaptiveConfig::default()
        },
        ..FirstAidConfig::default()
    }
}

/// On op == 1, computes a wild pointer whose offset past the buffer
/// depends on the buffer's *address bits* — a stand-in for a semantic bug
/// (e.g. an indexing error through unrelated state) that only looks like
/// an overflow under one particular heap layout.
#[derive(Clone, Default)]
struct SemanticBugApp;

impl App for SemanticBugApp {
    fn name(&self) -> &'static str {
        "semantic-bug"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            ctx.call("compute", |ctx| {
                let buf = ctx.malloc(64)?;
                let neighbor = ctx.malloc(64)?;
                ctx.fill(buf, 64, 1)?;
                ctx.fill(neighbor, 64, 2)?;
                if input.op == 1 {
                    // Semantic wild write: offset depends on the address.
                    let wild_off = 64 + ((buf.0 >> 4) & 0x3f);
                    ctx.write_u64(buf.offset(wild_off), 0xbad)?;
                }
                ctx.free(neighbor)?;
                ctx.free(buf)?;
                Ok(Response::bytes(64))
            })
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn semantic_bug_patch_is_rejected_by_randomized_validation() {
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch(Box::new(SemanticBugApp), config(), pool.clone()).unwrap();
    let w: Vec<Input> = (0..80)
        .map(|i| {
            InputBuilder::op(u32::from(i == 40))
                .a(i)
                .gap_us(100)
                .build()
        })
        .collect();
    let _ = fa.run(w, None);

    let rec = fa
        .recoveries
        .first()
        .expect("the wild write must cause a failure and recovery");
    // The diagnosis plausibly concludes "buffer overflow" — that is the
    // misdiagnosis hazard the paper describes.
    assert!(rec.diagnosis.is_some());
    let v = rec
        .validation
        .as_ref()
        .expect("validation runs after recovery");
    assert!(
        !v.consistent,
        "randomized validation must expose the layout dependence: {:?}",
        v.reason
    );
    assert!(
        v.reason
            .as_deref()
            .is_some_and(|r| r.contains("criterion") || r.contains("failed under randomization")),
        "reason names the violated criterion: {:?}",
        v.reason
    );
    // The patch was withdrawn from the pool.
    assert_eq!(
        pool.len("semantic-bug"),
        0,
        "inconsistent patches must be removed (paper §5)"
    );
}

/// A real overflow's patch, in contrast, validates cleanly on the same
/// harness (control for the test above).
#[derive(Clone, Default)]
struct RealOverflowApp;

impl App for RealOverflowApp {
    fn name(&self) -> &'static str {
        "real-overflow"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            ctx.call("compute", |ctx| {
                let buf = ctx.malloc(64)?;
                let n = if input.op == 1 { 80 } else { 64 };
                ctx.fill(buf, n, 1)?; // fixed 16-byte overflow
                ctx.free(buf)?;
                Ok(Response::bytes(64))
            })
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn real_overflow_patch_survives_randomized_validation() {
    let pool = PatchPool::in_memory();
    let mut fa =
        FirstAidRuntime::launch(Box::new(RealOverflowApp), config(), pool.clone()).unwrap();
    let w: Vec<Input> = (0..80)
        .map(|i| {
            InputBuilder::op(u32::from(i == 40))
                .a(i)
                .gap_us(100)
                .build()
        })
        .collect();
    let summary = fa.run(w, None);
    assert_eq!(summary.failures, 1);
    let v = fa.recoveries[0].validation.as_ref().unwrap();
    assert!(v.consistent, "{:?}", v.reason);
    assert_eq!(pool.len("real-overflow"), 1);
}
