//! Format tests for the Fig. 5-style bug report: the rendered report and
//! its JSON form must carry every piece of information the paper lists
//! (§5): diagnosis log, patch call-sites, the mm-operation diff, and the
//! illegal-access summary.

use fa_checkpoint::AdaptiveConfig;
use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool};

/// A dangling-read case small enough to produce a compact report.
#[derive(Clone, Default)]
struct CacheApp {
    entry: Option<Addr>,
    live: bool,
}

impl App for CacheApp {
    fn name(&self) -> &'static str {
        "cache-app"
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        let e = ctx.call("cache_insert", |ctx| ctx.malloc(64))?;
        ctx.write_u64(e, 0xfeed)?;
        self.entry = Some(e);
        self.live = true;
        Ok(())
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            if input.op == 1 && self.live {
                ctx.call("cache_evict", |ctx| ctx.free(self.entry.unwrap()))?;
                self.live = false;
                return Ok(Response::ack());
            }
            let scratch = ctx.call("scratch", |ctx| ctx.malloc(64))?;
            ctx.fill(scratch, 64, 3)?;
            let v = ctx.call("cache_get", |ctx| ctx.read_u64(self.entry.unwrap()))?;
            ctx.check(v == 0xfeed, "cache integrity")?;
            ctx.free(scratch)?;
            Ok(Response::bytes(64))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

fn produce_report() -> first_aid_core::BugReport {
    let config = FirstAidConfig {
        adaptive: AdaptiveConfig {
            base_interval_ns: 2_000_000,
            ..AdaptiveConfig::default()
        },
        ..FirstAidConfig::default()
    };
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch(Box::new(CacheApp::default()), config, pool).unwrap();
    let w: Vec<Input> = (0..60)
        .map(|i| InputBuilder::op(u32::from(i == 30)).gap_us(100).build())
        .collect();
    let _ = fa.run(w, None);
    fa.recoveries[0].report.clone().expect("report produced")
}

#[test]
fn rendered_report_has_all_five_sections() {
    let report = produce_report();
    let text = report.to_string();
    for needle in [
        "1. Failure coredump:",
        "2. Diagnosis summary:",
        "3. Patch applied:",
        "4. Memory allocations/deallocations in buggy region:",
        "5. Illegal access trace in buggy region:",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Patch section names the culprit call-site.
    assert!(text.contains("@cache_evict"), "{text}");
    assert!(text.contains("delay free"), "{text}");
    // The diff marks the delayed free (may lie beyond the rendered
    // 16-line preview, so check the underlying data).
    assert!(
        report
            .mm_diff
            .iter()
            .any(|(_, with)| with.contains("(delayed, patch 1)")),
        "{:?}",
        report.mm_diff
    );
    // The illegal-access summary names the reading function.
    assert!(text.contains("cache_get"), "{text}");
}

#[test]
fn json_report_round_trips_key_fields() {
    let report = produce_report();
    let json = report.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(value["program"], "cache-app");
    assert!(value["recovery_s"].as_f64().unwrap() > 0.0);
    assert!(!value["diagnosis_log"].as_array().unwrap().is_empty());
    let patches = value["patches"].as_array().unwrap();
    assert_eq!(patches.len(), 1);
    assert_eq!(patches[0][0]["bug"], "DanglingRead");
    assert!(
        patches[0][1].as_u64().unwrap() >= 1,
        "trigger count recorded"
    );
}
