//! End-to-end tests of the full First-Aid pipeline: one miniature buggy
//! application per bug type, driven through failure → diagnosis → patch →
//! prevention, as in paper §7.2.

use fa_allocext::BugType;
use fa_checkpoint::AdaptiveConfig;
use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use first_aid_core::{
    FirstAidConfig, FirstAidRuntime, PatchPool, PreventiveChange, RecoveryRecord,
};

fn config() -> FirstAidConfig {
    FirstAidConfig {
        adaptive: AdaptiveConfig {
            base_interval_ns: 2_000_000, // 2 ms for fast tests
            ..AdaptiveConfig::default()
        },
        ..FirstAidConfig::default()
    }
}

fn normal(i: u64) -> Input {
    InputBuilder::op(0).a(i).gap_us(100).build()
}

fn buggy() -> Input {
    InputBuilder::op(1).gap_us(100).buggy().build()
}

/// Builds a workload of `n` inputs with bug triggers at the given indices.
fn workload(n: usize, triggers: &[usize]) -> Vec<Input> {
    (0..n)
        .map(|i| {
            if triggers.contains(&i) {
                buggy()
            } else {
                normal(i as u64)
            }
        })
        .collect()
}

fn run_and_expect_patch(
    app: BoxedApp,
    triggers: &[usize],
    expect_bug: BugType,
    expect_change: PreventiveChange,
) -> (first_aid_core::runtime::RunSummary, Vec<RecoveryRecord>) {
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch(app, config(), pool.clone()).unwrap();
    let w = workload(120, triggers);
    let summary = fa.run(w, None);

    // Exactly one real recovery: the first trigger. Later triggers are
    // neutralized by the installed patch.
    assert_eq!(summary.failures, 1, "only the first trigger may fail");
    assert_eq!(summary.dropped, 0, "no inputs may be dropped");
    let rec = &fa.recoveries[0];
    let diag = rec.diagnosis.as_ref().expect("diagnosis must complete");
    assert_eq!(diag.bugs.len(), 1, "exactly one bug type: {:?}", diag.bugs);
    assert_eq!(diag.bugs[0].bug, expect_bug);
    assert!(!rec.patches.is_empty());
    for p in &rec.patches {
        assert_eq!(p.change, expect_change);
    }
    assert!(
        rec.validation.as_ref().is_some_and(|v| v.consistent),
        "patches must validate: {:?}",
        rec.validation.as_ref().and_then(|v| v.reason.clone())
    );
    assert!(rec.report.is_some());
    assert!(pool.len(fa.program()) >= 1, "patch persisted to the pool");
    let recoveries = std::mem::take(&mut fa.recoveries);
    (summary, recoveries)
}

// ---------------------------------------------------------------------
// Buffer overflow
// ---------------------------------------------------------------------

/// Overflows a 64-byte buffer by 24 bytes on buggy inputs, corrupting the
/// next chunk's boundary tag (the Squid/Pine/Mutt/BC failure mode).
#[derive(Clone, Default)]
struct OverflowApp;

impl App for OverflowApp {
    fn name(&self) -> &'static str {
        "overflow-e2e"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("handle_req", |ctx| {
            ctx.call("build_url", |ctx| {
                let buf = ctx.malloc(64)?;
                let n = if input.op == 1 { 88 } else { 64 };
                ctx.fill(buf, n, 0x55)?; // bug: length miscalculation
                let sum: u64 = ctx.read_bytes(buf, 64)?.iter().map(|&b| u64::from(b)).sum();
                ctx.free(buf)?;
                Ok(Response::bytes(sum / 1000))
            })
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn overflow_diagnosed_patched_prevented() {
    let (summary, recs) = run_and_expect_patch(
        Box::new(OverflowApp),
        &[40, 60, 80, 100],
        BugType::BufferOverflow,
        PreventiveChange::AddPadding,
    );
    assert_eq!(summary.recoveries, 1);
    // Direct identification: few rollbacks (6-7 in the paper).
    let diag = recs[0].diagnosis.as_ref().unwrap();
    assert!(
        diag.rollbacks <= 12,
        "direct identification must be cheap, used {}",
        diag.rollbacks
    );
}

// ---------------------------------------------------------------------
// Double free
// ---------------------------------------------------------------------

/// Frees a scratch buffer twice on buggy inputs (the CVS error path).
#[derive(Clone, Default)]
struct DoubleFreeApp;

impl App for DoubleFreeApp {
    fn name(&self) -> &'static str {
        "doublefree-e2e"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve_rpc", |ctx| {
            let buf = ctx.call("alloc_scratch", |ctx| ctx.malloc(128))?;
            ctx.fill(buf, 128, 0x11)?;
            ctx.call("cleanup", |ctx| ctx.free(buf))?;
            if input.op == 1 {
                // Bug: the error path frees again.
                ctx.call("error_cleanup", |ctx| ctx.free(buf))?;
            }
            Ok(Response::bytes(128))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn double_free_diagnosed_patched_prevented() {
    let (_, recs) = run_and_expect_patch(
        Box::new(DoubleFreeApp),
        &[30, 50, 70],
        BugType::DoubleFree,
        PreventiveChange::DelayFree,
    );
    // The patch point is the FIRST free's call-site (cleanup), so the
    // object stays quarantined and the second free is neutralized.
    let p = &recs[0].patches[0];
    assert!(
        p.site_names.iter().any(|n| n == "cleanup"),
        "patch must target the first-free site, got {:?}",
        p.site_names
    );
}

// ---------------------------------------------------------------------
// Dangling pointer read
// ---------------------------------------------------------------------

/// Caches an entry, prematurely frees it on buggy input, then reads it on
/// the NEXT request after reallocating over it (the Apache LDAP-cache
/// shape): the read observes the new owner's data and an integrity check
/// fails.
#[derive(Clone, Default)]
struct DanglingReadApp {
    cache_entry: Option<Addr>,
    entry_live: bool,
}

const MAGIC: u64 = 0x00c0ffee;

impl App for DanglingReadApp {
    fn name(&self) -> &'static str {
        "danglingread-e2e"
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        ctx.call("cache_init", |ctx| {
            let e = ctx.malloc(96)?;
            ctx.write_u64(e, MAGIC)?;
            ctx.fill(e.offset(8), 88, 0x22)?;
            self.cache_entry = Some(e);
            self.entry_live = true;
            Ok(())
        })
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("handle_req", |ctx| {
            if input.op == 1 && self.entry_live {
                // Bug: cache purge frees the entry but leaves the pointer.
                ctx.call("cache_purge", |ctx| {
                    ctx.call("entry_free", |ctx| ctx.free(self.cache_entry.unwrap()))
                })?;
                self.entry_live = false;
                return Ok(Response::bytes(1));
            }
            // Unrelated allocation likely reuses the freed chunk.
            let scratch = ctx.call("scratch_alloc", |ctx| ctx.malloc(96))?;
            ctx.fill(scratch, 96, 0x77)?;
            // Cache lookup dereferences the (possibly dangling) pointer.
            let entry = self.cache_entry.unwrap();
            let magic = ctx.call("cache_fetch", |ctx| ctx.read_u64(entry))?;
            ctx.check(magic == MAGIC, "ldap cache entry magic mismatch")?;
            ctx.free(scratch)?;
            Ok(Response::bytes(96))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn dangling_read_diagnosed_patched_prevented() {
    let (_, recs) = run_and_expect_patch(
        Box::new(DanglingReadApp::default()),
        &[35],
        BugType::DanglingRead,
        PreventiveChange::DelayFree,
    );
    let diag = recs[0].diagnosis.as_ref().unwrap();
    let p = &recs[0].patches[0];
    assert!(
        p.site_names.iter().any(|n| n == "entry_free"),
        "binary search must find the premature-free site, got {:?}",
        p.site_names
    );
    assert!(diag.rollbacks >= 3, "binary search needs iterations");
}

// ---------------------------------------------------------------------
// Dangling pointer write
// ---------------------------------------------------------------------

/// Frees a buffer on buggy input, keeps writing through the pointer on the
/// next request, corrupting whatever reused the chunk (paper Fig. 3).
#[derive(Clone, Default)]
struct DanglingWriteApp {
    stale: Option<Addr>,
    counters: Option<Addr>,
}

impl App for DanglingWriteApp {
    fn name(&self) -> &'static str {
        "danglingwrite-e2e"
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        let b = ctx.call("session_alloc", |ctx| ctx.malloc(64))?;
        ctx.fill(b, 64, 0)?;
        self.stale = Some(b);
        Ok(())
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("handle_req", |ctx| {
            if input.op == 1 {
                // Bug: session teardown frees but does not NULL the ptr.
                ctx.call("session_close", |ctx| ctx.free(self.stale.unwrap()))?;
                // Another subsystem immediately reuses the chunk for its
                // counters block, which must stay zero-consistent.
                let c = ctx.call("stats_alloc", |ctx| ctx.malloc(64))?;
                ctx.fill(c, 64, 0)?;
                self.counters = Some(c);
                return Ok(Response::bytes(1));
            }
            if let Some(c) = self.counters {
                // Bug manifests: a late write through the stale pointer
                // corrupts the counters block.
                ctx.call("session_touch", |ctx| {
                    ctx.write_u64(self.stale.unwrap().offset(16), 0xdead_dead)
                })?;
                let v = ctx.read_u64(c.offset(16))?;
                ctx.check(v < 1000, "stats counter corrupted")?;
                ctx.write_u64(c.offset(16), v + 1)?;
                return Ok(Response::bytes(8));
            }
            let p = ctx.call("work_alloc", |ctx| ctx.malloc(input.a.max(16)))?;
            ctx.fill(p, input.a.max(16), 3)?;
            ctx.free(p)?;
            Ok(Response::bytes(input.a))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn dangling_write_diagnosed_patched_prevented() {
    let pool = PatchPool::in_memory();
    let mut fa =
        FirstAidRuntime::launch(Box::new(DanglingWriteApp::default()), config(), pool).unwrap();
    let summary = fa.run(workload(80, &[30]), None);
    assert_eq!(summary.failures, 1);
    assert_eq!(summary.dropped, 0);
    let rec = &fa.recoveries[0];
    let diag = rec.diagnosis.as_ref().unwrap();
    assert!(
        diag.bugs.iter().any(|b| b.bug == BugType::DanglingWrite),
        "dangling write must be diagnosed: {:?}",
        diag.bugs
    );
    let p = rec
        .patches
        .iter()
        .find(|p| p.bug == BugType::DanglingWrite)
        .unwrap();
    assert!(
        p.site_names.iter().any(|n| n == "session_close"),
        "canary corruption identifies the freeing site, got {:?}",
        p.site_names
    );
}

// ---------------------------------------------------------------------
// Uninitialized read
// ---------------------------------------------------------------------

/// Recycles a dirtied scratch chunk into a "flags" buffer without
/// initializing it; a flag byte other than 0/1 derails the app (the
/// Apache-uir injection).
#[derive(Clone, Default)]
struct UninitReadApp;

impl App for UninitReadApp {
    fn name(&self) -> &'static str {
        "uninitread-e2e"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("handle_req", |ctx| {
            // Scratch gets dirtied and freed every request, poisoning the
            // recycled chunk.
            let scratch = ctx.call("scratch", |ctx| ctx.malloc(64))?;
            ctx.fill(scratch, 64, 0x99)?;
            ctx.free(scratch)?;
            if input.op == 1 {
                // Bug: the flags buffer is assumed to be zeroed.
                let flags = ctx.call("parse_flags", |ctx| ctx.malloc(64))?;
                let flag = ctx.read_u8(flags.offset(33))?;
                ctx.check(flag <= 1, "invalid header flag value")?;
                ctx.free(flags)?;
                return Ok(Response::bytes(u64::from(flag)));
            }
            Ok(Response::bytes(8))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn uninit_read_diagnosed_patched_prevented() {
    let (_, recs) = run_and_expect_patch(
        Box::new(UninitReadApp),
        &[25, 45, 65],
        BugType::UninitRead,
        PreventiveChange::FillZero,
    );
    let p = &recs[0].patches[0];
    assert!(
        p.site_names.iter().any(|n| n == "parse_flags"),
        "binary search must find the uninitialized allocation site, got {:?}",
        p.site_names
    );
}

// ---------------------------------------------------------------------
// Non-deterministic failure
// ---------------------------------------------------------------------

/// Fails only under one specific timing seed — a race-like failure that
/// vanishes on re-execution with timing changes.
#[derive(Clone, Default)]
struct FlakyApp;

impl App for FlakyApp {
    fn name(&self) -> &'static str {
        "flaky-e2e"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("handle_req", |ctx| {
            if input.op == 1 && ctx.timing(input.a).is_multiple_of(97) && ctx.timing_seed == 0 {
                return Err(Fault::assertion("lost wakeup", ctx.site()));
            }
            let p = ctx.malloc(32)?;
            ctx.fill(p, 32, 1)?;
            ctx.free(p)?;
            Ok(Response::bytes(32))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn nondeterministic_failure_just_continues() {
    // Find an `a` that trips the timing predicate under seed 0.
    let probe = ProcessCtx::new(1 << 20);
    let a = (0..10_000u64)
        .find(|&a| probe.timing(a).is_multiple_of(97))
        .expect("some salt must trip the predicate");
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch(Box::new(FlakyApp), config(), pool.clone()).unwrap();
    let mut w = workload(60, &[]);
    w[30] = InputBuilder::op(1).a(a).gap_us(100).build();
    let summary = fa.run(w, None);
    assert_eq!(summary.failures, 1);
    assert_eq!(summary.dropped, 0);
    assert_eq!(
        fa.recoveries[0].kind,
        first_aid_core::runtime::RecoveryKind::NonDeterministic
    );
    assert!(fa.recoveries[0].patches.is_empty());
    assert_eq!(
        pool.len("flaky-e2e"),
        0,
        "no patch for nondeterministic bugs"
    );
}

// ---------------------------------------------------------------------
// Patch persistence across runs
// ---------------------------------------------------------------------

#[test]
fn persisted_patch_protects_next_run_from_the_start() {
    let pool = PatchPool::in_memory();
    // First run: fails once, learns the patch.
    {
        let mut fa =
            FirstAidRuntime::launch(Box::new(OverflowApp), config(), pool.clone()).unwrap();
        let summary = fa.run(workload(60, &[30]), None);
        assert_eq!(summary.failures, 1);
    }
    // Second run of the same program: protected from input zero.
    {
        let mut fa =
            FirstAidRuntime::launch(Box::new(OverflowApp), config(), pool.clone()).unwrap();
        let summary = fa.run(workload(60, &[5, 20, 40]), None);
        assert_eq!(summary.failures, 0, "persisted patch must prevent failures");
        assert_eq!(summary.recoveries, 0);
    }
}
