//! Direct tests of the comparison systems (Rx and restart) and of the
//! optional heap-integrity error monitor.

use fa_checkpoint::AdaptiveConfig;
use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool, RestartRuntime, RxRuntime};

fn adaptive() -> AdaptiveConfig {
    AdaptiveConfig {
        base_interval_ns: 2_000_000,
        ..AdaptiveConfig::default()
    }
}

/// Deterministic overflow on op == 1; also keeps a per-process request
/// counter so restarts visibly lose state.
#[derive(Clone, Default)]
struct Flaky {
    served_since_boot: u64,
}

impl App for Flaky {
    fn name(&self) -> &'static str {
        "flaky-baseline"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            let buf = ctx.malloc(64)?;
            let n = if input.op == 1 { 96 } else { 64 };
            ctx.fill(buf, n, 7)?;
            ctx.free(buf)?;
            self.served_since_boot += 1;
            Ok(Response::bytes(64))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

fn workload(n: usize, period: usize) -> Vec<Input> {
    (0..n)
        .map(|i| {
            InputBuilder::op(u32::from(i > 0 && i % period == 0))
                .gap_us(200)
                .build()
        })
        .collect()
}

#[test]
fn rx_survives_every_failure_but_prevents_none() {
    let mut rx = RxRuntime::launch(Box::new(Flaky::default()), adaptive(), 1 << 26).unwrap();
    let summary = rx.run(workload(500, 100), None);
    // 4 triggers; at least 3 fail (heap-layout drift after a recovery can
    // accidentally mask one trigger) and none is prevented for good.
    assert!(summary.failures >= 3, "no prevention: {summary:?}");
    assert_eq!(
        summary.recoveries, summary.failures,
        "Rx must survive each failure"
    );
    assert_eq!(summary.dropped, 0);
    assert_eq!(rx.recoveries.len(), summary.failures);
    for rec in &rx.recoveries {
        assert!(rec.rollbacks >= 1);
        assert!(
            rec.changed_objects > 10,
            "Rx changes every object in the region: {rec:?}"
        );
    }
}

#[test]
fn rx_recovery_is_faster_than_first_aid_diagnosis() {
    // Rx intentionally skips in-depth diagnosis, so a single recovery is
    // cheaper than First-Aid's (paper §4.3 / Fig. 4 discussion).
    let mut rx = RxRuntime::launch(Box::new(Flaky::default()), adaptive(), 1 << 26).unwrap();
    let _ = rx.run(workload(200, 100), None);
    let rx_ns = rx.recoveries[0].recovery_ns;

    let config = FirstAidConfig {
        adaptive: adaptive(),
        ..FirstAidConfig::default()
    };
    let pool = PatchPool::in_memory();
    let mut fa = FirstAidRuntime::launch(Box::new(Flaky::default()), config, pool).unwrap();
    let _ = fa.run(workload(200, 100), None);
    let fa_ns = fa.recoveries[0].recovery_ns;
    assert!(
        rx_ns < fa_ns,
        "Rx ({rx_ns} ns) must recover faster than First-Aid ({fa_ns} ns)"
    );
}

#[test]
fn restart_pays_downtime_and_loses_state() {
    let cost = 500_000_000u64; // 0.5 s
    let mut rs = RestartRuntime::launch(Box::new(Flaky::default()), 1 << 26, cost).unwrap();
    let w = workload(300, 100);
    let wall_estimate_without_failures: u64 = w.iter().map(|i| i.gap_ns).sum();
    let summary = rs.run(w, None);
    assert_eq!(summary.failures, 2, "two triggers in 300 inputs");
    assert_eq!(rs.restarts, 2);
    assert_eq!(summary.dropped, 2, "poisoned requests are lost");
    assert!(
        summary.wall_ns > wall_estimate_without_failures + 2 * cost,
        "each restart must cost its full downtime"
    );
}

// ---------------------------------------------------------------------
// Integrity monitor
// ---------------------------------------------------------------------

/// An overflow whose corruption would surface only much later: the
/// config block overflows into the adjacent *license* block's boundary
/// tag, and the license block is only freed at op == 2 — nothing else
/// ever touches its header.
#[derive(Clone, Default)]
struct SilentCorruptor {
    config_block: Option<Addr>,
    license_block: Option<Addr>,
}

impl App for SilentCorruptor {
    fn name(&self) -> &'static str {
        "silent-corruptor"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            match input.op {
                1 => {
                    // Reload config: a fresh config block with the license
                    // block right after it. The config parser overflows
                    // into the license block's boundary tag — no fault
                    // now, and nothing reads that header until op 2.
                    let c = ctx.call("config_alloc", |ctx| ctx.malloc(64))?;
                    let l = ctx.call("license_alloc", |ctx| ctx.malloc(64))?;
                    ctx.fill(l, 64, 2)?;
                    ctx.fill(c, 88, 1)?; // BUG: writes 24 bytes past
                    self.config_block = Some(c);
                    self.license_block = Some(l);
                }
                2 => {
                    // Much later: freeing the license block trips the
                    // corrupted tag.
                    if let Some(l) = self.license_block.take() {
                        ctx.call("license_free", |ctx| ctx.free(l))?;
                    }
                }
                _ => {
                    let p = ctx.malloc(32)?;
                    ctx.fill(p, 32, 9)?;
                    ctx.free(p)?;
                }
            }
            Ok(Response::bytes(32))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

fn corruptor_workload() -> Vec<Input> {
    (0..400)
        .map(|i| {
            let op = match i {
                100 => 1, // corruption
                300 => 2, // natural detection point, 200 inputs later
                _ => 0,
            };
            InputBuilder::op(op).gap_us(200).build()
        })
        .collect()
}

#[test]
fn integrity_monitor_catches_corruption_early() {
    let base = FirstAidConfig {
        adaptive: adaptive(),
        ..FirstAidConfig::default()
    };

    // Without the monitor the failure surfaces only at input 300 — 200
    // inputs after the bug-triggering write, beyond phase 1's checkpoint
    // horizon. That is exactly the "latent bug" case the paper admits it
    // cannot handle (§6): diagnosis gives up and the input is dropped.
    let pool = PatchPool::in_memory();
    let mut without = FirstAidRuntime::launch(
        Box::new(SilentCorruptor::default()),
        base.clone(),
        pool.clone(),
    )
    .unwrap();
    let _ = without.run(corruptor_workload(), None);
    let first = without.recoveries.first().expect("a failure occurred");
    // A latent corruption 200 inputs old is non-patchable *precisely*:
    // diagnosis gives up and the degradation ladder falls back to the
    // program-wide generic rung (or drops the input outright). Either
    // way, no precise patch is ever learned.
    assert_ne!(
        first.kind,
        first_aid_core::runtime::RecoveryKind::Patched,
        "no precise diagnosis for a latent corruption"
    );
    assert!(
        first.patches.iter().all(fa_allocext::Patch::is_generic),
        "only generic best-effort patches: {:?}",
        first.patches
    );
    assert!(
        pool.get("silent-corruptor")
            .patches()
            .iter()
            .all(fa_allocext::Patch::is_generic),
        "no precise patch is pooled"
    );

    // With the monitor sweeping every 20 inputs: caught within 20 inputs
    // of the bug-triggering write.
    let config = FirstAidConfig {
        integrity_check_every: 20,
        ..base
    };
    let pool = PatchPool::in_memory();
    let mut with =
        FirstAidRuntime::launch(Box::new(SilentCorruptor::default()), config, pool).unwrap();
    let _ = with.run(corruptor_workload(), None);
    let early_idx = with
        .recoveries
        .first()
        .and_then(|r| r.diagnosis.as_ref())
        .map(|d| d.log[0].clone())
        .unwrap_or_default();
    let idx: usize = early_idx
        .split("input #")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("diagnosis log names the input");
    assert!(
        (100..=120).contains(&idx),
        "the monitor shortens error-propagation distance: caught at #{idx}"
    );
    // And the diagnosis still identifies the overflow and patches it.
    let rec = &with.recoveries[0];
    assert!(rec
        .patches
        .iter()
        .any(|p| p.bug == fa_allocext::BugType::BufferOverflow));
}
