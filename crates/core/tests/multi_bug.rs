//! Multi-bug diagnosis (paper §4.2): "First-Aid takes into consideration
//! the case where multiple types of bugs are triggered and the program
//! will not survive unless all of them are avoided. Therefore, the
//! algorithm carefully separates each bug type."

use fa_allocext::BugType;
use fa_checkpoint::AdaptiveConfig;
use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool};

fn config() -> FirstAidConfig {
    FirstAidConfig {
        adaptive: AdaptiveConfig {
            base_interval_ns: 2_000_000,
            ..AdaptiveConfig::default()
        },
        ..FirstAidConfig::default()
    }
}

/// A service where one poisoned request triggers BOTH an overflow and a
/// dangling read, with the failure order arranged so that surviving the
/// region requires avoiding both.
#[derive(Clone, Default)]
struct TwoBugApp {
    session: Option<Addr>,
    session_live: bool,
}

const MAGIC: u64 = 0x5e55_1015;

impl App for TwoBugApp {
    fn name(&self) -> &'static str {
        "two-bugs"
    }

    fn init(&mut self, ctx: &mut ProcessCtx) -> Result<(), Fault> {
        let s = ctx.call("session_alloc", |ctx| ctx.malloc(96))?;
        ctx.write_u64(s, MAGIC)?;
        self.session = Some(s);
        self.session_live = true;
        Ok(())
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            if input.op == 1 {
                // Bug 1 (dangling read setup): the session is freed but
                // the pointer is kept and dereferenced below.
                if self.session_live {
                    ctx.call("session_expire", |ctx| ctx.free(self.session.unwrap()))?;
                    self.session_live = false;
                }
                // Bug 2 (overflow): the render buffer is under-sized.
                ctx.call("render", |ctx| {
                    let buf = ctx.malloc(64)?;
                    ctx.fill(buf, 96, 0x21)?; // 32 bytes past the end
                    ctx.free(buf)
                })?;
                return Ok(Response::bytes(4));
            }
            // Normal path: reuse-prone allocation + session lookup.
            let scratch = ctx.call("scratch", |ctx| ctx.malloc(96))?;
            ctx.fill(scratch, 96, 0x42)?;
            let magic = ctx.call("session_lookup", |ctx| ctx.read_u64(self.session.unwrap()))?;
            ctx.check(magic == MAGIC, "session magic mismatch")?;
            ctx.free(scratch)?;
            Ok(Response::bytes(96))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

#[test]
fn both_bug_types_identified_and_patched() {
    let pool = PatchPool::in_memory();
    let mut fa =
        FirstAidRuntime::launch(Box::new(TwoBugApp::default()), config(), pool.clone()).unwrap();
    let w: Vec<Input> = (0..160)
        .map(|i| {
            InputBuilder::op(u32::from(i == 60 || i == 110))
                .gap_us(100)
                .build()
        })
        .collect();
    let summary = fa.run(w, None);

    // The first poisoned request (and its aftermath) causes one recovery;
    // after patching BOTH bugs, the second trigger is fully neutralized.
    assert_eq!(summary.dropped, 0, "nothing may be dropped");
    let rec = &fa.recoveries[0];
    let diag = rec.diagnosis.as_ref().expect("diagnosis completes");
    let mut kinds: Vec<BugType> = diag.bugs.iter().map(|b| b.bug).collect();
    kinds.sort();
    assert_eq!(
        kinds,
        vec![BugType::BufferOverflow, BugType::DanglingRead],
        "both bug types must be separated and identified: {:?}",
        diag.log
    );
    assert!(
        rec.patches.iter().any(|p| p.bug == BugType::BufferOverflow
            && p.site_names.iter().any(|n| n == "render")),
        "{:?}",
        rec.patches
    );
    assert!(
        rec.patches.iter().any(|p| p.bug == BugType::DanglingRead
            && p.site_names.iter().any(|n| n == "session_expire")),
        "{:?}",
        rec.patches
    );
    // Prevention: at most the first trigger's failure chain, then quiet.
    assert_eq!(
        fa.recoveries.len(),
        1,
        "the second trigger must be neutralized by the patches"
    );
}
