//! Revocation propagation: a patch revoked as ineffective is tombstoned
//! in the shared pool, uninstalled by sibling workers at their next
//! refresh, and can never re-propagate to the fleet.

use fa_apps::{spec_by_key, WorkloadSpec};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool, RecoveryKind};

#[test]
fn revoked_patch_never_repropagates_to_siblings() {
    let spec = spec_by_key("squid").unwrap();
    let pool = PatchPool::in_memory();

    // Worker A diagnoses the bug and contributes the patch to the pool.
    let mut a = FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool.clone())
        .expect("launch worker A");
    let workload = (spec.workload)(&WorkloadSpec::new(80, &[30]));
    let summary = a.run(workload, None);
    assert_eq!(summary.failures, 1);
    assert!(a.recoveries.iter().any(|r| r.kind == RecoveryKind::Patched));
    let patches: Vec<_> = a
        .recoveries
        .iter()
        .flat_map(|r| r.patches.iter().cloned())
        .collect();
    assert!(!patches.is_empty());
    assert_eq!(pool.len("squid"), patches.len());

    // Worker B launches from the warm pool: patches installed, epoch seen.
    let mut b = FirstAidRuntime::launch((spec.build)(), FirstAidConfig::default(), pool.clone())
        .expect("launch worker B");
    assert!(!b.refresh_patches(), "B is already current");
    let epoch_before = b.health().pool_epoch;

    // The health monitor revokes the sites (this is exactly the call the
    // runtime makes when a signature keeps recurring under its patches).
    for p in &patches {
        assert!(pool.revoke("squid", p.site), "revocation takes effect");
        assert!(pool.is_revoked("squid", p.site));
    }
    assert_eq!(pool.len("squid"), 0, "revoked patches leave the pool");

    // B's next poll sees the revocation epoch and uninstalls the patch.
    assert!(b.refresh_patches(), "revocation epoch propagates to B");
    assert!(b.health().pool_epoch > epoch_before);

    // A sibling re-deriving the same diagnosis cannot re-admit it: the
    // tombstone blocks the add, the pool version does not move, and no
    // worker ever sees the revoked patch again.
    assert_eq!(pool.add("squid", patches.iter().cloned()), 0);
    assert_eq!(pool.len("squid"), 0);
    assert!(!b.refresh_patches(), "nothing new to propagate");
}
