//! Fleet metrics: per-worker reports and the fleet-wide aggregate.

use first_aid_core::{DegradationMetrics, SentryMetrics};
use serde::Serialize;

/// Everything one worker measured over a fleet run.
///
/// Counters are cumulative across drop-and-restart relaunches; the
/// throughput series is on the worker's own virtual clock (monotone
/// across relaunches, with restart cost and crash-loop backoff charged
/// as idle time).
#[derive(Clone, Debug, Default, Serialize)]
pub struct WorkerReport {
    /// Worker index within the fleet.
    pub worker: usize,
    /// Inputs served successfully (possibly after a recovery).
    pub served: usize,
    /// Inputs whose first execution failed.
    pub failures: usize,
    /// Recoveries performed (diagnosis attempts).
    pub recoveries: usize,
    /// Recoveries that installed patches (diagnosis paid by this worker).
    pub patched: usize,
    /// Recoveries that ended with the input dropped.
    pub dropped: usize,
    /// Rollback/re-execution iterations summed over all diagnoses.
    pub rollbacks: usize,
    /// Bug-triggering inputs that sailed through without failing —
    /// neutralized by an installed patch.
    pub patch_hits: usize,
    /// Drop-and-restart relaunches after the recovery budget ran out.
    pub restarts: usize,
    /// Virtual time spent in crash-loop backoff pauses.
    pub backoff_ns: u64,
    /// Virtual time at which this worker first held patches (via its own
    /// diagnosis, a pool refresh, or launch from a warm pool).
    pub immunized_at_ns: Option<u64>,
    /// Final virtual wall time.
    pub wall_ns: u64,
    /// Total bytes delivered.
    pub bytes: u64,
    /// Degradation-ladder counters, cumulative across relaunches (pool
    /// persistence health is reported fleet-wide, not per worker).
    pub degradation: DegradationMetrics,
    /// Sentry-tier counters, cumulative across relaunches.
    pub sentry: SentryMetrics,
    /// `(window start s, MB/s)` throughput series.
    pub series: Vec<(f64, f64)>,
}

/// The aggregate a [`Fleet::run`](crate::Fleet::run) returns.
#[derive(Clone, Debug, Default, Serialize)]
pub struct FleetReport {
    /// Per-worker reports, in worker order.
    pub workers: Vec<WorkerReport>,
    /// Fleet-wide `(window start s, MB/s)` series: per-window sum of the
    /// worker series.
    pub fleet_series: Vec<(f64, f64)>,
    /// Sum of worker `served`.
    pub served: usize,
    /// Sum of worker `failures`.
    pub failures: usize,
    /// Sum of worker `recoveries`.
    pub recoveries: usize,
    /// Sum of worker `patched` — diagnoses actually paid. With a shared
    /// pool this stays at one per bug regardless of fleet size.
    pub patched: usize,
    /// Sum of worker `dropped`.
    pub dropped: usize,
    /// Sum of worker `rollbacks`.
    pub rollbacks: usize,
    /// Sum of worker `patch_hits`.
    pub patch_hits: usize,
    /// Sum of worker `restarts`.
    pub restarts: usize,
    /// Sum of worker `backoff_ns`.
    pub backoff_ns: u64,
    /// Latest per-worker immunization time, once *every* worker holds
    /// patches; `None` if any worker never did.
    pub time_to_fleet_immunity_ns: Option<u64>,
    /// Sum of worker `bytes`.
    pub bytes: u64,
    /// Merged degradation-ladder counters; the supervisor overlays the
    /// shared pool's persistence health after aggregation.
    pub degradation: DegradationMetrics,
    /// Merged sentry-tier counters across workers.
    pub sentry: SentryMetrics,
}

impl FleetReport {
    /// Mean fleet throughput over the run, MB/s.
    pub fn mean_mbps(&self) -> f64 {
        if self.fleet_series.is_empty() {
            return 0.0;
        }
        self.fleet_series.iter().map(|p| p.1).sum::<f64>() / self.fleet_series.len() as f64
    }

    /// Windows in which the whole fleet delivered (near-)zero bytes.
    pub fn stall_windows(&self) -> usize {
        self.fleet_series.iter().filter(|p| p.1 < 0.05).count()
    }
}

/// Folds [`WorkerReport`]s into a [`FleetReport`].
///
/// All workers sample on the same window width, so the fleet timeline is
/// the per-window sum of the worker timelines.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    workers: Vec<WorkerReport>,
}

impl FleetMetrics {
    /// Starts an empty aggregate.
    pub fn new() -> FleetMetrics {
        FleetMetrics::default()
    }

    /// Adds one worker's report.
    pub fn push(&mut self, report: WorkerReport) {
        self.workers.push(report);
    }

    /// Computes the fleet-wide throughput series (per-window sum).
    pub fn fleet_series(&self) -> Vec<(f64, f64)> {
        let len = self
            .workers
            .iter()
            .map(|w| w.series.len())
            .max()
            .unwrap_or(0);
        if len == 0 {
            return Vec::new();
        }
        // Window starts are identical across workers (same window width,
        // same index); take them from the longest series.
        let longest = self
            .workers
            .iter()
            .max_by_key(|w| w.series.len())
            .expect("len > 0 implies a worker");
        (0..len)
            .map(|i| {
                let total: f64 = self
                    .workers
                    .iter()
                    .filter_map(|w| w.series.get(i))
                    .map(|p| p.1)
                    .sum();
                (longest.series[i].0, total)
            })
            .collect()
    }

    /// Finishes the aggregate.
    pub fn finish(mut self) -> FleetReport {
        self.workers.sort_by_key(|w| w.worker);
        let fleet_series = self.fleet_series();
        let all_immunized =
            !self.workers.is_empty() && self.workers.iter().all(|w| w.immunized_at_ns.is_some());
        let time_to_fleet_immunity_ns = if all_immunized {
            self.workers.iter().filter_map(|w| w.immunized_at_ns).max()
        } else {
            None
        };
        let sum = |f: fn(&WorkerReport) -> usize| self.workers.iter().map(f).sum();
        let mut degradation = DegradationMetrics::default();
        let mut sentry = SentryMetrics::default();
        for w in &self.workers {
            degradation.merge(&w.degradation);
            sentry.merge(&w.sentry);
        }
        FleetReport {
            degradation,
            sentry,
            served: sum(|w| w.served),
            failures: sum(|w| w.failures),
            recoveries: sum(|w| w.recoveries),
            patched: sum(|w| w.patched),
            dropped: sum(|w| w.dropped),
            rollbacks: sum(|w| w.rollbacks),
            patch_hits: sum(|w| w.patch_hits),
            restarts: sum(|w| w.restarts),
            backoff_ns: self.workers.iter().map(|w| w.backoff_ns).sum(),
            bytes: self.workers.iter().map(|w| w.bytes).sum(),
            time_to_fleet_immunity_ns,
            fleet_series,
            workers: self.workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(id: usize, series: Vec<(f64, f64)>, immunized: Option<u64>) -> WorkerReport {
        WorkerReport {
            worker: id,
            served: 10,
            immunized_at_ns: immunized,
            series,
            ..WorkerReport::default()
        }
    }

    #[test]
    fn fleet_series_sums_by_window() {
        let mut m = FleetMetrics::new();
        m.push(worker(0, vec![(0.0, 1.0), (0.25, 2.0)], Some(5)));
        m.push(worker(1, vec![(0.0, 3.0)], Some(9)));
        let r = m.finish();
        assert_eq!(r.fleet_series, vec![(0.0, 4.0), (0.25, 2.0)]);
        assert_eq!(r.served, 20);
        assert_eq!(r.time_to_fleet_immunity_ns, Some(9));
    }

    #[test]
    fn immunity_requires_every_worker() {
        let mut m = FleetMetrics::new();
        m.push(worker(0, vec![], Some(5)));
        m.push(worker(1, vec![], None));
        assert_eq!(m.finish().time_to_fleet_immunity_ns, None);
    }
}
