//! Fleet scale harness: 10²–10⁵ simulated workers over the real pool.
//!
//! The threaded [`Fleet`](crate::Fleet) runs one OS thread per worker —
//! honest, but a wall around 10³ workers. This module scales the fleet
//! model to six digits by splitting what must be *real* from what must
//! be *deterministic*:
//!
//! * **Real:** the patch plane. Every simulated input performs the
//!   actual per-allocation hot path against a live [`PatchPool`] — one
//!   event-head load (the worker's "anything new?" check) plus one
//!   lock-free [`PatchPool::get`] and a call-site match — across real
//!   OS threads, so aggregate inputs/sec measures the true cost of the
//!   lock-free read side under core-count concurrency. The pool holds
//!   real patches produced by real diagnoses (the bench's diagnosis
//!   phase, see [`AppPlan`]).
//! * **Deterministic:** the propagation timeline. Worker `w` runs
//!   program `plans[w % napps]`; the first victim worker of each app
//!   pays the app's measured diagnosis cost (`recovery_ns`) and
//!   publishes at `T_pub = per_input_ns + recovery_ns`; the patch then
//!   spreads cell-to-cell on the seeded gossip schedule
//!   ([`CellTopology::informed_rounds`]), and every other worker is
//!   immunized at its first input boundary after its cell is informed.
//!   Per-worker trigger times are seeded; a trigger before immunity is
//!   a failure, after it a patch hit. All of this is pure arithmetic on
//!   virtual time, so `immunity_ns`, `patch_hits`, `failures` and the
//!   query `checksum` are byte-reproducible across machines — which is
//!   what lets `fleet_scale --check` gate them exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fa_allocext::Patch;
use fa_proc::CallSite;
use first_aid_core::PatchPool;
use serde::Serialize;

use crate::cells::CellTopology;

fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One program's contribution to the mixed-traffic profile: the real
/// patches its diagnosis produced and what that diagnosis cost in
/// virtual time. Built by the bench's diagnosis phase from a real
/// `FirstAidRuntime` run; the scale harness treats it as ground truth.
#[derive(Clone, Debug)]
pub struct AppPlan {
    /// Program executable name (pool key).
    pub program: String,
    /// The patches the app's diagnosis published.
    pub patches: Vec<Patch>,
    /// Virtual time the victim worker spent diagnosing (trigger to
    /// patch publish).
    pub recovery_ns: u64,
}

/// Scale-harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Simulated workers.
    pub workers: usize,
    /// Workers per gossip cell.
    pub cell_size: usize,
    /// Gossip fanout (cells informed per round per informed cell).
    pub fanout: usize,
    /// Virtual duration of one gossip round.
    pub gossip_round_ns: u64,
    /// Real hot-path queries each simulated worker performs.
    pub inputs_per_worker: usize,
    /// Virtual time per input (the modeled service time).
    pub per_input_ns: u64,
    /// OS threads carrying the simulated workers (0 = auto: the
    /// machine's available parallelism, capped at 8).
    pub threads: usize,
    /// Seed for trigger times and the gossip schedules.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            workers: 10_000,
            cell_size: 64,
            fanout: 3,
            gossip_round_ns: 2_000_000, // 2 ms per gossip round
            inputs_per_worker: 24,
            per_input_ns: 250_000, // 250 µs service time
            threads: 0,
            seed: 42,
        }
    }
}

/// What one scale run produced. The virtual-time fields (`immunity_ns`,
/// `patch_hits`, `failures`, `checksum`) are deterministic for a given
/// config + plans; the wall-clock fields (`elapsed_ns`,
/// `inputs_per_sec`) measure this machine.
#[derive(Clone, Debug, Serialize)]
pub struct ScaleOutcome {
    pub workers: usize,
    pub cells: usize,
    /// Gossip rounds to full propagation (the logarithmic term).
    pub gossip_rounds: u32,
    /// Total simulated inputs (= real hot-path queries performed).
    pub inputs: u64,
    /// Virtual time at which the last worker became immunized.
    pub immunity_ns: u64,
    /// Virtual time of the last patch publication (slowest diagnosis).
    pub last_publish_ns: u64,
    /// Triggers neutralized by an installed patch.
    pub patch_hits: u64,
    /// Triggers that fired before the worker was immunized.
    pub failures: u64,
    /// Order-independent digest of every query result (reproducibility
    /// witness: the real reads saw exactly the expected patch state).
    pub checksum: u64,
    /// Wall-clock time of the threaded query phase.
    pub elapsed_ns: u64,
    /// Real aggregate throughput of the query phase.
    pub inputs_per_sec: f64,
}

/// Per-allocation query-latency comparison: the retired locked read
/// path ([`PatchPool::get_locked`], mutex + full `PatchSet` clone per
/// call) against the lock-free plane ([`PatchPool::get`]), hammered
/// from `threads` concurrent readers.
#[derive(Clone, Debug, Serialize)]
pub struct QueryLatency {
    pub threads: usize,
    pub iters_per_thread: u64,
    /// Mean ns per locked query under contention.
    pub locked_ns: f64,
    /// Mean ns per lock-free query under contention.
    pub lockfree_ns: f64,
    /// `locked_ns / lockfree_ns`.
    pub speedup: f64,
}

/// The auto thread count: all cores, capped so laptop CI and the
/// 64-core bench box measure comparable contention.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// A simulated fleet at scale: a real patch pool pre-warmed with the
/// plans' diagnosed patches, queried by `workers` simulated workers.
pub struct ScaleFleet {
    config: ScaleConfig,
    plans: Vec<AppPlan>,
    pool: PatchPool,
}

impl ScaleFleet {
    /// Builds the fleet and pre-publishes every plan's patches through
    /// the real pool write path (journal-less `add`), as the victim
    /// workers' diagnoses would have.
    pub fn new(config: ScaleConfig, plans: Vec<AppPlan>) -> ScaleFleet {
        let pool = PatchPool::in_memory();
        for plan in &plans {
            pool.add(&plan.program, plan.patches.iter().cloned());
        }
        ScaleFleet {
            config,
            plans,
            pool,
        }
    }

    /// The underlying pool (pre-warmed; also the latency-bench target).
    pub fn pool(&self) -> &PatchPool {
        &self.pool
    }

    /// Runs the simulation: deterministic virtual-time propagation, real
    /// threaded hot-path queries.
    pub fn run(&self) -> ScaleOutcome {
        let cfg = self.config;
        let topo = CellTopology::new(cfg.workers, cfg.cell_size, cfg.fanout, cfg.gossip_round_ns);
        let cells = topo.cells();
        let napps = self.plans.len().max(1);

        // Per-app propagation schedule: when each cell is informed.
        struct Sched {
            program: String,
            site: Option<CallSite>,
            informed_ns: Vec<u64>,
            pub_ns: u64,
        }
        let scheds: Vec<Sched> = self
            .plans
            .iter()
            .enumerate()
            .map(|(a, plan)| {
                // The app's first victim is worker `a` (workers are
                // assigned round-robin, so worker `a` runs app `a`).
                let origin = topo.cell_of(a.min(cfg.workers.saturating_sub(1)));
                let rounds =
                    topo.informed_rounds(origin, cfg.seed ^ (a as u64).wrapping_mul(0x9e37));
                let pub_ns = cfg.per_input_ns + plan.recovery_ns;
                let informed_ns = (0..cells)
                    .map(|c| pub_ns + topo.gossip_delay_ns(&rounds, c))
                    .collect();
                Sched {
                    program: plan.program.clone(),
                    site: plan.patches.first().map(|p| p.site),
                    informed_ns,
                    pub_ns,
                }
            })
            .collect();
        let last_publish_ns = scheds.iter().map(|s| s.pub_ns).max().unwrap_or(0);
        let max_informed = scheds
            .iter()
            .flat_map(|s| s.informed_ns.iter().copied())
            .max()
            .unwrap_or(0);
        // Trigger times land anywhere in the run's virtual horizon, so
        // some precede immunity (failures) and some follow it (hits).
        let horizon_inputs = (max_informed / cfg.per_input_ns.max(1)) + 2;

        let threads = if cfg.threads == 0 {
            default_threads()
        } else {
            cfg.threads
        };
        let immunity = AtomicU64::new(0);
        let hits = AtomicU64::new(0);
        let fails = AtomicU64::new(0);
        let checksum = AtomicU64::new(0);
        let chunk = cfg.workers.div_ceil(threads.max(1));
        let started = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(cfg.workers);
                if lo >= hi {
                    continue;
                }
                let pool = &self.pool;
                let scheds = &scheds;
                let immunity = &immunity;
                let hits = &hits;
                let fails = &fails;
                let checksum = &checksum;
                s.spawn(move || {
                    let mut local_imm = 0u64;
                    let mut local_hits = 0u64;
                    let mut local_fails = 0u64;
                    let mut local_sum = 0u64;
                    for w in lo..hi {
                        let sched = &scheds[w % napps];
                        let cell = topo.cell_of(w);
                        let informed = sched.informed_ns[cell];
                        // Immunized at the first input boundary at or
                        // after the cell learned the patch.
                        let immunized_ns =
                            informed.div_ceil(cfg.per_input_ns.max(1)) * cfg.per_input_ns.max(1);
                        local_imm = local_imm.max(immunized_ns);
                        let mut rng = cfg.seed ^ (w as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
                        let trig_ns =
                            (splitmix64_next(&mut rng) % horizon_inputs) * cfg.per_input_ns;
                        if trig_ns >= immunized_ns {
                            local_hits += 1;
                        } else {
                            local_fails += 1;
                        }
                        // The real per-input hot path: event-head check
                        // plus lock-free patch query plus site match.
                        for _ in 0..cfg.inputs_per_worker {
                            let head = std::hint::black_box(pool.events().appended());
                            let set = std::hint::black_box(pool.get(&sched.program));
                            let matched = sched.site.is_some_and(|site| {
                                set.match_alloc(site).is_some() || set.match_dealloc(site).is_some()
                            });
                            local_sum = local_sum
                                .wrapping_add(head ^ (set.len() as u64) ^ u64::from(matched));
                        }
                    }
                    immunity.fetch_max(local_imm, Ordering::Relaxed);
                    hits.fetch_add(local_hits, Ordering::Relaxed);
                    fails.fetch_add(local_fails, Ordering::Relaxed);
                    checksum.fetch_add(local_sum, Ordering::Relaxed);
                });
            }
        });
        let elapsed = started.elapsed();
        let inputs = (cfg.workers * cfg.inputs_per_worker) as u64;
        let secs = elapsed.as_secs_f64();
        ScaleOutcome {
            workers: cfg.workers,
            cells,
            gossip_rounds: topo.rounds_to_full(),
            inputs,
            immunity_ns: immunity.load(Ordering::Relaxed),
            last_publish_ns,
            patch_hits: hits.load(Ordering::Relaxed),
            failures: fails.load(Ordering::Relaxed),
            checksum: checksum.load(Ordering::Relaxed),
            elapsed_ns: elapsed.as_nanos() as u64,
            inputs_per_sec: if secs > 0.0 {
                inputs as f64 / secs
            } else {
                0.0
            },
        }
    }
}

/// Measures mean per-query latency of the locked baseline against the
/// lock-free plane, with `threads` readers hammering the same pool
/// concurrently (the contention profile a fleet's allocation fast
/// paths produce). Returns mean ns/query per mode and the speedup.
pub fn measure_query_latency(
    pool: &PatchPool,
    programs: &[String],
    threads: usize,
    iters_per_thread: u64,
) -> QueryLatency {
    fn timed(threads: usize, iters: u64, f: impl Fn(u64) -> u64 + Sync) -> f64 {
        let started = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let f = &f;
                s.spawn(move || {
                    let mut acc = 0u64;
                    for i in 0..iters {
                        acc = acc.wrapping_add(f(t as u64 ^ i));
                    }
                    std::hint::black_box(acc)
                });
            }
        });
        let total = (threads as u64 * iters).max(1);
        started.elapsed().as_nanos() as f64 / total as f64
    }

    let n = programs.len().max(1) as u64;
    let locked_ns = timed(threads, iters_per_thread, |i| {
        let set = pool.get_locked(&programs[(i % n) as usize]);
        std::hint::black_box(set.len() as u64)
    });
    let lockfree_ns = timed(threads, iters_per_thread, |i| {
        let set = pool.get(&programs[(i % n) as usize]);
        std::hint::black_box(set.len() as u64)
    });
    QueryLatency {
        threads,
        iters_per_thread,
        locked_ns,
        lockfree_ns,
        speedup: if lockfree_ns > 0.0 {
            locked_ns / lockfree_ns
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::BugType;
    use fa_proc::SymbolTable;

    fn plan(program: &str, id: u64, recovery_ns: u64) -> AppPlan {
        AppPlan {
            program: program.to_owned(),
            patches: vec![Patch::new(
                BugType::BufferOverflow,
                CallSite([id, 0, 0]),
                &SymbolTable::new(),
            )],
            recovery_ns,
        }
    }

    fn quick(workers: usize) -> ScaleConfig {
        ScaleConfig {
            workers,
            inputs_per_worker: 4,
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn virtual_metrics_are_deterministic_and_account_every_worker() {
        let plans = vec![plan("apache", 1, 90_000_000), plan("squid", 2, 30_000_000)];
        let a = ScaleFleet::new(quick(500), plans.clone()).run();
        let b = ScaleFleet::new(quick(500), plans).run();
        assert_eq!(a.patch_hits, b.patch_hits);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.immunity_ns, b.immunity_ns);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(
            a.patch_hits + a.failures,
            500,
            "every worker triggered once"
        );
        assert_eq!(a.inputs, 500 * 4);
        assert!(a.immunity_ns >= a.last_publish_ns);
        assert!(a.patch_hits > 0 && a.failures > 0);
    }

    #[test]
    fn immunity_grows_sublinearly_with_fleet_size() {
        let plans = vec![plan("apache", 1, 90_000_000)];
        let small = ScaleFleet::new(quick(100), plans.clone()).run();
        let large = ScaleFleet::new(quick(10_000), plans).run();
        // 100x the workers must cost far less than 100x the immunity
        // time — gossip rounds grow with log(cells).
        let ratio = large.immunity_ns as f64 / small.immunity_ns.max(1) as f64;
        assert!(ratio < 10.0, "immunity ratio {ratio} for 100x workers");
        assert!(large.gossip_rounds >= small.gossip_rounds);
    }

    #[test]
    fn latency_bench_reports_positive_rates() {
        let fleet = ScaleFleet::new(quick(50), vec![plan("pine", 3, 1_000_000)]);
        let programs = vec!["pine".to_owned()];
        let lat = measure_query_latency(fleet.pool(), &programs, 2, 2_000);
        assert!(lat.locked_ns > 0.0 && lat.lockfree_ns > 0.0);
        assert!(lat.speedup > 0.0);
    }
}
