//! Fleet supervision: many First-Aid processes, one patch pool.
//!
//! The paper's patch management stores every generated patch in a central
//! per-program pool so that patches are "available to all the processes
//! that are running the same program" (§3). This crate exercises that
//! claim at fleet scale: a [`Fleet`] launches N workers, each a full
//! [`FirstAidRuntime`](first_aid_core::FirstAidRuntime) supervising its
//! own process of the same program, and dispatches a mixed stream of
//! normal and bug-triggering inputs across them. All workers share one
//! [`PatchPool`](first_aid_core::PatchPool), so the *first* worker to hit
//! the bug pays the diagnosis cost and every other worker picks the patch
//! up before its own first trigger — the fleet is **immunized** by a
//! single diagnosis.
//!
//! What the supervisor provides:
//!
//! * **Event-driven refresh** — workers subscribe to the pool's
//!   epoch-stamped event log
//!   ([`PoolEvents`](first_aid_core::PoolEvents)) and re-read their
//!   patch set only when an event names their own program; the quiet
//!   path is one atomic load and the read itself is the pool's
//!   lock-free plane.
//! * **Dispatch** — [`DispatchPolicy::RoundRobin`] or
//!   [`DispatchPolicy::LeastBacklog`] (live backlog counters per worker).
//! * **Sharing ablation** — [`PoolSharing::PerWorker`] gives each worker
//!   a private pool, reproducing the no-sharing baseline where every
//!   worker must diagnose the same bug independently.
//! * **Crash-loop backoff** — a worker failing on consecutive inputs
//!   charges an exponentially growing virtual pause before taking more
//!   traffic ([`BackoffConfig`]).
//! * **Drop-and-restart fallback** — a worker that exhausts its recovery
//!   budget is degraded: its process is thrown away and relaunched at
//!   full restart cost (the paper's whole-process-restart baseline
//!   becomes the last resort, not the first).
//! * **Metrics** — per-worker and fleet-wide throughput timelines on
//!   [`ThroughputSampler`](first_aid_core::ThroughputSampler), recovery /
//!   patch-hit / rollback counts, and *time-to-fleet-immunity*: the
//!   latest per-worker virtual time at which a worker first held patches
//!   ([`FleetReport::time_to_fleet_immunity_ns`]).
//! * **Scale harness** — [`ScaleFleet`] shards 10²–10⁵ simulated
//!   workers into gossip cells ([`CellTopology`]) and drives the real
//!   lock-free patch plane from every simulated input, with a
//!   deterministic virtual-time propagation model (used by the
//!   `fleet_scale` bench).
//!
//! # Example
//!
//! ```
//! use fa_fleet::{Fleet, FleetConfig};
//! use fa_apps::spec_by_key;
//!
//! let spec = spec_by_key("squid").unwrap();
//! let fleet = Fleet::new(spec.build, FleetConfig { workers: 3, ..FleetConfig::default() });
//! // One trigger in the stream: one worker diagnoses, all are immunized.
//! let stream = fa_apps::fleet::sharded_stream(
//!     &spec,
//!     &[vec![40], vec![], vec![]],
//!     120,
//!     7,
//! );
//! let report = fleet.run(stream);
//! assert_eq!(report.patched, 1, "one worker pays the diagnosis");
//! assert!(!fleet.pool().is_empty("squid"));
//!
//! // A second wave of triggers: every worker launches from the warm
//! // pool, so the whole fleet is immunized from the start.
//! let wave2 = fa_apps::fleet::sharded_stream(&spec, &[vec![10], vec![10], vec![10]], 40, 8);
//! let r2 = fleet.run(wave2);
//! assert_eq!(r2.failures, 0);
//! assert_eq!(r2.patch_hits, 3);
//! assert!(r2.time_to_fleet_immunity_ns.is_some());
//! ```

pub mod cells;
pub mod metrics;
pub mod scale;
pub mod supervisor;
mod worker;

pub use cells::CellTopology;
pub use metrics::{FleetMetrics, FleetReport, WorkerReport};
pub use scale::{
    measure_query_latency, AppPlan, QueryLatency, ScaleConfig, ScaleFleet, ScaleOutcome,
};
pub use supervisor::{AppFactory, BackoffConfig, DispatchPolicy, Fleet, FleetConfig, PoolSharing};
