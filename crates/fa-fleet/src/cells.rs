//! Cell sharding and gossip-style patch propagation.
//!
//! At six-digit fleet sizes a central pool cannot notify every worker
//! directly — the paper's per-program pool becomes the *origin* of a
//! patch, and propagation between groups of workers follows a push
//! gossip: workers are sharded into **cells** (a cell models a rack, a
//! zone, or one supervisor's span of control), the cell that diagnosed
//! the bug pushes the patch to `fanout` other cells per round, and
//! every informed cell keeps pushing. Informed cells grow by a factor
//! of `1 + fanout` per round, so full propagation takes
//! `ceil(log_{1+fanout}(cells))` rounds — time-to-fleet-immunity grows
//! *logarithmically* in the number of cells (and therefore sublinearly
//! in workers), which is what the `fleet_scale` bench gate enforces.
//!
//! The schedule is deterministic: which cells learn in which round is a
//! seeded shuffle ([`CellTopology::informed_rounds`]), so two runs with
//! the same seed produce byte-identical propagation timelines.

use serde::Serialize;

/// Splitmix64, the repo's standard seeded-shuffle generator.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How a fleet's workers are sharded into gossip cells.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CellTopology {
    /// Total workers in the fleet.
    pub workers: usize,
    /// Workers per cell (the last cell may be smaller).
    pub cell_size: usize,
    /// Cells each informed cell pushes to per gossip round.
    pub fanout: usize,
    /// Virtual duration of one gossip round.
    pub round_ns: u64,
}

impl CellTopology {
    /// A topology with sane floors (at least one worker per cell, at
    /// least fanout 1).
    pub fn new(workers: usize, cell_size: usize, fanout: usize, round_ns: u64) -> CellTopology {
        CellTopology {
            workers: workers.max(1),
            cell_size: cell_size.max(1),
            fanout: fanout.max(1),
            round_ns,
        }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.workers.div_ceil(self.cell_size)
    }

    /// The cell a worker belongs to.
    pub fn cell_of(&self, worker: usize) -> usize {
        worker / self.cell_size
    }

    /// Informed-cell count after `round` rounds, starting from one
    /// origin cell: grows by `1 + fanout` per round, saturating at the
    /// cell count.
    pub fn informed_after(&self, round: u32) -> usize {
        let cells = self.cells();
        let mut informed = 1usize;
        for _ in 0..round {
            informed = informed.saturating_mul(1 + self.fanout).min(cells);
            if informed == cells {
                break;
            }
        }
        informed
    }

    /// Rounds until every cell is informed — the logarithmic term that
    /// keeps fleet immunity sublinear.
    pub fn rounds_to_full(&self) -> u32 {
        let cells = self.cells();
        let mut informed = 1usize;
        let mut rounds = 0u32;
        while informed < cells {
            informed = informed.saturating_mul(1 + self.fanout).min(cells);
            rounds += 1;
        }
        rounds
    }

    /// The deterministic gossip schedule from `origin`: element `c` is
    /// the round at which cell `c` learns the patch (0 for the origin
    /// itself). Which cells learn early is a seeded Fisher-Yates
    /// shuffle — decorrelated between programs via the seed — but the
    /// informed-count curve per round is exactly [`Self::informed_after`].
    pub fn informed_rounds(&self, origin: usize, seed: u64) -> Vec<u32> {
        let cells = self.cells();
        let origin = origin.min(cells.saturating_sub(1));
        // Shuffle the non-origin cells into their "learn order".
        let mut order: Vec<usize> = (0..cells).filter(|&c| c != origin).collect();
        let mut state = seed ^ 0xce11_70b0_1091_c0de;
        splitmix64_next(&mut state); // warm the stream past the raw seed
        for i in (1..order.len()).rev() {
            let j = (splitmix64_next(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut rounds = vec![0u32; cells];
        let mut informed = 1usize;
        let mut round = 0u32;
        let mut next = 0usize; // next position in `order` to assign
        while next < order.len() {
            round += 1;
            let informed_now = informed.saturating_mul(1 + self.fanout).min(cells);
            for &cell in order.iter().take(informed_now - 1).skip(next) {
                rounds[cell] = round;
            }
            next = informed_now - 1;
            informed = informed_now;
        }
        rounds
    }

    /// Virtual delay until `cell` holds a patch that originated in
    /// `origin`'s cell, per the seeded schedule.
    pub fn gossip_delay_ns(&self, rounds: &[u32], cell: usize) -> u64 {
        u64::from(rounds[cell]) * self.round_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_learns_first_and_everyone_learns_by_the_last_round() {
        let topo = CellTopology::new(10_000, 64, 3, 2_000_000);
        let rounds = topo.informed_rounds(5, 42);
        assert_eq!(rounds.len(), topo.cells());
        assert_eq!(rounds[5], 0, "origin is informed immediately");
        let max = *rounds.iter().max().unwrap();
        assert_eq!(max, topo.rounds_to_full());
        // The informed-count curve matches the fanout model exactly.
        for r in 0..=max {
            let informed = rounds.iter().filter(|&&x| x <= r).count();
            assert_eq!(informed, topo.informed_after(r), "round {r}");
        }
    }

    #[test]
    fn propagation_rounds_grow_logarithmically() {
        let round = |workers| CellTopology::new(workers, 64, 3, 1).rounds_to_full();
        // 100x more workers adds a constant number of rounds (log), it
        // does not multiply them.
        assert!(round(100_000) <= round(1_000) + 4);
        assert!(round(100) <= 1);
        assert!(round(100_000) >= round(100));
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let topo = CellTopology::new(4096, 64, 2, 1_000);
        assert_eq!(topo.informed_rounds(0, 7), topo.informed_rounds(0, 7));
        assert_ne!(
            topo.informed_rounds(0, 7),
            topo.informed_rounds(0, 8),
            "different seeds, different early-learner cells"
        );
    }

    #[test]
    fn single_cell_fleets_need_no_gossip() {
        let topo = CellTopology::new(50, 64, 3, 1_000);
        assert_eq!(topo.cells(), 1);
        assert_eq!(topo.rounds_to_full(), 0);
        assert_eq!(topo.informed_rounds(0, 1), vec![0]);
    }
}
