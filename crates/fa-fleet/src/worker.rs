//! The per-worker loop: one supervised process draining its job queue.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

use fa_exec::Backoff;
use fa_proc::Input;
use first_aid_core::{EventPoll, FirstAidConfig, FirstAidRuntime, PatchPool, ThroughputSampler};

use first_aid_core::{DegradationMetrics, SentryMetrics};

use crate::metrics::WorkerReport;
use crate::supervisor::BackoffConfig;

/// Everything a worker thread needs, moved into it at spawn.
pub(crate) struct WorkerParams {
    pub id: usize,
    pub factory: crate::supervisor::AppFactory,
    pub runtime: FirstAidConfig,
    pub pool: PatchPool,
    pub window_ns: u64,
    pub recovery_budget: usize,
    pub restart_cost_ns: u64,
    pub backoff: BackoffConfig,
}

/// Counters folded out of a runtime before it is replaced (drop-and-
/// restart) or when the stream ends.
#[derive(Default)]
struct Folded {
    recoveries: usize,
    patched: usize,
    dropped: usize,
    rollbacks: usize,
    degradation: DegradationMetrics,
    sentry: SentryMetrics,
}

fn fold(runtime: &mut FirstAidRuntime, into: &mut Folded) {
    let h = runtime.health();
    into.recoveries += h.recoveries;
    into.patched += h.patched;
    into.dropped += h.dropped;
    into.rollbacks += runtime
        .recoveries
        .iter()
        .filter_map(|r| r.diagnosis.as_ref())
        .map(|d| d.rollbacks)
        .sum::<usize>();
    // Pool persistence health is fleet-wide (the pool is shared), so it
    // is overlaid by the supervisor instead of summed per worker.
    let mut d = runtime.degradation();
    d.pool_io_errors = 0;
    d.pool_degraded = false;
    into.degradation.merge(&d);
    into.sentry.merge(&runtime.sentry_metrics());
}

/// Drains `jobs` through one supervised process until the channel closes.
///
/// Patch propagation is event-driven: the worker subscribes to the
/// pool's event log before launching (so no mutation can slip between
/// the launch-time install and the first poll) and, per input, does one
/// quiet-path atomic load. Only when an event names *this worker's
/// program* (or the subscriber lagged the bounded ring) does it re-read
/// the published patch set — a sibling program's patch traffic no
/// longer costs this worker anything. Virtual time is kept monotone
/// across relaunches via `wall_base`; crash-loop backoff and restart
/// cost are charged to it as idle time.
pub(crate) fn run(
    params: WorkerParams,
    jobs: Receiver<Input>,
    backlog: Arc<AtomicUsize>,
) -> WorkerReport {
    let launch = || {
        FirstAidRuntime::launch(
            (params.factory)(),
            params.runtime.clone(),
            params.pool.clone(),
        )
        .expect("fleet worker launch")
    };
    // Subscribe before the launch-time patch install: events published
    // after this point are seen by the cursor, events published before
    // it are already reflected in the state `launch` reads. Either way
    // nothing is missed; at worst an event raced between subscribe and
    // launch costs one redundant (cheap, lock-free) refresh.
    let mut events = params.pool.events().subscribe();
    let mut runtime = launch();
    let program = runtime.program().to_owned();
    let mut sampler = ThroughputSampler::new(params.window_ns);
    let mut report = WorkerReport {
        worker: params.id,
        ..WorkerReport::default()
    };
    let mut folded = Folded::default();
    // Offsets carried across drop-and-restart relaunches.
    let mut wall_base = 0u64;
    let mut bytes_base = 0u64;
    let mut consecutive_failures = 0u32;
    // Shared seeded-jitter backoff helper: the schedule is the classic
    // exponential (base << k, capped), decorrelated across workers by
    // the per-worker seed so crash-looping siblings do not resume in
    // lockstep.
    let mut crash_backoff = Backoff::seeded(
        params.backoff.base_ns,
        params.backoff.max_ns,
        0xf1ee_7bac_0ff5_eed5 ^ params.id as u64,
    );

    // Launching from a warm pool (earlier run, persistent dir) counts as
    // immunized from the start.
    if !runtime.pool().is_empty(runtime.program()) {
        report.immunized_at_ns = Some(runtime.wall_ns());
    }

    while let Ok(input) = jobs.recv() {
        // Event-driven refresh: Quiet is one atomic load and no lock;
        // only events for this worker's program (or a lagged ring,
        // where dropped events force the conservative full refresh)
        // reach `refresh_patches`.
        let moved = match params.pool.events().poll(&mut events) {
            EventPoll::Quiet => false,
            EventPoll::Lagged => true,
            EventPoll::Events(batch) => batch.iter().any(|e| e.program == program),
        };
        if moved && runtime.refresh_patches() && report.immunized_at_ns.is_none() {
            report.immunized_at_ns = Some(wall_base + runtime.wall_ns());
        }
        let buggy = input.buggy;
        let outcome = runtime.feed(input);
        // Relaxed: the counter is an advisory load gauge for the
        // dispatcher's LeastBacklog heuristic. The input itself travels
        // through the mpsc channel, whose send/recv pair already
        // provides the happens-before edge; no memory is published via
        // this counter, so no Acquire/Release pairing is needed.
        backlog.fetch_sub(1, Ordering::Relaxed);

        if outcome.served {
            report.served += 1;
        }
        if outcome.failed {
            report.failures += 1;
            consecutive_failures += 1;
            if consecutive_failures > 1 {
                // Crash-looping: back off exponentially before taking more
                // traffic, so a hot bug cannot monopolize the worker. The
                // first failure in a row is free (recovery itself already
                // cost virtual time).
                let pause = crash_backoff.next_delay_ns();
                wall_base += pause;
                report.backoff_ns += pause;
            }
        } else {
            consecutive_failures = 0;
            crash_backoff.reset();
            if buggy {
                // A trigger that did not fail was neutralized by a patch.
                report.patch_hits += 1;
                // A neutralized trigger is exactly the evidence a canary
                // re-admission is waiting for: if this worker is flying
                // a canary for a quarantined site, promote it fleet-wide.
                runtime.pool().confirm_canary(runtime.program());
            }
        }
        if report.immunized_at_ns.is_none() && runtime.health().patched > 0 {
            report.immunized_at_ns = Some(wall_base + runtime.wall_ns());
        }

        let budget_spent =
            params.recovery_budget > 0 && runtime.health().recoveries >= params.recovery_budget;
        if budget_spent || runtime.needs_restart() {
            // Degraded fallback (ladder rung 4, drop-and-restart): either
            // this process has spent its recovery budget, or its drop
            // streak shows that even the generic rung is not holding.
            // Throw the process away and relaunch it wholesale (the
            // restart baseline as last resort). Patches it contributed
            // stay in the pool and are re-installed at launch; revoked
            // sites stay tombstoned.
            fold(&mut runtime, &mut folded);
            wall_base += runtime.wall_ns() + params.restart_cost_ns;
            bytes_base += runtime.process().bytes_delivered;
            runtime = launch();
            report.restarts += 1;
            folded.degradation.restarts += 1;
            consecutive_failures = 0;
            crash_backoff.reset();
        }

        sampler.record(
            wall_base + runtime.wall_ns(),
            bytes_base + runtime.process().bytes_delivered,
        );
    }

    fold(&mut runtime, &mut folded);
    report.recoveries = folded.recoveries;
    report.patched = folded.patched;
    report.dropped = folded.dropped;
    report.rollbacks = folded.rollbacks;
    report.degradation = folded.degradation;
    report.sentry = folded.sentry;
    report.wall_ns = wall_base + runtime.wall_ns();
    report.bytes = bytes_base + runtime.process().bytes_delivered;
    report.series = sampler.series();
    report
}
