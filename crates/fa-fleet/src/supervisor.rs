//! The fleet supervisor: spawn workers, dispatch inputs, join reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use fa_proc::{BoxedApp, Input};
use fa_wal::WorkerOp;
use first_aid_core::{FirstAidConfig, PatchPool, QuarantinePolicy, WalOp};

use crate::metrics::{FleetMetrics, FleetReport, WorkerReport};
use crate::worker::{self, WorkerParams};

/// Builds a fresh application instance for one worker (or relaunch).
///
/// `AppSpec::build` function pointers coerce into this directly:
/// `Fleet::new(spec.build, config)`.
pub type AppFactory = Arc<dyn Fn() -> BoxedApp + Send + Sync>;

/// How the supervisor picks a worker for the next input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Strict rotation: input `i` goes to worker `i % N`. Deterministic;
    /// pairs with sharded streams so each worker sees its own shard.
    #[default]
    RoundRobin,
    /// Send to the worker with the fewest queued inputs (live backlog
    /// counters), rotating among ties. Keeps healthy workers loaded while
    /// a sibling is stuck in diagnosis.
    LeastBacklog,
}

/// Whether workers share one patch pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolSharing {
    /// One pool for the whole fleet: the first diagnosis immunizes
    /// everyone (the paper's central per-program pool).
    #[default]
    Shared,
    /// Each worker gets a private in-memory pool — the no-sharing
    /// ablation, where every worker must diagnose the bug itself.
    PerWorker,
}

/// Exponential crash-loop backoff, charged as virtual idle time.
///
/// The first failure in a row is free (recovery itself already costs
/// virtual time); the `k`-th consecutive failure pauses the worker for
/// `base_ns << (k - 2)`, capped at `max_ns`.
#[derive(Clone, Copy, Debug)]
pub struct BackoffConfig {
    /// First pause length.
    pub base_ns: u64,
    /// Pause ceiling.
    pub max_ns: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base_ns: 50_000_000,   // 50 ms
            max_ns: 2_000_000_000, // 2 s
        }
    }
}

/// Fleet-level configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of workers (processes of the same program).
    pub workers: usize,
    /// Input dispatch policy.
    pub policy: DispatchPolicy,
    /// Patch-pool sharing mode.
    pub sharing: PoolSharing,
    /// Per-worker First-Aid runtime configuration.
    pub runtime: FirstAidConfig,
    /// Throughput sampling window (250 ms, as in Fig. 4).
    pub window_ns: u64,
    /// Bounded per-worker queue depth. Backpressure couples the fleet's
    /// real-time progress (as a load balancer would): while one worker is
    /// stuck in diagnosis, its siblings cannot race arbitrarily far
    /// ahead, so a shared patch still lands *before* their own triggers.
    pub queue_depth: usize,
    /// Recoveries a worker may perform before it is degraded to
    /// drop-and-restart (0 = unlimited).
    pub recovery_budget: usize,
    /// Virtual downtime charged per drop-and-restart relaunch.
    pub restart_cost_ns: u64,
    /// Crash-loop backoff tuning.
    pub backoff: BackoffConfig,
    /// Flap quarantine for revoked call-sites: a site revoked this many
    /// times fleet-wide is quarantined, and re-admission goes through an
    /// exponentially-paced single-worker canary instead of a fleet-wide
    /// re-publish. `None` keeps tombstones permanent (the plain pool
    /// semantics).
    pub quarantine: Option<QuarantinePolicy>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            policy: DispatchPolicy::default(),
            sharing: PoolSharing::default(),
            runtime: FirstAidConfig::default(),
            window_ns: 250_000_000,
            queue_depth: 8,
            recovery_budget: 16,
            restart_cost_ns: 1_500_000_000,
            backoff: BackoffConfig::default(),
            quarantine: Some(QuarantinePolicy::default()),
        }
    }
}

/// A fleet of First-Aid-supervised processes of one program.
///
/// The pool outlives each [`Fleet::run`] call, so a second run starts
/// with every worker already immunized by the first (same as processes
/// launched after the patches were persisted).
pub struct Fleet {
    factory: AppFactory,
    config: FleetConfig,
    pool: PatchPool,
}

struct WorkerHandle {
    sender: SyncSender<Input>,
    backlog: Arc<AtomicUsize>,
    thread: JoinHandle<WorkerReport>,
}

impl Fleet {
    /// Creates a fleet with a fresh in-memory shared pool.
    pub fn new(
        factory: impl Fn() -> BoxedApp + Send + Sync + 'static,
        config: FleetConfig,
    ) -> Fleet {
        Fleet {
            factory: Arc::new(factory),
            config,
            pool: PatchPool::in_memory(),
        }
    }

    /// Replaces the shared pool (e.g. with a persistent one).
    pub fn with_pool(mut self, pool: PatchPool) -> Fleet {
        self.pool = pool;
        self
    }

    /// The shared patch pool (meaningful under [`PoolSharing::Shared`]).
    pub fn pool(&self) -> &PatchPool {
        &self.pool
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Recovers the shared pool from its supervision journal (crash-safe
    /// restart of the whole fleet supervisor). Returns the number of
    /// journal records applied; idempotent — a second call applies
    /// nothing and returns 0. A fleet whose pool was built with
    /// [`PatchPool::journaled`] recovers automatically at construction;
    /// this re-entry point exists for supervisors that crash *between*
    /// runs and re-open the same journal handle.
    pub fn recover_from_journal(&self) -> usize {
        self.pool.recover_from_journal()
    }

    /// Runs the fleet over one input stream: spawns the workers,
    /// dispatches every input, closes the queues, joins, aggregates.
    pub fn run(&self, inputs: impl IntoIterator<Item = Input>) -> FleetReport {
        let n = self.config.workers.max(1);
        if let Some(policy) = self.config.quarantine {
            self.pool.enable_quarantine(policy);
        }
        let journaled = self.pool.journal().is_some();
        let mut handles: Vec<WorkerHandle> = (0..n)
            .map(|id| {
                if journaled {
                    self.pool
                        .journal_append(WalOp::WorkerJoin(WorkerOp { worker: id as u64 }));
                }
                let (sender, receiver) = mpsc::sync_channel(self.config.queue_depth.max(1));
                let backlog = Arc::new(AtomicUsize::new(0));
                let params = WorkerParams {
                    id,
                    factory: self.factory.clone(),
                    runtime: self.config.runtime.clone(),
                    pool: match self.config.sharing {
                        // Worker-scoped clone: this worker additionally
                        // sees canary patches admitted for it.
                        PoolSharing::Shared => self.pool.for_worker(id as u64),
                        PoolSharing::PerWorker => PatchPool::in_memory(),
                    },
                    window_ns: self.config.window_ns,
                    recovery_budget: self.config.recovery_budget,
                    restart_cost_ns: self.config.restart_cost_ns,
                    backoff: self.config.backoff,
                };
                let worker_backlog = backlog.clone();
                let thread =
                    std::thread::spawn(move || worker::run(params, receiver, worker_backlog));
                WorkerHandle {
                    sender,
                    backlog,
                    thread,
                }
            })
            .collect();

        for (cursor, input) in inputs.into_iter().enumerate() {
            let target = match self.config.policy {
                DispatchPolicy::RoundRobin => cursor % n,
                DispatchPolicy::LeastBacklog => {
                    // Min backlog; ties rotate with the cursor so idle
                    // workers take turns instead of worker 0 soaking up
                    // every quiet period.
                    //
                    // All backlog accesses are Relaxed: the counter is
                    // an advisory heuristic, not a synchronization
                    // point. The inputs themselves synchronize through
                    // the mpsc channel (send happens-before recv), and
                    // a momentarily stale count only means a slightly
                    // less balanced pick — never a lost or reordered
                    // input.
                    (0..n)
                        .min_by_key(|&i| {
                            (
                                handles[i].backlog.load(Ordering::Relaxed),
                                (i + n - cursor % n) % n,
                            )
                        })
                        .expect("n >= 1")
                }
            };
            handles[target].backlog.fetch_add(1, Ordering::Relaxed);
            if handles[target].sender.send(input).is_err() {
                // Worker thread died (panicked); its report is lost but
                // the rest of the fleet keeps serving.
                handles[target].backlog.fetch_sub(1, Ordering::Relaxed);
            }
        }

        let mut metrics = FleetMetrics::new();
        for (id, handle) in handles.drain(..).enumerate() {
            let WorkerHandle { sender, thread, .. } = handle;
            drop(sender); // close the queue so the worker's recv() ends
            if let Ok(report) = thread.join() {
                metrics.push(report);
            }
            if journaled {
                self.pool
                    .journal_append(WalOp::WorkerLeave(WorkerOp { worker: id as u64 }));
            }
        }
        let mut report = metrics.finish();
        // Pool persistence health lives on the shared pool, not on any
        // one worker; overlay it after aggregation.
        report.degradation.pool_io_errors = self.pool.io_error_count();
        report.degradation.pool_degraded = self.pool.is_degraded();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_apps::spec_by_key;

    #[test]
    fn round_robin_shards_evenly() {
        let spec = spec_by_key("squid").unwrap();
        let fleet = Fleet::new(
            spec.build,
            FleetConfig {
                workers: 3,
                ..FleetConfig::default()
            },
        );
        let stream = fa_apps::fleet::sharded_stream(&spec, &[vec![], vec![], vec![]], 30, 1);
        let report = fleet.run(stream);
        assert_eq!(report.served, 90);
        assert_eq!(report.failures, 0);
        for w in &report.workers {
            assert_eq!(w.served, 30, "worker {} took its shard", w.worker);
        }
    }

    #[test]
    fn least_backlog_serves_everything() {
        let spec = spec_by_key("apache").unwrap();
        let fleet = Fleet::new(
            spec.build,
            FleetConfig {
                workers: 2,
                policy: DispatchPolicy::LeastBacklog,
                ..FleetConfig::default()
            },
        );
        let stream = fa_apps::fleet::sharded_stream(&spec, &[vec![], vec![]], 40, 3);
        let report = fleet.run(stream);
        assert_eq!(report.served, 80);
        assert!(report.workers.iter().all(|w| w.served > 0));
    }

    #[test]
    fn shared_pool_single_diagnosis_immunizes() {
        // Squid's overflow fails at the triggering request itself, so a
        // short stream suffices (Apache's dangling read needs ~250
        // follow-up requests to trip — see the root integration test).
        let spec = spec_by_key("squid").unwrap();
        let fleet = Fleet::new(
            spec.build,
            FleetConfig {
                workers: 2,
                ..FleetConfig::default()
            },
        );
        // Phase 1: only shard 0 carries a trigger.
        let phase1 = fa_apps::fleet::sharded_stream(&spec, &[vec![30], vec![]], 60, 11);
        let r1 = fleet.run(phase1);
        assert_eq!(r1.patched, 1, "one worker pays the diagnosis");
        // Phase 2: both shards trigger — the warm pool neutralizes all.
        let phase2 = fa_apps::fleet::sharded_stream(&spec, &[vec![10], vec![10]], 40, 12);
        let r2 = fleet.run(phase2);
        assert_eq!(r2.failures, 0, "fleet is immunized");
        assert_eq!(r2.patch_hits, 2);
        // Workers launch from the warm pool: immunized from the start.
        assert!(r2.time_to_fleet_immunity_ns.unwrap() < 50_000_000);
    }
}
