//! Adaptive per-call-site sampling decisions.
//!
//! The global 1/N pacing lives on the heap's fast path
//! (`fa_heap::Heap::sentry_tick`); this sampler layers per-site policy on
//! top of it:
//!
//! * **boost** — the first allocation from a site that has never been
//!   sampled is taken unconditionally (while a small budget lasts), so
//!   rare sites are covered long before the global countdown would reach
//!   them;
//! * **cooling** — once a site has been sampled `hot_threshold` times,
//!   it only takes every `cool_factor`-th tick it wins, so a hot
//!   allocation loop cannot monopolize the slot arena;
//! * **suppression** — sites already covered by an installed patch are
//!   never sampled (there is nothing left to learn; the patch prevents
//!   the bug). A generic program-wide patch suppresses all sampling.
//!
//! All state is plain counters keyed by call-site: decisions are a pure
//! function of the allocation trace, so re-execution from a cloned
//! sampler replays the exact decision sequence.

use std::collections::{BTreeMap, BTreeSet};

use fa_proc::CallSite;

/// Per-site adaptive state.
#[derive(Clone, Debug, Default)]
struct SiteState {
    /// Allocations seen from this site.
    seen: u64,
    /// Allocations sampled from this site.
    sampled: u64,
    /// Ticks declined while cooling.
    cooled: u64,
}

/// The adaptive per-site sampling policy.
#[derive(Clone, Debug)]
pub struct Sampler {
    sites: BTreeMap<CallSite, SiteState>,
    suppressed: BTreeSet<CallSite>,
    /// A generic (program-wide) patch suppresses all sampling.
    suppress_all: bool,
    /// First-occurrence boosts still available.
    boost_left: u32,
    hot_threshold: u64,
    cool_factor: u64,
}

impl Sampler {
    /// Creates a sampler with the given boost budget and cooling knobs.
    pub fn new(boost_budget: u32, hot_threshold: u64, cool_factor: u64) -> Sampler {
        Sampler {
            sites: BTreeMap::new(),
            suppressed: BTreeSet::new(),
            suppress_all: false,
            boost_left: boost_budget,
            hot_threshold: hot_threshold.max(1),
            cool_factor: cool_factor.max(1),
        }
    }

    /// Replaces the suppression set with the sites of the installed
    /// patches. `suppress_all` corresponds to a generic program-wide
    /// patch being active.
    pub fn set_suppressed(
        &mut self,
        sites: impl IntoIterator<Item = CallSite>,
        suppress_all: bool,
    ) {
        self.suppressed = sites.into_iter().collect();
        self.suppress_all = suppress_all;
    }

    /// Returns `true` if `site` is currently suppressed.
    pub fn is_suppressed(&self, site: CallSite) -> bool {
        self.suppress_all || self.suppressed.contains(&site)
    }

    /// Number of suppressed sites.
    pub fn suppressed_len(&self) -> usize {
        self.suppressed.len()
    }

    /// The currently suppressed sites, sorted (journaling supervisors
    /// record these so a recovered runtime re-suppresses exactly).
    pub fn suppressed_sites(&self) -> Vec<CallSite> {
        self.suppressed.iter().copied().collect()
    }

    /// Whether a generic program-wide patch suppresses all sampling.
    pub fn suppresses_all(&self) -> bool {
        self.suppress_all
    }

    /// One allocation from `site`; `tick` is the global 1/N pacing
    /// decision from the heap hook. Returns `true` if the allocation
    /// should be redirected into a guarded slot.
    pub fn decide(&mut self, site: CallSite, tick: bool) -> bool {
        let st = self.sites.entry(site).or_default();
        st.seen += 1;
        if self.suppress_all || self.suppressed.contains(&site) {
            return false;
        }
        // Boost: first sight of a never-sampled site.
        if st.sampled == 0 && st.seen == 1 && self.boost_left > 0 {
            self.boost_left -= 1;
            st.sampled += 1;
            return true;
        }
        if !tick {
            return false;
        }
        // Cooling: hot sites surrender most of the ticks they win.
        if st.sampled >= self.hot_threshold {
            st.cooled += 1;
            if !st.cooled.is_multiple_of(self.cool_factor) {
                return false;
            }
        }
        st.sampled += 1;
        true
    }

    /// Marks a sampled placement as declined after the fact (no slot was
    /// available), so the site does not heat up from it.
    pub fn undo_sample(&mut self, site: CallSite) {
        if let Some(st) = self.sites.get_mut(&site) {
            st.sampled = st.sampled.saturating_sub(1);
        }
    }
}

impl Default for Sampler {
    fn default() -> Sampler {
        Sampler::new(8, 4, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> CallSite {
        CallSite([n, n + 1, n + 2])
    }

    #[test]
    fn first_occurrence_is_boosted() {
        let mut s = Sampler::default();
        assert!(s.decide(site(1), false), "boost ignores the tick");
        assert!(!s.decide(site(1), false), "boost fires once per site");
    }

    #[test]
    fn boost_budget_is_finite() {
        let mut s = Sampler::new(2, 4, 4);
        assert!(s.decide(site(1), false));
        assert!(s.decide(site(2), false));
        assert!(!s.decide(site(3), false), "budget exhausted");
        assert!(s.decide(site(3), true), "but ticks still sample it");
    }

    #[test]
    fn hot_sites_are_cooled() {
        let mut s = Sampler::new(0, 2, 4);
        // Heat the site up to the threshold.
        assert!(s.decide(site(1), true));
        assert!(s.decide(site(1), true));
        // Now only every 4th won tick samples.
        let taken = (0..8).filter(|_| s.decide(site(1), true)).count();
        assert_eq!(taken, 2);
    }

    #[test]
    fn suppressed_sites_never_sample() {
        let mut s = Sampler::default();
        s.set_suppressed([site(1)], false);
        assert!(!s.decide(site(1), true));
        assert!(s.decide(site(2), true), "other sites unaffected");
        s.set_suppressed([], true);
        assert!(!s.decide(site(3), true), "generic patch suppresses all");
        assert!(s.is_suppressed(site(9)));
    }

    #[test]
    fn decisions_replay_after_clone() {
        let mut a = Sampler::new(3, 2, 3);
        let trace: Vec<(CallSite, bool)> = (0..200).map(|i| (site(i % 5), i % 7 == 0)).collect();
        let mut b = a.clone();
        let da: Vec<bool> = trace.iter().map(|&(s, t)| a.decide(s, t)).collect();
        let db: Vec<bool> = trace.iter().map(|&(s, t)| b.decide(s, t)).collect();
        assert_eq!(da, db);
    }
}
