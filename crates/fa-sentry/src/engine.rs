//! The guarded-slot arena.
//!
//! Slots live in a dedicated arena far above the heap. Each slot is a
//! page-aligned triple
//!
//! ```text
//! [ guard page | canary slack · object · canary slack | guard page ]
//! ```
//!
//! The arena is a single [`fa_mem`] region grown slot-by-slot; slot
//! states are pure per-page permission flips ([`fa_mem::SimMemory::protect`]).
//! Guard pages carry [`Perms::GUARD`] permanently; the data page is
//! normal memory while the object is live and flips to
//! [`Perms::POISONED`] when the object is freed (**poisoning**) — no
//! pages are mapped or unmapped on the place/poison/release paths.
//! Accesses to either trap with [`fa_mem::MemFault::GuardTrap`].
//! Poisoned slots sit in a recycle ring and are reused only when the
//! arena is out of fresh slots and the ring is deeper than
//! `recycle_depth` — delayed reuse, so dangling accesses keep trapping
//! long after the free.

use std::collections::VecDeque;

use fa_mem::{Addr, Perms, RegionId, SimMemory, PAGE_SIZE};

use crate::metrics::SentryMetrics;
use crate::sampler::Sampler;
use crate::trap::TrapRecord;

/// Canary slack inside the slot on each side of the object, bytes.
pub const SLOT_SLACK: u64 = 16;

/// Base address of the slot arena. The heap lives at `0x1000_0000` and
/// is capped at 1 GiB, so the arena can never collide with it.
pub const ARENA_BASE: Addr = Addr(0x6000_0000);

const PAGE: u64 = PAGE_SIZE as u64;
/// Bytes of usable data per slot (one page).
const DATA_CAP: u64 = PAGE;
/// Per-slot footprint: guard page, data page, guard page.
const STRIDE: u64 = 3 * PAGE;

/// Tuning knobs for the sentry tier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SentryConfig {
    /// Global pacing: roughly one in `rate` allocations is considered.
    /// `0` disables the tier entirely.
    pub rate: u32,
    /// Seed of the pacing countdown (and anything else the tier draws).
    pub seed: u64,
    /// Maximum number of slots in the arena.
    pub max_slots: usize,
    /// Poisoned slots retained before the oldest may be reused.
    pub recycle_depth: usize,
    /// First-occurrence boosts the sampler may spend on new sites.
    pub boost_budget: u32,
    /// Samples after which a site counts as hot and is cooled.
    pub hot_threshold: u64,
    /// A hot site takes only every `cool_factor`-th tick it wins.
    pub cool_factor: u64,
}

impl Default for SentryConfig {
    fn default() -> SentryConfig {
        SentryConfig {
            rate: 64,
            seed: 0x5e17_a1d0,
            max_slots: 64,
            recycle_depth: 16,
            boost_budget: 8,
            hot_threshold: 4,
            cool_factor: 4,
        }
    }
}

/// Where a sampled allocation was placed.
#[derive(Clone, Copy, Debug)]
pub struct SlotPlacement {
    /// Slot index in the arena.
    pub slot: usize,
    /// Base of the slot's data page; the object sits at
    /// `data + SLOT_SLACK`.
    pub data: Addr,
    /// Usable bytes in the data page (slack included).
    pub cap: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    Live,
    Poisoned,
    Free,
}

/// The slot arena plus sampling policy and trap latch.
#[derive(Clone, Debug)]
pub struct SentryEngine {
    cfg: SentryConfig,
    sampler: Sampler,
    /// The arena region, mapped lazily and grown one slot stride at a
    /// time; `None` until the first slot is placed.
    arena: Option<RegionId>,
    slots: Vec<SlotState>,
    /// Slots ready for immediate reuse (LIFO).
    free: Vec<usize>,
    /// Poisoned slots, oldest first.
    recycle: VecDeque<usize>,
    /// First unconsumed trap; later traps in the same window are counted
    /// but not latched (the first one aborts the input anyway).
    pending: Option<TrapRecord>,
    metrics: SentryMetrics,
}

impl SentryEngine {
    /// Creates an engine (no memory is mapped until slots are needed).
    pub fn new(cfg: SentryConfig) -> SentryEngine {
        let sampler = Sampler::new(cfg.boost_budget, cfg.hot_threshold, cfg.cool_factor);
        SentryEngine {
            cfg,
            sampler,
            arena: None,
            slots: Vec::new(),
            free: Vec::new(),
            recycle: VecDeque::new(),
            pending: None,
            metrics: SentryMetrics::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &SentryConfig {
        &self.cfg
    }

    /// Returns the sampling policy.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Returns the sampling policy mutably.
    pub fn sampler_mut(&mut self) -> &mut Sampler {
        &mut self.sampler
    }

    /// Returns the metrics.
    pub fn metrics(&self) -> &SentryMetrics {
        &self.metrics
    }

    /// Returns the metrics mutably.
    pub fn metrics_mut(&mut self) -> &mut SentryMetrics {
        &mut self.metrics
    }

    /// Returns `true` if `addr` lies inside the slot arena.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= ARENA_BASE && addr.0 < ARENA_BASE.0 + self.slots.len() as u64 * STRIDE
    }

    /// Returns `true` if an object of `size` bytes fits in a slot.
    pub fn fits(&self, size: u64) -> bool {
        size + 2 * SLOT_SLACK <= DATA_CAP
    }

    /// Returns the slot index owning `addr`, if inside the arena.
    pub fn slot_of(&self, addr: Addr) -> Option<usize> {
        self.contains(addr)
            .then(|| ((addr - ARENA_BASE) / STRIDE) as usize)
    }

    /// Returns the base of a slot's data page.
    pub fn data_base(&self, slot: usize) -> Addr {
        ARENA_BASE.offset(slot as u64 * STRIDE + PAGE)
    }

    /// Appends a brand-new slot to the arena: grows (or lazily maps)
    /// the arena region by one stride and marks the flanking guard
    /// pages trap-on-access.
    fn append_slot(&mut self, mem: &mut SimMemory) -> Option<usize> {
        let idx = self.slots.len();
        let base = ARENA_BASE.offset(idx as u64 * STRIDE);
        let end = ARENA_BASE.offset((idx as u64 + 1) * STRIDE);
        match self.arena {
            Some(id) => mem.grow_region(id, end).ok()?,
            None => self.arena = Some(mem.map(ARENA_BASE, STRIDE, "sentry-arena").ok()?),
        }
        mem.protect(base, PAGE, Perms::GUARD)
            .expect("arena covers the new slot");
        mem.protect(base.offset(PAGE + DATA_CAP), PAGE, Perms::GUARD)
            .expect("arena covers the new slot");
        self.slots.push(SlotState::Free);
        Some(idx)
    }

    /// Places a sampled allocation of `size` bytes into a slot.
    ///
    /// Slot choice: fresh free slots first, then a brand-new slot while
    /// the arena has room, then the oldest poisoned slot — but only once
    /// the recycle ring is deeper than `recycle_depth`, so poison sticks
    /// around. Returns `None` (and counts a skip) when nothing fits.
    pub fn place(&mut self, mem: &mut SimMemory, size: u64) -> Option<SlotPlacement> {
        if !self.fits(size) {
            self.metrics.skipped += 1;
            return None;
        }
        let idx = if let Some(idx) = self.free.pop() {
            idx
        } else if self.slots.len() < self.cfg.max_slots {
            self.append_slot(mem)?
        } else if self.recycle.len() > self.cfg.recycle_depth {
            self.recycle.pop_front().expect("ring checked non-empty")
        } else {
            self.metrics.skipped += 1;
            return None;
        };
        mem.protect(self.data_base(idx), DATA_CAP, Perms::RW)
            .expect("slot data page is mapped");
        self.slots[idx] = SlotState::Live;
        self.metrics.samples += 1;
        Some(SlotPlacement {
            slot: idx,
            data: self.data_base(idx),
            cap: DATA_CAP,
        })
    }

    /// Poisons a slot whose object was freed: the data page flips to
    /// [`Perms::POISONED`] (contents intact, accesses trap) and the
    /// slot enters the recycle ring.
    pub fn poison(&mut self, mem: &mut SimMemory, slot: usize) {
        mem.protect(self.data_base(slot), DATA_CAP, Perms::POISONED)
            .expect("slot data page is mapped");
        self.slots[slot] = SlotState::Poisoned;
        self.recycle.push_back(slot);
    }

    /// Releases a slot without poisoning (the object left through the
    /// ordinary delayed-free quarantine, or moved in a realloc). The
    /// data page is re-guarded while the slot waits on the free list:
    /// it holds no object, so any access is wild and keeps trapping.
    pub fn release(&mut self, mem: &mut SimMemory, slot: usize) {
        mem.protect(self.data_base(slot), DATA_CAP, Perms::GUARD)
            .expect("slot data page is mapped");
        if self.slots[slot] == SlotState::Poisoned {
            self.recycle.retain(|&i| i != slot);
        }
        self.slots[slot] = SlotState::Free;
        self.free.push(slot);
    }

    /// Returns `true` if the slot is poisoned.
    pub fn is_poisoned(&self, slot: usize) -> bool {
        self.slots
            .get(slot)
            .is_some_and(|&s| s == SlotState::Poisoned)
    }

    /// Latches a trap (the first in a window wins) and counts it.
    pub fn record_trap(&mut self, rec: TrapRecord) {
        self.metrics.count_trap(rec.kind);
        if self.pending.is_none() {
            self.pending = Some(rec);
        }
    }

    /// Returns the latched trap without consuming it.
    pub fn peek_pending(&self) -> Option<&TrapRecord> {
        self.pending.as_ref()
    }

    /// Consumes the latched trap.
    pub fn take_pending(&mut self) -> Option<TrapRecord> {
        self.pending.take()
    }

    /// Charges sentry bookkeeping time (placement, poisoning) so the
    /// overhead shows up in virtual wall time and the metrics.
    pub fn charge_overhead(&mut self, ns: u64) {
        self.metrics.overhead_ns += ns;
    }

    /// Human-readable slot geometry for an object of `size` bytes, used
    /// in bug reports.
    pub fn slot_layout(size: u64) -> String {
        let right = DATA_CAP.saturating_sub(SLOT_SLACK + size);
        format!(
            "[guard {PAGE}] [canary {SLOT_SLACK}] [object {size}] [canary {right}] [guard {PAGE}]"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trap::TrapKind;
    use fa_mem::MemFault;

    fn engine(max_slots: usize, recycle_depth: usize) -> SentryEngine {
        SentryEngine::new(SentryConfig {
            max_slots,
            recycle_depth,
            ..SentryConfig::default()
        })
    }

    #[test]
    fn placement_is_guarded_on_both_sides() {
        let mut mem = SimMemory::new();
        let mut e = engine(4, 0);
        let p = e.place(&mut mem, 64).unwrap();
        // Object area is writable.
        mem.write_u64(p.data.offset(SLOT_SLACK), 7).unwrap();
        // One byte below the data page and one past it trap.
        assert!(matches!(
            mem.read_u8(p.data.back(1)),
            Err(MemFault::GuardTrap { .. })
        ));
        assert!(matches!(
            mem.write_u8(p.data.offset(p.cap), 1),
            Err(MemFault::GuardTrap { .. })
        ));
        assert_eq!(e.slot_of(p.data), Some(0));
        assert!(e.contains(p.data));
        assert!(!e.contains(Addr(0x1000_0000)));
    }

    #[test]
    fn poisoned_slot_traps_until_reused() {
        let mut mem = SimMemory::new();
        let mut e = engine(1, 0);
        let p = e.place(&mut mem, 32).unwrap();
        mem.write_u8(p.data.offset(SLOT_SLACK), 9).unwrap();
        e.poison(&mut mem, p.slot);
        assert!(e.is_poisoned(p.slot));
        assert!(matches!(
            mem.read_u8(p.data.offset(SLOT_SLACK)),
            Err(MemFault::GuardTrap { .. })
        ));
        // Arena is exhausted, ring is deeper than depth 0: reuse unguards.
        let p2 = e.place(&mut mem, 32).unwrap();
        assert_eq!(p2.slot, p.slot);
        assert!(mem.read_u8(p2.data.offset(SLOT_SLACK)).is_ok());
    }

    #[test]
    fn recycle_depth_delays_reuse() {
        let mut mem = SimMemory::new();
        let mut e = engine(2, 2);
        let a = e.place(&mut mem, 8).unwrap();
        let b = e.place(&mut mem, 8).unwrap();
        e.poison(&mut mem, a.slot);
        e.poison(&mut mem, b.slot);
        // Ring holds 2 poisoned slots, depth is 2: nothing may be reused.
        assert!(e.place(&mut mem, 8).is_none());
        assert_eq!(e.metrics().skipped, 1);
    }

    #[test]
    fn oversized_objects_are_skipped() {
        let mut mem = SimMemory::new();
        let mut e = engine(4, 0);
        assert!(e.place(&mut mem, DATA_CAP).is_none());
        assert_eq!(e.metrics().skipped, 1);
        assert_eq!(e.metrics().samples, 0);
    }

    #[test]
    fn first_trap_is_latched() {
        let mut e = engine(1, 0);
        let rec = |slot| TrapRecord {
            kind: TrapKind::PoisonAccess,
            access: None,
            addr: Addr(1),
            len: 1,
            alloc_site: fa_proc::CallSite([slot, 0, 0]),
            free_site: None,
            access_site: None,
            size: 8,
            slot: slot as usize,
        };
        e.record_trap(rec(1));
        e.record_trap(rec(2));
        assert_eq!(e.metrics().traps, 2);
        assert_eq!(e.peek_pending().unwrap().slot, 1);
        assert_eq!(e.take_pending().unwrap().slot, 1);
        assert!(e.take_pending().is_none());
    }

    #[test]
    fn release_unpoisons_and_recycles() {
        let mut mem = SimMemory::new();
        let mut e = engine(1, 5);
        let p = e.place(&mut mem, 8).unwrap();
        e.poison(&mut mem, p.slot);
        e.release(&mut mem, p.slot);
        assert!(!e.is_poisoned(p.slot));
        // The idle slot holds no object, so wild accesses keep trapping.
        assert!(matches!(
            mem.read_u8(p.data),
            Err(MemFault::GuardTrap { .. })
        ));
        // Free list serves it immediately despite the recycle depth.
        let p2 = e.place(&mut mem, 8).unwrap();
        assert!(mem.read_u8(p2.data).is_ok());
    }
}
