//! The **sentry tier**: sampling-based, always-on heap sentries.
//!
//! First-Aid (EuroSys 2009) is reactive — it diagnoses a bug only after a
//! failure, by rolling back and re-executing under environmental changes.
//! This crate adds the proactive tier the paper's successors pioneered:
//! like GWP-ASan, a deterministic seeded sampler redirects roughly one in
//! `N` allocations into **guarded slots** in a dedicated arena, where
//!
//! * trap-on-access **guard pages** on both sides turn overflows and
//!   underflows that run past the slot into immediate faults,
//! * freed slots are **poisoned** (trap-on-access) with delayed reuse, so
//!   dangling reads/writes and double frees of a sampled object trap at
//!   the first touch,
//! * 16-byte **canary slack** inside the slot, verified on free, catches
//!   silent small overflows DoubleTake-style (evidence, not a crash).
//!
//! Every trap carries the exact allocation/deallocation call-site, which
//! lets the diagnosis engine skip most of its rollback ladder (the
//! fast-path entry in `first-aid-core`). Sampling is **adaptive per
//! call-site**: never-sampled sites get a first-occurrence boost, hot
//! sites are cooled so one allocation loop cannot monopolize the slot
//! budget, and sites already immunized by a patch are suppressed — fleet
//! wide, via the patch-pool epoch mechanism.
//!
//! Everything here is deterministic given the allocation trace and the
//! seed, and `Clone`, so sentry state rides inside checkpoints and
//! replays identically during diagnosis re-execution.

pub mod engine;
pub mod metrics;
pub mod sampler;
pub mod trap;

pub use engine::{SentryConfig, SentryEngine, SlotPlacement, SLOT_SLACK};
pub use metrics::SentryMetrics;
pub use sampler::Sampler;
pub use trap::{TrapKind, TrapRecord};
