//! Trap records: what a sentry caught, with exact attribution.

use core::fmt;

use fa_mem::{AccessKind, Addr};
use fa_proc::CallSite;

/// What kind of sentry evidence fired.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrapKind {
    /// An access ran past the slot into a guard page (or hit a recycled
    /// slot it no longer owns): overflow/underflow caught in flight.
    GuardHit,
    /// An access touched a poisoned (freed) slot: dangling read/write.
    PoisonAccess,
    /// The application freed a poisoned slot again: double free.
    DoubleFreeSlot,
    /// The canary slack inside the slot was corrupt when the object was
    /// freed: silent overflow evidence harvested on free.
    CanaryOnFree,
    /// A read of a sampled object's bytes that were never written.
    UninitReadSlot,
}

impl TrapKind {
    /// Short stable label used in logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrapKind::GuardHit => "guard-hit",
            TrapKind::PoisonAccess => "poison-access",
            TrapKind::DoubleFreeSlot => "double-free-slot",
            TrapKind::CanaryOnFree => "canary-on-free",
            TrapKind::UninitReadSlot => "uninit-read-slot",
        }
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One sentry trap, recorded by the allocator extension at the moment the
/// guarded slot caught the bug. Unlike a plain crash, the record names
/// the *responsible* call-sites directly — this is what seeds fast-path
/// diagnosis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrapRecord {
    /// What fired.
    pub kind: TrapKind,
    /// Read or write, when the trap came from an access.
    pub access: Option<AccessKind>,
    /// Faulting (or freed) address.
    pub addr: Addr,
    /// Access length in bytes (0 for free-path traps).
    pub len: u64,
    /// Allocation call-site of the sampled object.
    pub alloc_site: CallSite,
    /// Deallocation call-site, when the object was already freed.
    pub free_site: Option<CallSite>,
    /// Call-site of the trapping access, when the trap came from one.
    pub access_site: Option<CallSite>,
    /// Requested size of the sampled object.
    pub size: u64,
    /// Index of the slot that caught it.
    pub slot: usize,
}

impl fmt::Display for TrapRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sentry {} at {} (slot {}, object {} bytes)",
            self.kind, self.addr, self.slot, self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrapKind::GuardHit.label(), "guard-hit");
        assert_eq!(TrapKind::CanaryOnFree.to_string(), "canary-on-free");
    }

    #[test]
    fn record_displays_attribution() {
        let r = TrapRecord {
            kind: TrapKind::PoisonAccess,
            access: Some(AccessKind::Read),
            addr: Addr(0x6000_1000),
            len: 8,
            alloc_site: CallSite([1, 2, 3]),
            free_site: Some(CallSite([4, 5, 6])),
            access_site: None,
            size: 64,
            slot: 0,
        };
        let s = r.to_string();
        assert!(s.contains("poison-access"));
        assert!(s.contains("slot 0"));
    }
}
