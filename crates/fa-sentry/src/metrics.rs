//! Sentry counters, merged fleet-wide.

use serde::Serialize;

use crate::trap::TrapKind;

/// Everything the sentry tier measured during a run.
///
/// One instance rides on `RunSummary` (per runtime) and on the fleet
/// reports (merged across workers). `samples`/`traps`/`overhead_ns` are
/// maintained by the allocator extension; the fast-path vs full-ladder
/// split is maintained by the core runtime.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct SentryMetrics {
    /// Allocations redirected into guarded slots.
    pub samples: u64,
    /// Sampling decisions that declined for capacity reasons (no free
    /// slot, or the object was too large for a slot).
    pub skipped: u64,
    /// Total sentry traps delivered.
    pub traps: u64,
    /// Traps from guard pages / recycled slots (overflow, underflow).
    pub guard_traps: u64,
    /// Traps from poisoned slots (dangling read/write).
    pub poison_traps: u64,
    /// Traps from freeing a poisoned slot (double free).
    pub double_free_traps: u64,
    /// Corrupt canary slack harvested on free (silent overflow).
    pub canary_traps: u64,
    /// Reads of never-written sampled bytes (uninitialized read).
    pub uninit_traps: u64,
    /// Diagnoses that went through the sentry fast path.
    pub fast_path_diagnoses: u64,
    /// Diagnoses that fell back to (or started on) the full ladder.
    pub full_ladder_diagnoses: u64,
    /// Traps whose diagnosis found no deterministic, patchable bug.
    pub false_traps: u64,
    /// Virtual time charged for sentry work (placement, poisoning).
    pub overhead_ns: u64,
}

impl SentryMetrics {
    /// Accumulates `other` into `self` (fleet aggregation).
    pub fn merge(&mut self, other: &SentryMetrics) {
        self.samples += other.samples;
        self.skipped += other.skipped;
        self.traps += other.traps;
        self.guard_traps += other.guard_traps;
        self.poison_traps += other.poison_traps;
        self.double_free_traps += other.double_free_traps;
        self.canary_traps += other.canary_traps;
        self.uninit_traps += other.uninit_traps;
        self.fast_path_diagnoses += other.fast_path_diagnoses;
        self.full_ladder_diagnoses += other.full_ladder_diagnoses;
        self.false_traps += other.false_traps;
        self.overhead_ns += other.overhead_ns;
    }

    /// Counts one trap of the given kind.
    pub fn count_trap(&mut self, kind: TrapKind) {
        self.traps += 1;
        match kind {
            TrapKind::GuardHit => self.guard_traps += 1,
            TrapKind::PoisonAccess => self.poison_traps += 1,
            TrapKind::DoubleFreeSlot => self.double_free_traps += 1,
            TrapKind::CanaryOnFree => self.canary_traps += 1,
            TrapKind::UninitReadSlot => self.uninit_traps += 1,
        }
    }

    /// Removes one trap of the given kind. The supervisor re-homes a
    /// consumed trap onto its own rollback-surviving counters and calls
    /// this to drop the allocator extension's copy, so recovery paths
    /// that never roll back do not count the trap twice.
    pub fn uncount_trap(&mut self, kind: TrapKind) {
        self.traps = self.traps.saturating_sub(1);
        let slot = match kind {
            TrapKind::GuardHit => &mut self.guard_traps,
            TrapKind::PoisonAccess => &mut self.poison_traps,
            TrapKind::DoubleFreeSlot => &mut self.double_free_traps,
            TrapKind::CanaryOnFree => &mut self.canary_traps,
            TrapKind::UninitReadSlot => &mut self.uninit_traps,
        };
        *slot = slot.saturating_sub(1);
    }

    /// Fraction of traps that did not lead to a confirmed diagnosis.
    pub fn false_trap_rate(&self) -> f64 {
        if self.traps == 0 {
            0.0
        } else {
            self.false_traps as f64 / self.traps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = SentryMetrics {
            samples: 3,
            traps: 2,
            poison_traps: 2,
            ..SentryMetrics::default()
        };
        let b = SentryMetrics {
            samples: 1,
            traps: 1,
            false_traps: 1,
            overhead_ns: 500,
            ..SentryMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.samples, 4);
        assert_eq!(a.traps, 3);
        assert_eq!(a.overhead_ns, 500);
        assert!((a.false_trap_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn false_trap_rate_of_empty_is_zero() {
        assert_eq!(SentryMetrics::default().false_trap_rate(), 0.0);
    }
}
