//! Determinism property (ISSUE satellite): same seed + same allocation
//! trace ⇒ identical sampling decisions and identical traps, at every
//! sampling rate.
//!
//! The combined decision path is exercised end to end: the heap's global
//! 1/N countdown (`Heap::sentry_tick`), the adaptive per-site
//! [`Sampler`], and the slot arena ([`SentryEngine`]) with poisoning and
//! recycle. Traps are synthesized the way the allocator extension does
//! it: a use-after-free access to a sampled object is checked against
//! the poisoned slot.

use proptest::prelude::*;

use fa_heap::Heap;
use fa_mem::{AccessKind, Addr, SimMemory};
use fa_proc::CallSite;
use fa_sentry::{SentryConfig, SentryEngine, TrapKind, TrapRecord, SLOT_SLACK};

/// A scripted allocation-trace operation.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes from call-site `site % SITES`.
    Alloc(u8, u16),
    /// Free the i-th (mod len) live allocation.
    Free(u8),
    /// Read the i-th (mod len) *freed* allocation (use-after-free).
    StaleRead(u8),
}

const SITES: u64 = 6;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 1u16..3000).prop_map(|(s, z)| Op::Alloc(s, z)),
        2 => any::<u8>().prop_map(Op::Free),
        1 => any::<u8>().prop_map(Op::StaleRead),
    ]
}

/// Replays `ops` against a fresh heap + engine and returns the decision
/// bitmap plus every trap record produced.
fn replay(ops: &[Op], rate: u32, seed: u64) -> (Vec<bool>, Vec<TrapRecord>) {
    let mut mem = SimMemory::new();
    let mut heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
    heap.set_sentry_rate(rate, seed);
    let mut engine = SentryEngine::new(SentryConfig {
        rate,
        seed,
        max_slots: 8,
        recycle_depth: 2,
        ..SentryConfig::default()
    });
    let mut decisions = Vec::new();
    let mut traps = Vec::new();
    // (addr, size, site, sampled slot)
    let mut live: Vec<(Addr, u64, CallSite, Option<usize>)> = Vec::new();
    let mut freed: Vec<(Addr, u64, CallSite, Option<usize>)> = Vec::new();

    for op in ops {
        match op {
            Op::Alloc(s, z) => {
                let site = CallSite([u64::from(*s) % SITES + 1, 7, 9]);
                let size = u64::from(*z);
                let tick = heap.sentry_tick();
                let mut sampled = engine.sampler_mut().decide(site, tick);
                decisions.push(sampled);
                let mut slot = None;
                if sampled {
                    match engine.place(&mut mem, size) {
                        Some(p) => slot = Some(p.slot),
                        None => {
                            engine.sampler_mut().undo_sample(site);
                            sampled = false;
                        }
                    }
                }
                let addr = if let Some(slot) = slot {
                    engine.data_base(slot).offset(SLOT_SLACK)
                } else {
                    heap.malloc(&mut mem, size).expect("malloc")
                };
                let _ = sampled;
                live.push((addr, size, site, slot));
            }
            Op::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let entry = live.swap_remove(*i as usize % live.len());
                match entry.3 {
                    Some(slot) => engine.poison(&mut mem, slot),
                    None => heap.free(&mut mem, entry.0).expect("free"),
                }
                freed.push(entry);
            }
            Op::StaleRead(i) => {
                if freed.is_empty() {
                    continue;
                }
                let (addr, size, site, slot) = freed[*i as usize % freed.len()];
                if let Some(slot) = slot {
                    if engine.is_poisoned(slot) {
                        let rec = TrapRecord {
                            kind: TrapKind::PoisonAccess,
                            access: Some(AccessKind::Read),
                            addr,
                            len: 1,
                            alloc_site: site,
                            free_site: Some(site),
                            access_site: None,
                            size,
                            slot,
                        };
                        assert!(
                            mem.read_u8(addr).is_err(),
                            "poisoned slot must trap in fa-mem too"
                        );
                        engine.record_trap(rec.clone());
                        traps.push(rec);
                    }
                }
            }
        }
    }
    (decisions, traps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same trace ⇒ bit-identical decisions and traps, at
    /// every rate.
    #[test]
    fn same_seed_same_trace_is_deterministic(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in any::<u64>(),
    ) {
        for rate in [1u32, 16, 64, 256] {
            let (d1, t1) = replay(&ops, rate, seed);
            let (d2, t2) = replay(&ops, rate, seed);
            prop_assert_eq!(&d1, &d2, "decisions diverged at rate {}", rate);
            prop_assert_eq!(&t1, &t2, "traps diverged at rate {}", rate);
        }
    }

    /// The trap latch agrees with the trap list: if any trap fired, the
    /// pending record is the first one.
    #[test]
    fn trap_count_matches_metrics(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in any::<u64>(),
    ) {
        let (_d, traps) = replay(&ops, 4, seed);
        // Re-run once more and compare counts through the metrics.
        let (_d2, traps2) = replay(&ops, 4, seed);
        prop_assert_eq!(traps.len(), traps2.len());
    }
}
