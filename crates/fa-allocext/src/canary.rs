//! Canary values.
//!
//! "The term canary refers to certain memory content patterns that are
//! unlikely to appear during normal program execution" (paper §1.2).
//! Exposing changes fill padding, delay-freed objects, or new objects with
//! the canary; corruption of the pattern is the manifestation signal for
//! buffer overflows and dangling writes, and reading the pattern derails
//! applications for dangling/uninitialized reads.

use fa_mem::{Addr, MemFault, SimMemory};

/// The canary fill byte.
///
/// `0xAB` is nonzero (distinguishable from zero-fill), has high bits set
/// (pointer-looking values fault on dereference in the simulated address
/// space), and is unlikely as application data.
pub const CANARY_BYTE: u8 = 0xab;

/// Fills `[addr, addr + len)` with the canary pattern.
pub fn fill_canary(mem: &mut SimMemory, addr: Addr, len: u64) -> Result<(), MemFault> {
    mem.fill(addr, len, CANARY_BYTE)
}

/// Checks the canary in `[addr, addr + len)`.
///
/// Returns `None` if intact, or `Some((first_bad_offset, bad_count))`
/// describing the corruption — the location information First-Aid uses to
/// identify bug-triggering objects.
pub fn check_canary(
    mem: &mut SimMemory,
    addr: Addr,
    len: u64,
) -> Result<Option<(u64, u64)>, MemFault> {
    let bytes = mem.read_bytes(addr, len)?;
    let mut first: Option<u64> = None;
    let mut count = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        if b != CANARY_BYTE {
            if first.is_none() {
                first = Some(i as u64);
            }
            count += 1;
        }
    }
    Ok(first.map(|f| (f, count)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (SimMemory, Addr) {
        let mut m = SimMemory::new();
        let base = Addr(0x1000);
        m.map(base, 1 << 16, "heap").unwrap();
        (m, base)
    }

    #[test]
    fn intact_canary_passes() {
        let (mut m, base) = mem();
        fill_canary(&mut m, base, 512).unwrap();
        assert_eq!(check_canary(&mut m, base, 512).unwrap(), None);
    }

    #[test]
    fn corruption_located() {
        let (mut m, base) = mem();
        fill_canary(&mut m, base, 512).unwrap();
        m.write(base.offset(100), &[1, 2, 3]).unwrap();
        let (first, count) = check_canary(&mut m, base, 512).unwrap().unwrap();
        assert_eq!(first, 100);
        assert_eq!(count, 3);
    }

    #[test]
    fn write_of_canary_value_is_invisible() {
        // A bug that happens to write the canary byte itself escapes
        // detection — the assumption the paper states in §6.
        let (mut m, base) = mem();
        fill_canary(&mut m, base, 64).unwrap();
        m.write_u8(base.offset(5), CANARY_BYTE).unwrap();
        assert_eq!(check_canary(&mut m, base, 64).unwrap(), None);
    }
}
