//! The First-Aid **memory allocator extension** (paper §3).
//!
//! This crate implements the component that sits between the application
//! and the underlying Lea-style allocator. It operates in one of three
//! modes:
//!
//! * **normal mode** — on every allocation/deallocation, the extension
//!   checks whether the current call-site matches a runtime patch and, if
//!   so, applies the patch's preventive change (padding, delay-free, or
//!   zero-fill). This is the mode production processes run in, and its
//!   cost is the "allocator" overhead of paper Fig. 6;
//! * **diagnostic mode** — during checkpoint re-execution, the extension
//!   applies *preventive* and/or *exposing* environmental changes
//!   ([`ChangePlan`]) to all or a subset of call-sites, collects
//!   multi-level call-site information, and checks deallocation parameters
//!   for double frees;
//! * **validation mode** — re-execution with randomized allocation; the
//!   extension keeps full traces of memory management operations, patch
//!   triggering, and illegal accesses (paper §5).
//!
//! The environmental-change machinery implements paper Table 1:
//!
//! | bug type            | preventive change      | exposing change             |
//! |---------------------|------------------------|-----------------------------|
//! | buffer overflow     | pad objects            | canary-filled padding       |
//! | dangling ptr read   | delay free             | canary-fill delayed objects |
//! | dangling ptr write  | delay free             | canary-fill delayed objects |
//! | double free         | delay free + param chk | parameter check             |
//! | uninitialized read  | zero-fill new objects  | canary-fill new objects     |

pub mod bugtype;
pub mod canary;
pub mod changes;
pub mod events;
pub mod ext;
pub mod heapmark;
pub mod intervals;
pub mod objtable;
pub mod patch;
pub mod quarantine;

pub use bugtype::BugType;
pub use canary::{check_canary, fill_canary, CANARY_BYTE};
pub use changes::{ChangePlan, Mode};
pub use events::{IllegalKind, Manifestation, TraceEvent};
pub use ext::{ExtAllocator, ExtCounters, ExtMode, PAD_EACH_SIDE};
pub use intervals::IntervalSet;
pub use objtable::{ObjState, ObjectInfo, ObjectTable, PadInfo};
pub use patch::{Patch, PatchSet, PreventiveChange, GENERIC_SITE};
pub use quarantine::{Quarantine, DEFAULT_QUARANTINE_BYTES};

// The sentry tier (sampling-based guarded slots) plugs into the
// extension as an environmental-change peer; re-export its surface so
// downstream crates need not depend on `fa-sentry` directly.
pub use fa_sentry::{SentryConfig, SentryEngine, SentryMetrics, TrapKind, TrapRecord, SLOT_SLACK};
