//! A small interval set for tracking initialized byte ranges.
//!
//! Used to detect reads-before-initialization: each object tracks which of
//! its bytes have been written; a read overlapping an unwritten range is an
//! illegal access of kind [`crate::IllegalKind::UninitRead`] in validation
//! traces.

/// A set of disjoint, sorted, half-open `[start, end)` intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Disjoint, non-adjacent, sorted intervals.
    runs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Inserts `[start, end)`, merging with existing runs.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find all runs overlapping or adjacent to [start, end).
        let lo = self.runs.partition_point(|&(_, e)| e < start);
        let hi = self.runs.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.runs.insert(lo, (start, end));
            return;
        }
        let new_start = start.min(self.runs[lo].0);
        let new_end = end.max(self.runs[hi - 1].1);
        self.runs.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Returns `true` if every byte of `[start, end)` is covered.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let idx = self.runs.partition_point(|&(s, _)| s <= start);
        match idx.checked_sub(1).map(|i| self.runs[i]) {
            Some((_, e)) => e >= end,
            None => false,
        }
    }

    /// Returns `true` if any byte of `[start, end)` is covered.
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let lo = self.runs.partition_point(|&(_, e)| e <= start);
        self.runs.get(lo).is_some_and(|&(s, _)| s < end)
    }

    /// Returns the number of runs (for tests).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Returns the total number of covered bytes.
    pub fn covered_bytes(&self) -> u64 {
        self.runs.iter().map(|&(s, e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_cover() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        assert!(s.covers(10, 20));
        assert!(s.covers(12, 15));
        assert!(!s.covers(5, 12));
        assert!(!s.covers(15, 25));
        assert!(!s.covers(30, 31));
    }

    #[test]
    fn merging_adjacent_and_overlapping() {
        let mut s = IntervalSet::new();
        s.insert(0, 10);
        s.insert(20, 30);
        assert_eq!(s.run_count(), 2);
        s.insert(10, 20); // bridges
        assert_eq!(s.run_count(), 1);
        assert!(s.covers(0, 30));
    }

    #[test]
    fn overlapping_insert_extends() {
        let mut s = IntervalSet::new();
        s.insert(5, 15);
        s.insert(10, 25);
        assert_eq!(s.run_count(), 1);
        assert!(s.covers(5, 25));
        assert_eq!(s.covered_bytes(), 20);
    }

    #[test]
    fn intersects_detects_partial_overlap() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        assert!(s.intersects(15, 30));
        assert!(s.intersects(0, 11));
        assert!(!s.intersects(0, 10));
        assert!(!s.intersects(20, 30));
    }

    #[test]
    fn empty_ranges_are_noops() {
        let mut s = IntervalSet::new();
        s.insert(5, 5);
        assert_eq!(s.run_count(), 0);
        assert!(s.covers(7, 7));
        assert!(!s.intersects(0, 0));
    }

    #[test]
    fn many_inserts_stay_normalized() {
        let mut s = IntervalSet::new();
        for i in (0..100).step_by(2) {
            s.insert(i, i + 1);
        }
        assert_eq!(s.run_count(), 50);
        for i in (1..100).step_by(2) {
            s.insert(i, i + 1);
        }
        assert_eq!(s.run_count(), 1);
        assert!(s.covers(0, 100));
    }
}
