//! Environmental-change plans for diagnostic re-execution.
//!
//! A [`ChangePlan`] tells the allocator extension which environmental
//! change to apply per bug type during one re-execution iteration
//! (paper §4). The diagnosis engine composes plans:
//!
//! * phase 1 uses [`ChangePlan::all_preventive`] — every change in
//!   preventive form on all objects;
//! * phase 2 probes one bug type `b` with [`ChangePlan::probe`] — the
//!   exposing change for `b`, preventive changes for the other undecided
//!   and identified types;
//! * the binary call-site search scopes the exposing change to half of the
//!   candidate call-sites with [`Mode::ExposeOnly`], the rest receiving
//!   the preventive change.

use std::collections::HashSet;

use fa_proc::CallSite;

use crate::bugtype::BugType;

/// How one bug type's environmental change is applied during re-execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Mode {
    /// No change for this bug type.
    #[default]
    Off,
    /// Apply the preventive change to all objects.
    Prevent,
    /// Apply the exposing change to all objects.
    Expose,
    /// Apply the exposing change to objects allocated/deallocated at the
    /// given call-sites and the preventive change everywhere else — the
    /// binary-search scoping of paper §4.2.
    ExposeOnly(HashSet<CallSite>),
    /// Apply the exposing change everywhere *except* the given call-sites,
    /// which receive the preventive change — used by the multi-site search
    /// to keep already-identified sites neutralized while hunting for the
    /// next one.
    ExposeExcept(HashSet<CallSite>),
}

impl Mode {
    /// Returns `true` if this mode applies any change at all.
    pub fn active(&self) -> bool {
        !matches!(self, Mode::Off)
    }

    /// Returns `true` if the *exposing* change applies at `site`.
    pub fn exposes(&self, site: CallSite) -> bool {
        match self {
            Mode::Off | Mode::Prevent => false,
            Mode::Expose => true,
            Mode::ExposeOnly(set) => set.contains(&site),
            Mode::ExposeExcept(set) => !set.contains(&site),
        }
    }
}

/// The per-bug-type environmental changes for one re-execution iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChangePlan {
    /// Buffer overflow: padding (preventive) / canary padding (exposing).
    pub overflow: Mode,
    /// Dangling read: delay free / canary-fill delayed objects.
    pub dangling_read: Mode,
    /// Dangling write: delay free / canary-fill delayed objects.
    pub dangling_write: Mode,
    /// Double free: delay free + parameter check / parameter check.
    pub double_free: Mode,
    /// Uninitialized read: zero-fill / canary-fill new objects.
    pub uninit_read: Mode,
    /// Heap marking (paper §4.1, Fig. 3): canary-fill free chunks before
    /// re-execution so pre-checkpoint bug triggers still manifest.
    pub heap_marking: bool,
}

impl ChangePlan {
    /// No changes at all — plain re-execution (the phase-1 probe for
    /// nondeterministic bugs uses this together with a timing change).
    pub fn none() -> ChangePlan {
        ChangePlan::default()
    }

    /// Every change in preventive form, applied to all objects (phase 1).
    pub fn all_preventive() -> ChangePlan {
        ChangePlan {
            overflow: Mode::Prevent,
            dangling_read: Mode::Prevent,
            dangling_write: Mode::Prevent,
            double_free: Mode::Prevent,
            uninit_read: Mode::Prevent,
            heap_marking: false,
        }
    }

    /// Phase-2 probe: exposing change for `expose`, preventive changes for
    /// every type in `prevent`, nothing for the rest.
    pub fn probe(expose: BugType, prevent: &[BugType]) -> ChangePlan {
        let mut plan = ChangePlan::none();
        for &b in prevent {
            if b != expose {
                *plan.mode_mut(b) = Mode::Prevent;
            }
        }
        *plan.mode_mut(expose) = Mode::Expose;
        plan
    }

    /// Returns the mode for a bug type.
    pub fn mode(&self, bug: BugType) -> &Mode {
        match bug {
            BugType::BufferOverflow => &self.overflow,
            BugType::DanglingRead => &self.dangling_read,
            BugType::DanglingWrite => &self.dangling_write,
            BugType::DoubleFree => &self.double_free,
            BugType::UninitRead => &self.uninit_read,
        }
    }

    /// Returns the mode for a bug type, mutably.
    pub fn mode_mut(&mut self, bug: BugType) -> &mut Mode {
        match bug {
            BugType::BufferOverflow => &mut self.overflow,
            BugType::DanglingRead => &mut self.dangling_read,
            BugType::DanglingWrite => &mut self.dangling_write,
            BugType::DoubleFree => &mut self.double_free,
            BugType::UninitRead => &mut self.uninit_read,
        }
    }

    /// Returns `true` if frees must be delayed under this plan.
    ///
    /// Any active dangling or double-free change implies delay-free:
    /// the preventive form delays recycling, the exposing form delays it
    /// *and* canary-fills (paper Table 1).
    pub fn delays_frees(&self) -> bool {
        self.dangling_read.active() || self.dangling_write.active() || self.double_free.active()
    }

    /// Returns `true` if a freed object at dealloc call-site `site` must
    /// be canary-filled (exposing form of the dangling changes).
    pub fn canary_on_free(&self, site: CallSite) -> bool {
        self.dangling_read.exposes(site) || self.dangling_write.exposes(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_sets_expose_and_prevent() {
        let plan = ChangePlan::probe(
            BugType::BufferOverflow,
            &[BugType::DanglingRead, BugType::DoubleFree],
        );
        assert_eq!(plan.overflow, Mode::Expose);
        assert_eq!(plan.dangling_read, Mode::Prevent);
        assert_eq!(plan.double_free, Mode::Prevent);
        assert_eq!(plan.uninit_read, Mode::Off);
    }

    #[test]
    fn probe_expose_wins_over_prevent() {
        // Even if the expose target is also listed in prevent, exposing
        // takes precedence (Su ∪ Si − {b} semantics).
        let plan = ChangePlan::probe(BugType::UninitRead, &BugType::ALL);
        assert_eq!(plan.uninit_read, Mode::Expose);
        assert_eq!(plan.overflow, Mode::Prevent);
    }

    #[test]
    fn delay_free_implied_by_dangling_changes() {
        assert!(!ChangePlan::none().delays_frees());
        assert!(ChangePlan::all_preventive().delays_frees());
        let plan = ChangePlan::probe(BugType::DoubleFree, &[]);
        assert!(plan.delays_frees());
    }

    #[test]
    fn expose_only_scopes_by_site() {
        let site_a = CallSite([1, 0, 0]);
        let site_b = CallSite([2, 0, 0]);
        let mode = Mode::ExposeOnly([site_a].into_iter().collect());
        assert!(mode.exposes(site_a));
        assert!(!mode.exposes(site_b));
        assert!(mode.active());
    }

    #[test]
    fn expose_except_inverts_scope() {
        let site_a = CallSite([1, 0, 0]);
        let site_b = CallSite([2, 0, 0]);
        let mode = Mode::ExposeExcept([site_a].into_iter().collect());
        assert!(!mode.exposes(site_a));
        assert!(mode.exposes(site_b));
        assert!(mode.active());
    }

    #[test]
    fn canary_on_free_follows_exposure_scope() {
        let site_a = CallSite([1, 0, 0]);
        let site_b = CallSite([2, 0, 0]);
        let mut plan = ChangePlan::all_preventive();
        plan.dangling_read = Mode::ExposeOnly([site_a].into_iter().collect());
        assert!(plan.canary_on_free(site_a));
        assert!(!plan.canary_on_free(site_b));
    }
}
