//! The per-object metadata table.
//!
//! The extension "adds 16 bytes of meta data for each memory object"
//! (paper §7.6.2). This table is that metadata: for every live or
//! delay-freed object it records size, allocation call-site, applied
//! changes, and (when needed) initialized ranges. It supports range lookup
//! so every application load/store can be classified in O(log n).

use std::collections::BTreeMap;

use fa_mem::Addr;
use fa_proc::CallSite;

use crate::intervals::IntervalSet;

/// Modeled metadata footprint per object, in bytes (paper §7.6.2).
pub const META_BYTES_PER_OBJECT: u64 = 16;

/// Padding applied around an object by the overflow change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PadInfo {
    /// Bytes of padding before the user area.
    pub left: u64,
    /// Bytes of padding after the user area.
    pub right: u64,
    /// The padding is canary-filled (exposing form).
    pub canary: bool,
}

/// Whether an object is live or sitting in the delay-free quarantine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjState {
    /// Allocated and not yet freed by the application.
    Live,
    /// Freed by the application but retained by a delay-free change.
    Quarantined {
        /// Deallocation call-site that freed it.
        freed_site: CallSite,
        /// The contents were canary-filled on free (exposing form).
        canary: bool,
    },
}

/// Metadata for one tracked object.
#[derive(Clone, Debug)]
pub struct ObjectInfo {
    /// User pointer handed to the application.
    pub user: Addr,
    /// Object size as requested by the application.
    pub size: u64,
    /// Outer pointer actually obtained from the heap (differs from `user`
    /// when left padding was applied).
    pub outer: Addr,
    /// Total heap footprint (user size + padding).
    pub outer_size: u64,
    /// Allocation call-site.
    pub alloc_site: CallSite,
    /// Monotonic allocation sequence number.
    pub seq: u64,
    /// Applied padding, if any.
    pub pad: Option<PadInfo>,
    /// The object was zero-filled at allocation.
    pub zero_filled: bool,
    /// The object was canary-filled at allocation (uninit exposing form).
    pub canary_filled: bool,
    /// Liveness state.
    pub state: ObjState,
    /// Initialized (written) byte ranges, tracked when an uninit-read
    /// change or tracing is active.
    pub written: Option<IntervalSet>,
    /// The index of the guarded sentry slot this object was redirected
    /// into, when it was sampled by the sentry tier.
    pub sentried: Option<usize>,
}

impl ObjectInfo {
    /// Returns `true` if `addr` lies within the user area.
    pub fn in_user(&self, addr: Addr) -> bool {
        addr >= self.user && addr.0 < self.user.0 + self.size
    }

    /// Returns `true` if `addr` lies within the padding (either side).
    pub fn in_padding(&self, addr: Addr) -> bool {
        if self.pad.is_none() {
            return false;
        }
        addr >= self.outer && addr.0 < self.outer.0 + self.outer_size && !self.in_user(addr)
    }

    /// Returns the offset of `addr` within the user area, if inside.
    pub fn user_offset(&self, addr: Addr) -> Option<u64> {
        self.in_user(addr).then(|| addr - self.user)
    }
}

/// Range-queryable table of tracked objects, keyed by outer address.
#[derive(Clone, Debug, Default)]
pub struct ObjectTable {
    by_outer: BTreeMap<u64, ObjectInfo>,
    /// user → outer for O(log n) free-path lookup.
    user_to_outer: BTreeMap<u64, u64>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable::default()
    }

    /// Inserts a tracked object.
    pub fn insert(&mut self, info: ObjectInfo) {
        self.user_to_outer.insert(info.user.0, info.outer.0);
        self.by_outer.insert(info.outer.0, info);
    }

    /// Removes the object with the given user pointer.
    pub fn remove_by_user(&mut self, user: Addr) -> Option<ObjectInfo> {
        let outer = self.user_to_outer.remove(&user.0)?;
        self.by_outer.remove(&outer)
    }

    /// Looks up the object owning the user pointer.
    pub fn get_by_user(&self, user: Addr) -> Option<&ObjectInfo> {
        let outer = self.user_to_outer.get(&user.0)?;
        self.by_outer.get(outer)
    }

    /// Looks up the object owning the user pointer, mutably.
    pub fn get_by_user_mut(&mut self, user: Addr) -> Option<&mut ObjectInfo> {
        let outer = *self.user_to_outer.get(&user.0)?;
        self.by_outer.get_mut(&outer)
    }

    /// Finds the tracked object whose footprint (padding included)
    /// contains `addr`.
    pub fn find_containing(&self, addr: Addr) -> Option<&ObjectInfo> {
        let (_, info) = self.by_outer.range(..=addr.0).next_back()?;
        (addr.0 < info.outer.0 + info.outer_size).then_some(info)
    }

    /// Finds the containing object mutably.
    pub fn find_containing_mut(&mut self, addr: Addr) -> Option<&mut ObjectInfo> {
        let (&outer, _) = self.by_outer.range(..=addr.0).next_back()?;
        let info = self.by_outer.get_mut(&outer)?;
        (addr.0 < info.outer.0 + info.outer_size).then_some(info)
    }

    /// Iterates over all tracked objects in address order.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectInfo> {
        self.by_outer.values()
    }

    /// Returns the number of tracked objects (live + quarantined).
    pub fn len(&self) -> usize {
        self.by_outer.len()
    }

    /// Returns `true` if no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.by_outer.is_empty()
    }

    /// Returns the modeled metadata footprint (paper Table 6 input).
    pub fn meta_bytes(&self) -> u64 {
        self.len() as u64 * META_BYTES_PER_OBJECT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(outer: u64, left: u64, size: u64, right: u64, seq: u64) -> ObjectInfo {
        ObjectInfo {
            user: Addr(outer + left),
            size,
            outer: Addr(outer),
            outer_size: left + size + right,
            alloc_site: CallSite::default(),
            seq,
            pad: (left + right > 0).then_some(PadInfo {
                left,
                right,
                canary: false,
            }),
            zero_filled: false,
            canary_filled: false,
            state: ObjState::Live,
            written: None,
            sentried: None,
        }
    }

    #[test]
    fn user_lookup() {
        let mut t = ObjectTable::new();
        t.insert(obj(0x1000, 0, 64, 0, 1));
        assert!(t.get_by_user(Addr(0x1000)).is_some());
        assert!(t.get_by_user(Addr(0x1001)).is_none());
        let removed = t.remove_by_user(Addr(0x1000)).unwrap();
        assert_eq!(removed.seq, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn containing_lookup_with_padding() {
        let mut t = ObjectTable::new();
        t.insert(obj(0x1000, 16, 64, 16, 1));
        // Left padding.
        let o = t.find_containing(Addr(0x1008)).unwrap();
        assert!(o.in_padding(Addr(0x1008)));
        // User area.
        let o = t.find_containing(Addr(0x1010)).unwrap();
        assert!(o.in_user(Addr(0x1010)));
        assert_eq!(o.user_offset(Addr(0x1014)), Some(4));
        // Right padding: user ends at 0x1050.
        let o = t.find_containing(Addr(0x1055)).unwrap();
        assert!(o.in_padding(Addr(0x1055)));
        // Past the object.
        assert!(t.find_containing(Addr(0x1000 + 96)).is_none());
        assert!(t.find_containing(Addr(0x500)).is_none());
    }

    #[test]
    fn adjacent_objects_resolve_correctly() {
        let mut t = ObjectTable::new();
        t.insert(obj(0x1000, 0, 64, 0, 1));
        t.insert(obj(0x1040, 0, 64, 0, 2));
        assert_eq!(t.find_containing(Addr(0x103f)).unwrap().seq, 1);
        assert_eq!(t.find_containing(Addr(0x1040)).unwrap().seq, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.meta_bytes(), 32);
    }
}
