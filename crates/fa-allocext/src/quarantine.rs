//! The delay-free quarantine.
//!
//! The preventive change for dangling pointers and double frees "delay\[s\]
//! recycling of deallocated bug-triggering objects for a long time until
//! the memory occupied by these objects reaches a customizable threshold"
//! (paper §2). Quarantined objects keep their heap chunks allocated, so
//! dangling reads still see the old contents (preventive) and dangling
//! writes touch memory nothing else owns.

use std::collections::VecDeque;

use fa_mem::Addr;

/// Default quarantine budget: 1 MB, the threshold used in the paper's
/// experiments (§7.6.1).
pub const DEFAULT_QUARANTINE_BYTES: u64 = 1 << 20;

/// One delay-freed object awaiting real deallocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QEntry {
    /// User pointer of the quarantined object.
    pub user: Addr,
    /// Heap bytes the entry pins (outer size).
    pub bytes: u64,
    /// Allocation sequence number, for stable ordering in reports.
    pub seq: u64,
}

/// FIFO quarantine with a byte budget.
#[derive(Clone, Debug)]
pub struct Quarantine {
    entries: VecDeque<QEntry>,
    bytes: u64,
    threshold: u64,
    /// Cumulative bytes ever delay-freed (paper Table 5 reports the
    /// accumulated space occupied by delay-freed objects).
    pub accumulated_bytes: u64,
    /// Cumulative count of delay-freed objects.
    pub accumulated_objects: u64,
}

impl Quarantine {
    /// Creates a quarantine with the given byte threshold.
    pub fn new(threshold: u64) -> Self {
        Quarantine {
            entries: VecDeque::new(),
            bytes: 0,
            threshold,
            accumulated_bytes: 0,
            accumulated_objects: 0,
        }
    }

    /// Adds an object; returns entries evicted to stay under threshold.
    ///
    /// Eviction order is oldest-first: "deallocating very old delay-freed
    /// objects is usually safe" (paper §2).
    pub fn push(&mut self, entry: QEntry) -> Vec<QEntry> {
        self.bytes += entry.bytes;
        self.accumulated_bytes += entry.bytes;
        self.accumulated_objects += 1;
        self.entries.push_back(entry);
        let mut evicted = Vec::new();
        while self.bytes > self.threshold && self.entries.len() > 1 {
            let old = self
                .entries
                .pop_front()
                .expect("non-empty while over threshold");
            self.bytes -= old.bytes;
            evicted.push(old);
        }
        evicted
    }

    /// Adds an object without enforcing the threshold.
    ///
    /// Used while heap marks are live: real frees during a marked
    /// re-execution would scribble free-list cookies into marked regions
    /// and fake canary corruption, so eviction is suspended.
    pub fn push_unbounded(&mut self, entry: QEntry) -> Vec<QEntry> {
        self.bytes += entry.bytes;
        self.accumulated_bytes += entry.bytes;
        self.accumulated_objects += 1;
        self.entries.push_back(entry);
        Vec::new()
    }

    /// Removes a specific entry (object is being resurrected/reallocated).
    pub fn remove(&mut self, user: Addr) -> Option<QEntry> {
        let pos = self.entries.iter().position(|e| e.user == user)?;
        let entry = self.entries.remove(pos)?;
        self.bytes -= entry.bytes;
        Some(entry)
    }

    /// Returns `true` if `user` is quarantined.
    pub fn contains(&self, user: Addr) -> bool {
        self.entries.iter().any(|e| e.user == user)
    }

    /// Current pinned bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &QEntry> {
        self.entries.iter()
    }

    /// Drains all entries (used when disabling delay-free changes).
    pub fn drain(&mut self) -> Vec<QEntry> {
        self.bytes = 0;
        self.entries.drain(..).collect()
    }

    /// Returns the byte threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl Default for Quarantine {
    fn default() -> Self {
        Quarantine::new(DEFAULT_QUARANTINE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(user: u64, bytes: u64, seq: u64) -> QEntry {
        QEntry {
            user: Addr(user),
            bytes,
            seq,
        }
    }

    #[test]
    fn fifo_eviction_over_threshold() {
        let mut q = Quarantine::new(100);
        assert!(q.push(entry(1, 60, 1)).is_empty());
        assert!(q.push(entry(2, 30, 2)).is_empty());
        let evicted = q.push(entry(3, 50, 3));
        assert_eq!(evicted, vec![entry(1, 60, 1)]);
        assert_eq!(q.bytes(), 80);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn accumulated_accounting_survives_eviction() {
        let mut q = Quarantine::new(50);
        q.push(entry(1, 40, 1));
        q.push(entry(2, 40, 2));
        assert_eq!(q.accumulated_bytes, 80);
        assert_eq!(q.accumulated_objects, 2);
    }

    #[test]
    fn remove_unpins_bytes() {
        let mut q = Quarantine::new(100);
        q.push(entry(1, 60, 1));
        assert!(q.contains(Addr(1)));
        let e = q.remove(Addr(1)).unwrap();
        assert_eq!(e.bytes, 60);
        assert_eq!(q.bytes(), 0);
        assert!(!q.contains(Addr(1)));
        assert!(q.remove(Addr(1)).is_none());
    }

    #[test]
    fn single_oversized_entry_is_retained() {
        // The newest entry is never evicted, even over budget: evicting
        // the object just freed would defeat the change entirely.
        let mut q = Quarantine::new(10);
        let evicted = q.push(entry(1, 100, 1));
        assert!(evicted.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_empties() {
        let mut q = Quarantine::new(100);
        q.push(entry(1, 10, 1));
        q.push(entry(2, 10, 2));
        let all = q.drain();
        assert_eq!(all.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
    }
}
