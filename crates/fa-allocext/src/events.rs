//! Manifestations and traces.
//!
//! Two event families flow out of the allocator extension:
//!
//! * [`Manifestation`]s — the diagnosis-time evidence the engine uses to
//!   conclude "bug type b occurred" and to identify the bug-triggering
//!   call-sites (canary corruption, double-free parameter checks, heap-mark
//!   corruption);
//! * [`TraceEvent`]s — the validation-time record of memory management
//!   operations, patch triggering, and illegal accesses that feeds the
//!   consistency check (paper §5) and the bug report (paper Fig. 5).

use fa_mem::{AccessKind, Addr};
use fa_proc::CallSite;

use crate::bugtype::BugType;

/// Diagnosis-time evidence that a bug manifested during re-execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Manifestation {
    /// Canary corruption in the padding of a live object — a buffer
    /// overflow on that object.
    PaddingCorrupt {
        /// Allocation call-site of the overflowed object.
        alloc_site: CallSite,
        /// User pointer of the overflowed object.
        user: Addr,
        /// The corrupted side and first bad offset within the padding.
        right_side: bool,
        /// First corrupted byte offset within the padding region.
        offset: u64,
    },
    /// Canary corruption inside a delay-freed object — a dangling write.
    QuarantineCorrupt {
        /// Deallocation call-site that freed the object.
        freed_site: CallSite,
        /// Allocation call-site of the object.
        alloc_site: CallSite,
        /// User pointer of the corrupted quarantined object.
        user: Addr,
        /// First corrupted byte offset within the object.
        offset: u64,
    },
    /// A deallocation parameter named an object that is already free.
    DoubleFree {
        /// Call-site of the second (offending) free.
        dealloc_site: CallSite,
        /// Call-site of the first free — the patch point: delaying the
        /// first free keeps the object resident so later frees are caught
        /// by the parameter check and ignored.
        first_free_site: CallSite,
        /// The doubly freed pointer.
        user: Addr,
    },
    /// Canary corruption in a heap-marked free region: a bug triggered
    /// *before* the checkpoint (paper §4.1, Fig. 3).
    MarkCorrupt {
        /// Address of the first corrupted marked byte.
        addr: Addr,
    },
}

impl Manifestation {
    /// Returns the bug type this manifestation is evidence of, when it
    /// maps to exactly one.
    pub fn bug_type(&self) -> Option<BugType> {
        match self {
            Manifestation::PaddingCorrupt { .. } => Some(BugType::BufferOverflow),
            Manifestation::QuarantineCorrupt { .. } => Some(BugType::DanglingWrite),
            Manifestation::DoubleFree { .. } => Some(BugType::DoubleFree),
            Manifestation::MarkCorrupt { .. } => None,
        }
    }
}

/// Classification of an illegal access observed by the Pin-analog tracer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IllegalKind {
    /// A write into an object's padding (an overflow neutralized by the
    /// padding change).
    PaddingWrite,
    /// A read of a delay-freed object (a dangling read neutralized by the
    /// delay-free change).
    QuarantineRead,
    /// A write to a delay-freed object (a dangling write neutralized by
    /// the delay-free change).
    QuarantineWrite,
    /// A read of never-written bytes of an object (an uninitialized read,
    /// neutralized by the zero-fill change when patched).
    UninitRead,
}

/// One entry of the validation-mode trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A `malloc` completed.
    Alloc {
        /// Allocation sequence number.
        seq: u64,
        /// User pointer returned to the application.
        user: Addr,
        /// Requested size.
        size: u64,
        /// Allocation call-site.
        site: CallSite,
        /// Index of the runtime patch that fired, if any.
        patch: Option<usize>,
    },
    /// A `free` completed (or was delayed).
    Dealloc {
        /// Allocation sequence number of the freed object.
        seq: u64,
        /// Freed user pointer.
        user: Addr,
        /// Deallocation call-site.
        site: CallSite,
        /// Index of the runtime patch that delayed the free, if any.
        delayed_by: Option<usize>,
    },
    /// An illegal access was observed (and neutralized by a change).
    Illegal {
        /// What kind of illegal access.
        kind: IllegalKind,
        /// Read or write.
        access: AccessKind,
        /// Call-site of the accessing code — the "instruction" of the
        /// paper's illegal access trace.
        access_site: CallSite,
        /// Allocation sequence number of the touched object.
        obj_seq: u64,
        /// Offset of the access within the object (or its padding).
        offset: u64,
        /// Index of the runtime patch whose change neutralized it, if any.
        patch: Option<usize>,
    },
}

impl TraceEvent {
    /// Returns `true` for illegal-access events.
    pub fn is_illegal(&self) -> bool {
        matches!(self, TraceEvent::Illegal { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifestation_bug_types() {
        let m = Manifestation::PaddingCorrupt {
            alloc_site: CallSite::default(),
            user: Addr(1),
            right_side: true,
            offset: 0,
        };
        assert_eq!(m.bug_type(), Some(BugType::BufferOverflow));
        let m = Manifestation::QuarantineCorrupt {
            freed_site: CallSite::default(),
            alloc_site: CallSite::default(),
            user: Addr(1),
            offset: 4,
        };
        assert_eq!(m.bug_type(), Some(BugType::DanglingWrite));
        let m = Manifestation::DoubleFree {
            dealloc_site: CallSite::default(),
            first_free_site: CallSite::default(),
            user: Addr(1),
        };
        assert_eq!(m.bug_type(), Some(BugType::DoubleFree));
        let m = Manifestation::MarkCorrupt { addr: Addr(1) };
        assert_eq!(m.bug_type(), None);
    }

    #[test]
    fn illegal_predicate() {
        let e = TraceEvent::Alloc {
            seq: 0,
            user: Addr(1),
            size: 8,
            site: CallSite::default(),
            patch: None,
        };
        assert!(!e.is_illegal());
        let e = TraceEvent::Illegal {
            kind: IllegalKind::PaddingWrite,
            access: AccessKind::Write,
            access_site: CallSite::default(),
            obj_seq: 0,
            offset: 3,
            patch: Some(0),
        };
        assert!(e.is_illegal());
    }
}
