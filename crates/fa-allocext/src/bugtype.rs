//! The memory bug taxonomy First-Aid diagnoses (paper Table 1).

use core::fmt;

use serde::{Deserialize, Serialize};

/// A memory management bug type First-Aid can diagnose and patch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum BugType {
    /// A write past either end of a heap object.
    BufferOverflow,
    /// A read through a pointer to freed memory.
    DanglingRead,
    /// A write through a pointer to freed memory.
    DanglingWrite,
    /// Freeing the same object twice.
    DoubleFree,
    /// Reading a newly allocated object before initializing it.
    UninitRead,
}

impl BugType {
    /// All bug types, in the order the diagnosis engine probes them.
    ///
    /// Directly identifiable types (via canary corruption or deallocation
    /// parameters) come first; the types requiring binary call-site search
    /// (paper §4.2) come last, since they are the expensive ones.
    pub const ALL: [BugType; 5] = [
        BugType::BufferOverflow,
        BugType::DanglingWrite,
        BugType::DoubleFree,
        BugType::DanglingRead,
        BugType::UninitRead,
    ];

    /// Returns `true` if the bug-triggering call-sites can be read directly
    /// off the manifestation (canary corruption location or deallocation
    /// parameters), `false` if binary search over call-sites is required.
    pub fn directly_identifiable(self) -> bool {
        match self {
            BugType::BufferOverflow | BugType::DanglingWrite | BugType::DoubleFree => true,
            BugType::DanglingRead | BugType::UninitRead => false,
        }
    }

    /// Returns `true` if the patch applies at allocation call-sites,
    /// `false` for deallocation call-sites (paper Table 1, last column).
    pub fn patches_at_allocation(self) -> bool {
        match self {
            BugType::BufferOverflow | BugType::UninitRead => true,
            BugType::DanglingRead | BugType::DanglingWrite | BugType::DoubleFree => false,
        }
    }

    /// Short stable name used in logs and serialized patches.
    pub fn label(self) -> &'static str {
        match self {
            BugType::BufferOverflow => "buffer overflow",
            BugType::DanglingRead => "dangling pointer read",
            BugType::DanglingWrite => "dangling pointer write",
            BugType::DoubleFree => "double free",
            BugType::UninitRead => "uninitialized read",
        }
    }
}

impl fmt::Display for BugType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_type_once() {
        let mut v = BugType::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn direct_identifiability_matches_paper() {
        assert!(BugType::BufferOverflow.directly_identifiable());
        assert!(BugType::DanglingWrite.directly_identifiable());
        assert!(BugType::DoubleFree.directly_identifiable());
        assert!(!BugType::DanglingRead.directly_identifiable());
        assert!(!BugType::UninitRead.directly_identifiable());
    }

    #[test]
    fn patch_points_match_table1() {
        assert!(BugType::BufferOverflow.patches_at_allocation());
        assert!(BugType::UninitRead.patches_at_allocation());
        assert!(!BugType::DanglingRead.patches_at_allocation());
        assert!(!BugType::DanglingWrite.patches_at_allocation());
        assert!(!BugType::DoubleFree.patches_at_allocation());
    }

    #[test]
    fn serde_roundtrip() {
        for b in BugType::ALL {
            let s = serde_json::to_string(&b).unwrap();
            assert_eq!(serde_json::from_str::<BugType>(&s).unwrap(), b);
        }
    }
}
