//! Runtime patches.
//!
//! A runtime patch is "a pair of a preventive change corresponding to the
//! identified bug type and a patch application point" (paper §2), where the
//! application point is the allocation or deallocation call-site of the
//! bug-triggering memory objects. Patches are serializable: First-Aid
//! stores them persistently per program so subsequent runs and other
//! processes of the same executable are protected.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use fa_proc::{CallSite, SymbolTable};

use crate::bugtype::BugType;

/// The preventive change a patch applies (paper Table 1, column 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PreventiveChange {
    /// Pad both ends of objects allocated at the patch point.
    AddPadding,
    /// Delay recycling of objects freed at the patch point.
    DelayFree,
    /// Zero-fill objects allocated at the patch point.
    FillZero,
}

impl PreventiveChange {
    /// The canonical preventive change for a bug type.
    pub fn for_bug(bug: BugType) -> PreventiveChange {
        match bug {
            BugType::BufferOverflow => PreventiveChange::AddPadding,
            BugType::DanglingRead | BugType::DanglingWrite | BugType::DoubleFree => {
                PreventiveChange::DelayFree
            }
            BugType::UninitRead => PreventiveChange::FillZero,
        }
    }

    /// Short label used in bug reports ("delay free", "add padding", ...).
    pub fn label(self) -> &'static str {
        match self {
            PreventiveChange::AddPadding => "add padding",
            PreventiveChange::DelayFree => "delay free",
            PreventiveChange::FillZero => "fill with zero",
        }
    }
}

/// The pseudo call-site of program-wide (generic) patches.
///
/// When precise diagnosis fails, the degradation ladder falls back to
/// best-effort prevention (paper §3: whole-heap padding + delayed
/// free). Such patches carry this sentinel site; `PatchSet` matches
/// them against *every* call-site that has no precise patch of its
/// own. The all-ones frames round-trip exactly through the JSON pool.
pub const GENERIC_SITE: CallSite = CallSite([u64::MAX; 3]);

/// A runtime patch: a preventive change bound to a call-site.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Patch {
    /// The diagnosed bug type this patch neutralizes.
    pub bug: BugType,
    /// The preventive change to apply.
    pub change: PreventiveChange,
    /// The allocation/deallocation call-site it applies at.
    pub site: CallSite,
    /// Human-readable names of the call-site frames (innermost first),
    /// for bug reports and logs.
    pub site_names: Vec<String>,
}

impl Patch {
    /// Builds a patch for `bug` at `site`, resolving names via `symbols`.
    pub fn new(bug: BugType, site: CallSite, symbols: &SymbolTable) -> Patch {
        Patch {
            bug,
            change: PreventiveChange::for_bug(bug),
            site,
            site_names: site
                .0
                .iter()
                .filter(|&&id| id != fa_proc::NO_SITE)
                .map(|&id| symbols.name(id).to_owned())
                .collect(),
        }
    }

    /// Builds a program-wide best-effort patch for `bug`: same
    /// preventive change, but applied at every call-site (the generic
    /// rung of the degradation ladder).
    pub fn generic(bug: BugType) -> Patch {
        Patch {
            bug,
            change: PreventiveChange::for_bug(bug),
            site: GENERIC_SITE,
            site_names: vec!["<any call-site>".to_owned()],
        }
    }

    /// Returns `true` if this patch applies program-wide.
    pub fn is_generic(&self) -> bool {
        self.site == GENERIC_SITE
    }

    /// Returns `true` if this patch fires at allocation call-sites.
    pub fn at_allocation(&self) -> bool {
        matches!(
            self.change,
            PreventiveChange::AddPadding | PreventiveChange::FillZero
        )
    }
}

/// The set of patches active in a process, indexed for O(1) call-site
/// matching on the allocation/deallocation fast path.
#[derive(Clone, Debug, Default)]
pub struct PatchSet {
    patches: Vec<Patch>,
    by_alloc_site: HashMap<CallSite, usize>,
    by_dealloc_site: HashMap<CallSite, usize>,
    /// Program-wide fallback patches (the generic ladder rung): any
    /// call-site without a precise patch matches these.
    generic_alloc: Option<usize>,
    generic_dealloc: Option<usize>,
}

impl PatchSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PatchSet::default()
    }

    /// Builds a set from patches; later patches win on site collision.
    pub fn from_patches(patches: impl IntoIterator<Item = Patch>) -> PatchSet {
        let mut set = PatchSet::new();
        for p in patches {
            set.add(p);
        }
        set
    }

    /// Adds one patch.
    pub fn add(&mut self, patch: Patch) {
        let idx = self.patches.len();
        if patch.is_generic() {
            if patch.at_allocation() {
                self.generic_alloc = Some(idx);
            } else {
                self.generic_dealloc = Some(idx);
            }
        } else if patch.at_allocation() {
            self.by_alloc_site.insert(patch.site, idx);
        } else {
            self.by_dealloc_site.insert(patch.site, idx);
        }
        self.patches.push(patch);
    }

    /// Removes every patch at `site` (used when validation fails).
    /// Passing [`GENERIC_SITE`] removes the program-wide patches.
    pub fn remove_site(&mut self, site: CallSite) {
        self.patches.retain(|p| p.site != site);
        self.reindex();
    }

    fn reindex(&mut self) {
        self.by_alloc_site.clear();
        self.by_dealloc_site.clear();
        self.generic_alloc = None;
        self.generic_dealloc = None;
        for (idx, p) in self.patches.iter().enumerate() {
            if p.is_generic() {
                if p.at_allocation() {
                    self.generic_alloc = Some(idx);
                } else {
                    self.generic_dealloc = Some(idx);
                }
            } else if p.at_allocation() {
                self.by_alloc_site.insert(p.site, idx);
            } else {
                self.by_dealloc_site.insert(p.site, idx);
            }
        }
    }

    /// Looks up the patch (if any) matching an allocation at `site`.
    /// Precise call-site patches win; otherwise the program-wide
    /// generic patch (if installed) matches everything.
    pub fn match_alloc(&self, site: CallSite) -> Option<(usize, &Patch)> {
        self.by_alloc_site
            .get(&site)
            .copied()
            .or(self.generic_alloc)
            .map(|idx| (idx, &self.patches[idx]))
    }

    /// Looks up the patch (if any) matching a deallocation at `site`,
    /// with the same generic fallback as [`PatchSet::match_alloc`].
    pub fn match_dealloc(&self, site: CallSite) -> Option<(usize, &Patch)> {
        self.by_dealloc_site
            .get(&site)
            .copied()
            .or(self.generic_dealloc)
            .map(|idx| (idx, &self.patches[idx]))
    }

    /// Returns `true` if a program-wide (generic) patch is installed.
    pub fn has_generic(&self) -> bool {
        self.generic_alloc.is_some() || self.generic_dealloc.is_some()
    }

    /// Returns all patches.
    pub fn patches(&self) -> &[Patch] {
        &self.patches
    }

    /// Returns the number of patches.
    pub fn len(&self) -> usize {
        self.patches.len()
    }

    /// Returns `true` if no patches are installed.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(id: u64) -> CallSite {
        CallSite([id, 0, 0])
    }

    #[test]
    fn canonical_changes_match_table1() {
        assert_eq!(
            PreventiveChange::for_bug(BugType::BufferOverflow),
            PreventiveChange::AddPadding
        );
        assert_eq!(
            PreventiveChange::for_bug(BugType::DanglingRead),
            PreventiveChange::DelayFree
        );
        assert_eq!(
            PreventiveChange::for_bug(BugType::DanglingWrite),
            PreventiveChange::DelayFree
        );
        assert_eq!(
            PreventiveChange::for_bug(BugType::DoubleFree),
            PreventiveChange::DelayFree
        );
        assert_eq!(
            PreventiveChange::for_bug(BugType::UninitRead),
            PreventiveChange::FillZero
        );
    }

    #[test]
    fn matching_respects_application_point() {
        let mut symbols = SymbolTable::new();
        symbols.intern("f");
        let overflow = Patch::new(BugType::BufferOverflow, site(1), &symbols);
        let dangling = Patch::new(BugType::DanglingRead, site(2), &symbols);
        let set = PatchSet::from_patches([overflow, dangling]);
        assert!(set.match_alloc(site(1)).is_some());
        assert!(
            set.match_dealloc(site(1)).is_none(),
            "padding is alloc-side"
        );
        assert!(set.match_dealloc(site(2)).is_some());
        assert!(
            set.match_alloc(site(2)).is_none(),
            "delay free is dealloc-side"
        );
        assert!(set.match_alloc(site(9)).is_none());
    }

    #[test]
    fn remove_site_drops_patch() {
        let symbols = SymbolTable::new();
        let mut set = PatchSet::from_patches([
            Patch::new(BugType::BufferOverflow, site(1), &symbols),
            Patch::new(BugType::UninitRead, site(2), &symbols),
        ]);
        assert_eq!(set.len(), 2);
        set.remove_site(site(1));
        assert_eq!(set.len(), 1);
        assert!(set.match_alloc(site(1)).is_none());
        assert!(set.match_alloc(site(2)).is_some());
    }

    #[test]
    fn generic_patches_match_every_unpatched_site() {
        let symbols = SymbolTable::new();
        let mut set = PatchSet::from_patches([
            Patch::generic(BugType::BufferOverflow),
            Patch::generic(BugType::DanglingRead),
        ]);
        assert!(set.has_generic());
        // Any site matches the program-wide patches.
        let (_, pad) = set.match_alloc(site(7)).unwrap();
        assert!(pad.is_generic());
        assert_eq!(pad.change, PreventiveChange::AddPadding);
        let (_, df) = set.match_dealloc(site(42)).unwrap();
        assert_eq!(df.change, PreventiveChange::DelayFree);
        // A precise patch shadows the generic one at its own site.
        set.add(Patch::new(BugType::UninitRead, site(7), &symbols));
        let (_, precise) = set.match_alloc(site(7)).unwrap();
        assert!(!precise.is_generic());
        assert!(set.match_alloc(site(8)).unwrap().1.is_generic());
        // Removing GENERIC_SITE uninstalls only the program-wide rung.
        set.remove_site(GENERIC_SITE);
        assert!(!set.has_generic());
        assert!(set.match_alloc(site(8)).is_none());
        assert!(set.match_alloc(site(7)).is_some());
    }

    #[test]
    fn generic_patch_serde_roundtrip() {
        let p = Patch::generic(BugType::BufferOverflow);
        let s = serde_json::to_string(&p).unwrap();
        let back: Patch = serde_json::from_str(&s).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.site, GENERIC_SITE, "u64::MAX frames survive JSON");
        assert!(back.is_generic());
    }

    #[test]
    fn patch_serde_roundtrip() {
        let mut symbols = SymbolTable::new();
        let id = symbols.intern("util_ald_free");
        let p = Patch::new(BugType::DanglingRead, CallSite([id, 0, 0]), &symbols);
        let s = serde_json::to_string(&p).unwrap();
        let back: Patch = serde_json::from_str(&s).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.site_names, vec!["util_ald_free".to_owned()]);
    }
}
