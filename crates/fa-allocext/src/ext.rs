//! The extension allocator: normal / diagnostic / validation modes.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use fa_heap::Heap;
use fa_mem::{AccessKind, Addr, MemFault, SimMemory};
use fa_proc::{AllocBackend, CallSite, Clock, Fault};
use fa_sentry::{
    SentryConfig, SentryEngine, SentryMetrics, SlotPlacement, TrapKind, TrapRecord, SLOT_SLACK,
};

use crate::canary::{check_canary, fill_canary};
use crate::changes::ChangePlan;
use crate::events::{IllegalKind, Manifestation, TraceEvent};
use crate::intervals::IntervalSet;
use crate::objtable::{ObjState, ObjectInfo, ObjectTable, PadInfo};
use crate::patch::{PatchSet, PreventiveChange};
use crate::quarantine::{QEntry, Quarantine, DEFAULT_QUARANTINE_BYTES};

/// Padding added on each side of a patched/changed object, in bytes.
///
/// Both sides together cost 1016 bytes per object, matching the padding
/// space overhead the paper reports per object in Table 5 ("the padding
/// used in First-Aid is relatively large (almost 1 KB)").
pub const PAD_EACH_SIDE: u64 = 508;

/// Virtual cost of the patch-pool query on each malloc/free, in ns.
const COST_PATCH_QUERY: u64 = 25;
/// Virtual cost of object-metadata maintenance per operation, in ns.
const COST_META: u64 = 20;
/// Extra virtual cost per operation in diagnostic/validation modes, in ns.
const COST_DIAG: u64 = 60;
/// Per-access virtual cost of Pin-style instrumentation in validation
/// mode, in ns.
const COST_PIN_TRACE: u64 = 2_500;
/// Virtual cost of redirecting a sampled allocation into a guarded
/// sentry slot (mprotect-style page work), in ns.
const COST_SENTRY_PLACE: u64 = 300;
/// Virtual cost of poisoning a sentry slot on free, in ns.
const COST_SENTRY_POISON: u64 = 150;
/// Virtual cost of filling `len` bytes (canary/zero), in ns.
fn cost_fill(len: u64) -> u64 {
    10 + len.div_ceil(8) * 2
}

/// Operating mode of the extension (paper §3, "Memory allocator
/// extension").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExtMode {
    /// Production mode: apply matching runtime patches only.
    Normal,
    /// Re-execution mode: apply the active [`ChangePlan`] to all or a
    /// subset of objects; collect call-sites and manifestations.
    Diagnostic,
    /// Patch-validation mode: randomized allocation, full tracing,
    /// patches active.
    Validation,
}

/// Aggregate statistics the experiment harnesses read off the extension.
#[derive(Clone, Debug, Default)]
pub struct ExtCounters {
    /// Objects that received padding.
    pub objects_padded: u64,
    /// Objects whose free was delayed.
    pub objects_delayed: u64,
    /// Objects zero-filled at allocation.
    pub objects_zero_filled: u64,
    /// Objects canary-filled at allocation.
    pub objects_canary_filled: u64,
    /// Objects that received *any* environmental change — the "objects"
    /// column of paper Table 4.
    pub changed_objects: u64,
    /// Distinct call-sites at which changes were applied — the
    /// "call-sites" column of paper Table 4.
    pub changed_sites: HashSet<CallSite>,
    /// Patch trigger counts by patch index (validation criterion (a)).
    pub patch_triggers: HashMap<usize, u64>,
    /// Current padding bytes held live.
    pub cur_padding_bytes: u64,
    /// Maximum simultaneous padding bytes (paper Table 5, padding rows).
    pub max_padding_bytes: u64,
    /// Illegal padding writes observed (overflows absorbed).
    pub padding_writes: u64,
    /// Reads of quarantined objects observed.
    pub quarantine_reads: u64,
    /// Writes to quarantined objects observed.
    pub quarantine_writes: u64,
    /// Reads of uninitialized bytes observed.
    pub uninit_reads: u64,
}

/// The First-Aid memory allocator extension.
///
/// Implements [`AllocBackend`] so it can be swapped in for the plain
/// allocator of a running process (the paper modifies the Lea allocator in
/// glibc; here the extension wraps the simulated Lea-style heap).
#[derive(Clone)]
pub struct ExtAllocator {
    heap: Heap,
    mode: ExtMode,
    plan: ChangePlan,
    /// The active patch set, shared with the pool's published snapshot
    /// when installed from a fleet pool: installing fleet patches is an
    /// `Arc` handoff, not a copy.
    patches: Arc<PatchSet>,
    table: ObjectTable,
    quarantine: Quarantine,
    /// Canary-marked free regions from heap marking: `(addr, len)`.
    pub(crate) marks: Vec<(u64, u64)>,
    manifests: Vec<Manifestation>,
    trace: Vec<TraceEvent>,
    tracing: bool,
    track_init: bool,
    seq: u64,
    counters: ExtCounters,
    alloc_sites_seen: Vec<CallSite>,
    alloc_sites_set: HashSet<CallSite>,
    dealloc_sites_seen: Vec<CallSite>,
    dealloc_sites_set: HashSet<CallSite>,
    /// Padding per side for the overflow change (ablation knob; the
    /// paper uses 508 = 1016 bytes per object).
    pad_each: u64,
    /// The always-on sampling sentry tier, when enabled.
    sentry: Option<SentryEngine>,
}

impl ExtAllocator {
    /// Attaches the extension to a heap, starting in normal mode with no
    /// patches.
    pub fn attach(heap: Heap) -> Self {
        ExtAllocator {
            heap,
            mode: ExtMode::Normal,
            plan: ChangePlan::none(),
            patches: Arc::new(PatchSet::new()),
            table: ObjectTable::new(),
            quarantine: Quarantine::new(DEFAULT_QUARANTINE_BYTES),
            marks: Vec::new(),
            manifests: Vec::new(),
            trace: Vec::new(),
            tracing: false,
            track_init: false,
            seq: 0,
            counters: ExtCounters::default(),
            alloc_sites_seen: Vec::new(),
            alloc_sites_set: HashSet::new(),
            dealloc_sites_seen: Vec::new(),
            dealloc_sites_set: HashSet::new(),
            pad_each: PAD_EACH_SIDE,
            sentry: None,
        }
    }

    // ------------------------------------------------------------------
    // Mode control
    // ------------------------------------------------------------------

    /// Switches to normal mode with the given patch set. Accepts a
    /// plain `PatchSet` or an `Arc<PatchSet>` (a pool-published
    /// snapshot installs without copying a single patch).
    pub fn set_normal(&mut self, patches: impl Into<Arc<PatchSet>>) {
        self.mode = ExtMode::Normal;
        self.patches = patches.into();
        self.plan = ChangePlan::none();
        self.tracing = false;
        self.track_init = false;
        self.heap.derandomize();
        self.sync_sentry_suppression();
    }

    /// Switches to diagnostic mode with an environmental-change plan.
    ///
    /// Clears manifestation and call-site collections from any previous
    /// iteration.
    pub fn set_diagnostic(&mut self, plan: ChangePlan) {
        self.track_init = plan.uninit_read.active();
        self.mode = ExtMode::Diagnostic;
        self.plan = plan;
        self.tracing = false;
        self.manifests.clear();
        self.trace.clear();
        self.reset_counters();
        self.alloc_sites_seen.clear();
        self.alloc_sites_set.clear();
        self.dealloc_sites_seen.clear();
        self.dealloc_sites_set.clear();
        self.heap.derandomize();
    }

    /// Switches to validation mode: randomized allocation, tracing on,
    /// patches active.
    pub fn set_validation(&mut self, patches: impl Into<Arc<PatchSet>>, seed: u64) {
        self.mode = ExtMode::Validation;
        self.patches = patches.into();
        self.plan = ChangePlan::none();
        self.tracing = true;
        self.track_init = true;
        self.trace.clear();
        self.counters.patch_triggers.clear();
        self.heap.randomize(seed);
    }

    /// Returns the current mode.
    pub fn mode(&self) -> ExtMode {
        self.mode
    }

    /// Returns the active patch set.
    pub fn patches(&self) -> &PatchSet {
        &self.patches
    }

    /// Replaces the quarantine byte threshold.
    pub fn set_quarantine_threshold(&mut self, bytes: u64) {
        self.quarantine = Quarantine::new(bytes);
    }

    /// Sets the per-side padding size (ablation knob; default 508 bytes).
    pub fn set_padding(&mut self, per_side: u64) {
        self.pad_each = per_side;
    }

    /// Returns the per-side padding size.
    pub fn padding(&self) -> u64 {
        self.pad_each
    }

    // ------------------------------------------------------------------
    // Sentry tier (sampling-based always-on guarded slots)
    // ------------------------------------------------------------------

    /// Enables the sentry tier: roughly one in `cfg.rate` allocations is
    /// redirected into a guarded slot. The engine clones with the
    /// allocator, so re-execution from a checkpoint replays the exact
    /// sampling decisions and traps.
    pub fn enable_sentry(&mut self, cfg: SentryConfig) {
        self.heap.set_sentry_rate(cfg.rate, cfg.seed);
        self.sentry = Some(SentryEngine::new(cfg));
        self.sync_sentry_suppression();
    }

    /// Returns the sentry engine, if enabled.
    pub fn sentry(&self) -> Option<&SentryEngine> {
        self.sentry.as_ref()
    }

    /// Returns the sentry engine mutably, if enabled.
    pub fn sentry_mut(&mut self) -> Option<&mut SentryEngine> {
        self.sentry.as_mut()
    }

    /// Returns the sentry metrics, if the tier is enabled.
    pub fn sentry_metrics(&self) -> Option<&SentryMetrics> {
        self.sentry.as_ref().map(|e| e.metrics())
    }

    /// Consumes the latched sentry trap, if any.
    pub fn take_pending_trap(&mut self) -> Option<TrapRecord> {
        self.sentry.as_mut().and_then(|e| e.take_pending())
    }

    /// Returns the latched sentry trap without consuming it.
    pub fn peek_pending_trap(&self) -> Option<&TrapRecord> {
        self.sentry.as_ref().and_then(|e| e.peek_pending())
    }

    /// Sites covered by an installed patch are never sampled: the patch
    /// already prevents the bug there, fleet-wide, so the slot budget is
    /// spent where something is still unknown.
    fn sync_sentry_suppression(&mut self) {
        if let Some(engine) = self.sentry.as_mut() {
            let sites: Vec<CallSite> = self.patches.patches().iter().map(|p| p.site).collect();
            let all = self.patches.has_generic();
            engine.sampler_mut().set_suppressed(sites, all);
        }
    }

    // ------------------------------------------------------------------
    // Inspection (used by the diagnosis/validation engines and benches)
    // ------------------------------------------------------------------

    /// Manifestations recorded so far (without rescanning memory).
    pub fn manifestations(&self) -> &[Manifestation] {
        &self.manifests
    }

    /// The validation trace.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Takes the validation trace, leaving it empty.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Distinct allocation call-sites seen this diagnostic run, in first-
    /// seen order.
    pub fn alloc_sites_seen(&self) -> &[CallSite] {
        &self.alloc_sites_seen
    }

    /// Distinct deallocation call-sites seen this diagnostic run.
    pub fn dealloc_sites_seen(&self) -> &[CallSite] {
        &self.dealloc_sites_seen
    }

    /// Counters for the experiment harnesses.
    pub fn counters(&self) -> &ExtCounters {
        &self.counters
    }

    /// Resets counters (e.g. at the start of a measured region).
    pub fn reset_counters(&mut self) {
        let cur_padding = self.counters.cur_padding_bytes;
        self.counters = ExtCounters {
            cur_padding_bytes: cur_padding,
            max_padding_bytes: cur_padding,
            ..ExtCounters::default()
        };
    }

    /// The object table (live + quarantined objects).
    pub fn table(&self) -> &ObjectTable {
        &self.table
    }

    /// The delay-free quarantine.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Modeled extension metadata footprint in bytes (paper Table 6).
    pub fn meta_bytes(&self) -> u64 {
        self.table.meta_bytes()
    }

    // ------------------------------------------------------------------
    // Scans: canary integrity checks (manifestation collection)
    // ------------------------------------------------------------------

    /// Scans all canary regions (padding, quarantined objects, heap
    /// marks), appending manifestations for any corruption found.
    pub fn scan(&mut self, mem: &mut SimMemory) -> Result<(), Fault> {
        self.scan_paddings(mem)?;
        self.scan_quarantine(mem)?;
        self.scan_marks(mem)?;
        Ok(())
    }

    fn scan_paddings(&mut self, mem: &mut SimMemory) -> Result<(), Fault> {
        let mut found = Vec::new();
        for info in self.table.iter() {
            let Some(pad) = info.pad else { continue };
            if !pad.canary {
                continue;
            }
            // Poisoned sentry slots are trap-on-access; their canaries
            // cannot (and need not) be rescanned.
            if info
                .sentried
                .is_some_and(|s| self.sentry.as_ref().is_some_and(|e| e.is_poisoned(s)))
            {
                continue;
            }
            if let Some((off, _)) = check_canary(mem, info.outer, pad.left)? {
                found.push(Manifestation::PaddingCorrupt {
                    alloc_site: info.alloc_site,
                    user: info.user,
                    right_side: false,
                    offset: off,
                });
            }
            let right_start = info.user.offset(info.size);
            if let Some((off, _)) = check_canary(mem, right_start, pad.right)? {
                found.push(Manifestation::PaddingCorrupt {
                    alloc_site: info.alloc_site,
                    user: info.user,
                    right_side: true,
                    offset: off,
                });
            }
        }
        self.manifests.extend(found);
        Ok(())
    }

    fn scan_quarantine(&mut self, mem: &mut SimMemory) -> Result<(), Fault> {
        let mut found = Vec::new();
        for entry in self.quarantine.iter() {
            let Some(info) = self.table.get_by_user(entry.user) else {
                continue;
            };
            let ObjState::Quarantined { freed_site, canary } = info.state else {
                continue;
            };
            if !canary {
                continue;
            }
            if let Some((off, _)) = check_canary(mem, info.user, info.size)? {
                found.push(Manifestation::QuarantineCorrupt {
                    freed_site,
                    alloc_site: info.alloc_site,
                    user: info.user,
                    offset: off,
                });
            }
        }
        self.manifests.extend(found);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn note_alloc_site(&mut self, site: CallSite) {
        if self.mode == ExtMode::Diagnostic && self.alloc_sites_set.insert(site) {
            self.alloc_sites_seen.push(site);
        }
    }

    fn note_dealloc_site(&mut self, site: CallSite) {
        if self.mode == ExtMode::Diagnostic && self.dealloc_sites_set.insert(site) {
            self.dealloc_sites_seen.push(site);
        }
    }

    fn note_change(&mut self, site: CallSite) {
        self.counters.changed_objects += 1;
        self.counters.changed_sites.insert(site);
    }

    /// Decides the allocation-side changes for this call-site:
    /// `(padding, padding_canary, fill, patch_idx)`.
    fn alloc_changes(&mut self, site: CallSite) -> (bool, bool, Fill, Option<usize>) {
        match self.mode {
            ExtMode::Normal | ExtMode::Validation => match self.patches.match_alloc(site) {
                Some((idx, patch)) => match patch.change {
                    PreventiveChange::AddPadding => (true, false, Fill::None, Some(idx)),
                    PreventiveChange::FillZero => (false, false, Fill::Zero, Some(idx)),
                    PreventiveChange::DelayFree => (false, false, Fill::None, Some(idx)),
                },
                None => (false, false, Fill::None, None),
            },
            ExtMode::Diagnostic => {
                let pad = self.plan.overflow.active();
                let pad_canary = self.plan.overflow.exposes(site);
                let fill = if self.plan.uninit_read.active() {
                    if self.plan.uninit_read.exposes(site) {
                        Fill::Canary
                    } else {
                        Fill::Zero
                    }
                } else {
                    Fill::None
                };
                (pad, pad_canary, fill, None)
            }
        }
    }
}

/// Allocation-time fill policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fill {
    None,
    Zero,
    Canary,
}

impl AllocBackend for ExtAllocator {
    fn malloc(
        &mut self,
        mem: &mut SimMemory,
        clock: &mut Clock,
        req: u64,
        site: CallSite,
    ) -> Result<Addr, Fault> {
        clock.advance(COST_PATCH_QUERY + COST_META);
        if self.mode != ExtMode::Normal {
            clock.advance(COST_DIAG);
        }
        self.note_alloc_site(site);
        let (pad, pad_canary, fill, patch_idx) = self.alloc_changes(site);

        // Sentry tier: maybe redirect this allocation into a guarded
        // slot. The decision sequence is a pure function of the
        // allocation trace, so checkpointed re-execution replays it.
        if self.sentry.is_some() {
            let tick = self.heap.sentry_tick();
            let engine = self.sentry.as_mut().expect("sentry checked above");
            if engine.sampler_mut().decide(site, tick) {
                // Plan/patch padding moves inside the slot, so the pad
                // request inflates the size the slot must hold.
                let extra = if pad { 2 * self.pad_each } else { 0 };
                match engine.place(mem, req + extra) {
                    Some(placement) => {
                        return self.sentry_malloc(
                            mem, clock, req, site, placement, pad, pad_canary, fill, patch_idx,
                        );
                    }
                    // Nothing fit (arena full, poison ring shallow, or
                    // object too large): fall through to the heap and
                    // keep the site from heating up.
                    None => engine.sampler_mut().undo_sample(site),
                }
            }
        }

        let (left, right) = if pad {
            (self.pad_each, self.pad_each)
        } else {
            (0, 0)
        };
        let outer = self.heap.malloc(mem, left + req + right)?;
        let user = outer.offset(left);
        let heap_usable = self.heap.usable_size(mem, outer)?;

        // Memory handed out from a marked free region is legitimately
        // reused now; un-mark it (the chunk header, user area, and the
        // boundary header written right after the chunk).
        if !self.marks.is_empty() {
            let lo = outer.0 - 16;
            let hi = outer.0 + heap_usable + 16;
            trim_marks(&mut self.marks, lo, hi);
        }

        if pad {
            if pad_canary {
                clock.advance(cost_fill(left + right));
                fill_canary(mem, outer, left)?;
                fill_canary(mem, user.offset(req), right)?;
            }
            self.counters.objects_padded += 1;
            self.counters.cur_padding_bytes += left + right;
            self.counters.max_padding_bytes = self
                .counters
                .max_padding_bytes
                .max(self.counters.cur_padding_bytes);
            self.note_change(site);
        }
        match fill {
            Fill::None => {}
            Fill::Zero => {
                clock.advance(cost_fill(req));
                mem.fill(user, req, 0)?;
                self.counters.objects_zero_filled += 1;
                self.note_change(site);
            }
            Fill::Canary => {
                clock.advance(cost_fill(req));
                fill_canary(mem, user, req)?;
                self.counters.objects_canary_filled += 1;
                self.note_change(site);
            }
        }
        if let Some(idx) = patch_idx {
            *self.counters.patch_triggers.entry(idx).or_insert(0) += 1;
        }

        self.seq += 1;
        let seq = self.seq;
        self.table.insert(ObjectInfo {
            user,
            size: req,
            outer,
            outer_size: left + req + right,
            alloc_site: site,
            seq,
            pad: pad.then_some(PadInfo {
                left,
                right,
                canary: pad_canary,
            }),
            zero_filled: fill == Fill::Zero,
            canary_filled: fill == Fill::Canary,
            state: ObjState::Live,
            written: self.track_init.then(IntervalSet::new),
            sentried: None,
        });
        if self.tracing {
            self.trace.push(TraceEvent::Alloc {
                seq,
                user,
                size: req,
                site,
                patch: patch_idx,
            });
        }
        Ok(user)
    }

    fn free(
        &mut self,
        mem: &mut SimMemory,
        clock: &mut Clock,
        addr: Addr,
        site: CallSite,
    ) -> Result<(), Fault> {
        clock.advance(COST_PATCH_QUERY + COST_META);
        if self.mode != ExtMode::Normal {
            clock.advance(COST_DIAG);
        }
        self.note_dealloc_site(site);

        let Some(info) = self.table.get_by_user(addr) else {
            // Unknown pointer: either a wild free or a double free of an
            // object whose first free was real. Forward to the heap, which
            // aborts like glibc would.
            return Ok(self.heap.free(mem, addr)?);
        };

        if let ObjState::Quarantined { freed_site, .. } = info.state {
            let seq = info.seq;
            let poisoned_slot = info
                .sentried
                .filter(|&s| self.sentry.as_ref().is_some_and(|e| e.is_poisoned(s)));
            let (alloc_site, size) = (info.alloc_site, info.size);
            // Parameter check (paper Table 1, double free row): the object
            // is already free but still quarantined — record and neutralize.
            self.manifests.push(Manifestation::DoubleFree {
                dealloc_site: site,
                first_free_site: freed_site,
                user: addr,
            });
            if self.tracing {
                self.trace.push(TraceEvent::Dealloc {
                    seq,
                    user: addr,
                    site,
                    delayed_by: None,
                });
            }
            if let Some(slot) = poisoned_slot {
                // The first free poisoned the slot (no delay-free change
                // was shielding it), so this second free is a caught
                // double free, not a silent neutralization.
                let rec = TrapRecord {
                    kind: TrapKind::DoubleFreeSlot,
                    access: None,
                    addr,
                    len: size,
                    alloc_site,
                    free_site: Some(freed_site),
                    access_site: Some(site),
                    size,
                    slot,
                };
                self.sentry
                    .as_mut()
                    .expect("poisoned slot implies engine")
                    .record_trap(rec);
                return Err(Fault::Mem(MemFault::GuardTrap {
                    addr,
                    kind: AccessKind::Write,
                    len: size,
                }));
            }
            return Ok(());
        }

        // Decide whether this free is delayed.
        let (delay, canary, patch_idx) = match self.mode {
            ExtMode::Normal | ExtMode::Validation => match self.patches.match_dealloc(site) {
                Some((idx, patch)) if patch.change == PreventiveChange::DelayFree => {
                    (true, false, Some(idx))
                }
                _ => (false, false, None),
            },
            ExtMode::Diagnostic => {
                let delay = self.plan.delays_frees();
                let canary = self.plan.canary_on_free(site);
                (delay, canary, None)
            }
        };

        let seq = info.seq;
        let user = info.user;
        let size = info.size;
        let outer = info.outer;
        let outer_size = info.outer_size;
        let pad = info.pad;
        let sentried = info.sentried;
        let alloc_site = info.alloc_site;

        if let Some(idx) = patch_idx {
            *self.counters.patch_triggers.entry(idx).or_insert(0) += 1;
        }

        if delay {
            self.counters.objects_delayed += 1;
            self.note_change(site);
            if canary {
                clock.advance(cost_fill(size));
                fill_canary(mem, user, size)?;
            }
            if let Some(obj) = self.table.get_by_user_mut(addr) {
                obj.state = ObjState::Quarantined {
                    freed_site: site,
                    canary,
                };
            }
            // The byte threshold protects long-running *patched*
            // executions. Diagnostic re-executions are short and rolled
            // back afterwards; evicting there would release exactly the
            // objects the preventive change is trying to keep resident
            // (and, with heap marks live, scribble free-list cookies into
            // marked regions). Hold everything during diagnosis.
            let evicted = if self.marks.is_empty() && self.mode != ExtMode::Diagnostic {
                self.quarantine.push(QEntry {
                    user,
                    bytes: outer_size,
                    seq,
                })
            } else {
                self.quarantine.push_unbounded(QEntry {
                    user,
                    bytes: outer_size,
                    seq,
                })
            };
            for old in evicted {
                self.really_free(mem, old.user)?;
            }
            if self.tracing {
                self.trace.push(TraceEvent::Dealloc {
                    seq,
                    user,
                    site,
                    delayed_by: patch_idx,
                });
            }
            return Ok(());
        }

        // Real free: before the object vanishes (or its slot is
        // poisoned), harvest any canary evidence from its padding.
        let mut slack_corrupt = false;
        if let Some(p) = pad {
            if p.canary {
                if let Some((off, _)) = check_canary(mem, outer, p.left)? {
                    slack_corrupt = true;
                    self.manifests.push(Manifestation::PaddingCorrupt {
                        alloc_site,
                        user,
                        right_side: false,
                        offset: off,
                    });
                }
                if let Some((off, _)) = check_canary(mem, user.offset(size), p.right)? {
                    slack_corrupt = true;
                    self.manifests.push(Manifestation::PaddingCorrupt {
                        alloc_site,
                        user,
                        right_side: true,
                        offset: off,
                    });
                }
            }
            if sentried.is_none() {
                self.counters.cur_padding_bytes = self
                    .counters
                    .cur_padding_bytes
                    .saturating_sub(p.left + p.right);
            }
        }
        if let Some(slot) = sentried {
            // Sentried objects are not returned to the heap: the slot is
            // poisoned (trap-on-access) and sits in the recycle ring, so
            // dangling accesses keep trapping long after this free. The
            // object stays in the table for attribution.
            clock.advance(COST_SENTRY_POISON);
            if let Some(obj) = self.table.get_by_user_mut(addr) {
                obj.state = ObjState::Quarantined {
                    freed_site: site,
                    canary: false,
                };
            }
            let engine = self.sentry.as_mut().expect("sentried implies engine");
            engine.poison(mem, slot);
            engine.charge_overhead(COST_SENTRY_POISON);
            if self.tracing {
                self.trace.push(TraceEvent::Dealloc {
                    seq,
                    user,
                    site,
                    delayed_by: None,
                });
            }
            // Corrupt slot slack with no padding change active is silent
            // overflow evidence that would otherwise go unnoticed.
            if slack_corrupt && pad.is_some_and(|p| p.left == SLOT_SLACK) {
                let rec = TrapRecord {
                    kind: TrapKind::CanaryOnFree,
                    access: None,
                    addr,
                    len: size,
                    alloc_site,
                    free_site: Some(site),
                    access_site: Some(site),
                    size,
                    slot,
                };
                self.sentry
                    .as_mut()
                    .expect("sentried implies engine")
                    .record_trap(rec);
                return Err(Fault::Mem(MemFault::GuardTrap {
                    addr,
                    kind: AccessKind::Write,
                    len: size,
                }));
            }
            return Ok(());
        }
        self.table.remove_by_user(addr);
        self.heap.free(mem, outer)?;
        if self.tracing {
            self.trace.push(TraceEvent::Dealloc {
                seq,
                user,
                site,
                delayed_by: None,
            });
        }
        Ok(())
    }

    fn realloc(
        &mut self,
        mem: &mut SimMemory,
        clock: &mut Clock,
        addr: Addr,
        req: u64,
        site: CallSite,
    ) -> Result<Addr, Fault> {
        let Some(info) = self.table.get_by_user(addr) else {
            return Ok(self.heap.realloc(mem, addr, req)?);
        };
        if matches!(info.state, ObjState::Quarantined { .. }) {
            return Err(Fault::Heap(fa_heap::HeapError::InvalidFree {
                addr,
                kind: fa_heap::InvalidFreeKind::DoubleFree,
            }));
        }
        let old_size = info.size;
        let new = self.malloc(mem, clock, req, site)?;
        let kept = old_size.min(req);
        clock.advance(cost_fill(kept));
        mem.copy(new, addr, kept)?;
        if let Some(obj) = self.table.get_by_user_mut(new) {
            if let Some(w) = obj.written.as_mut() {
                w.insert(0, kept);
            }
        }
        self.free(mem, clock, addr, site)?;
        Ok(new)
    }

    fn usable_size(&self, _mem: &mut SimMemory, addr: Addr) -> Result<u64, Fault> {
        match self.table.get_by_user(addr) {
            // The application sees its requested size; padding is
            // invisible.
            Some(info) => Ok(info.size),
            None => Err(Fault::Heap(fa_heap::HeapError::InvalidFree {
                addr,
                kind: fa_heap::InvalidFreeKind::WildPointer,
            })),
        }
    }

    fn observe_access(
        &mut self,
        clock: &mut Clock,
        addr: Addr,
        len: u64,
        kind: AccessKind,
        site: CallSite,
    ) -> Result<(), Fault> {
        if self.mode == ExtMode::Normal && !self.tracing {
            // Production fast path: plain accesses cost nothing. Only
            // the sentry arena (if any) needs a closer look — an MMU
            // range check in the real system.
            match &self.sentry {
                Some(engine) if engine.contains(addr) => {}
                _ => return Ok(()),
            }
        }
        clock.advance(4);
        if self.mode == ExtMode::Validation {
            // Model the dynamic-instrumentation (Pin) cost of tracing
            // every access during validation — this is why the paper's
            // validation times exceed its recovery times.
            clock.advance(COST_PIN_TRACE);
        }
        let tracing = self.tracing;
        let mut illegal: Option<(IllegalKind, u64, u64, Option<usize>)> = None;
        let mut trap: Option<TrapRecord> = None;
        if let Some(info) = self.table.find_containing_mut(addr) {
            let end = addr.0 + len;
            match &info.state {
                ObjState::Quarantined { .. } => {
                    let offset = addr.0.saturating_sub(info.user.0);
                    let ik = match kind {
                        AccessKind::Read => IllegalKind::QuarantineRead,
                        AccessKind::Write => IllegalKind::QuarantineWrite,
                    };
                    illegal = Some((ik, info.seq, offset, None));
                    // A poisoned sentry slot traps the dangling access at
                    // the page level ([`fa_mem::Perms::POISONED`]) and is
                    // attributed in `on_guard_trap`; a delay-free change
                    // (quarantine) leaves the page accessible, so
                    // preventive trials stay clean. Either way this hook
                    // only records the illegal-access evidence.
                }
                ObjState::Live => {
                    if info.in_user(addr) {
                        let off = addr.0 - info.user.0;
                        let end_off = (end - info.user.0).min(info.size);
                        match kind {
                            AccessKind::Write => {
                                if let Some(w) = info.written.as_mut() {
                                    w.insert(off, end_off);
                                }
                            }
                            AccessKind::Read => {
                                let covered = info
                                    .written
                                    .as_ref()
                                    .map(|w| w.covers(off, end_off))
                                    .unwrap_or(true);
                                if !covered {
                                    // Reading bytes the app never wrote: an
                                    // uninitialized read, neutralized when
                                    // the object was zero-filled.
                                    let patch = info.zero_filled.then_some(0usize);
                                    illegal = Some((IllegalKind::UninitRead, info.seq, off, patch));
                                    // Sentried objects always track writes,
                                    // so this is caught even in production —
                                    // unless a fill change defused it.
                                    if let Some(slot) = info.sentried {
                                        if !info.zero_filled && !info.canary_filled {
                                            trap = Some(TrapRecord {
                                                kind: TrapKind::UninitReadSlot,
                                                access: Some(kind),
                                                addr,
                                                len,
                                                alloc_site: info.alloc_site,
                                                free_site: None,
                                                access_site: Some(site),
                                                size: info.size,
                                                slot,
                                            });
                                        }
                                    }
                                    // Report each uninit read once.
                                    if let Some(w) = info.written.as_mut() {
                                        w.insert(off, end_off);
                                    }
                                }
                            }
                        }
                    } else if info.in_padding(addr) && kind == AccessKind::Write {
                        let offset = addr.0 - info.outer.0;
                        illegal = Some((IllegalKind::PaddingWrite, info.seq, offset, None));
                        // Pure slot slack (no padding change in play)
                        // catches the overflow in flight; a padding
                        // change absorbs or canaries it instead.
                        if let Some(slot) = info.sentried {
                            if info.pad.is_some_and(|p| p.left == SLOT_SLACK) {
                                trap = Some(TrapRecord {
                                    kind: TrapKind::GuardHit,
                                    access: Some(kind),
                                    addr,
                                    len,
                                    alloc_site: info.alloc_site,
                                    free_site: None,
                                    access_site: Some(site),
                                    size: info.size,
                                    slot,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Accesses outside every tracked object need no handling here:
        // inside the arena they land on guard pages, poisoned slots, or
        // released (re-guarded) slots, all of which trap on the page
        // permission bits and are attributed in `on_guard_trap`.
        if let Some((ik, obj_seq, offset, patch)) = illegal {
            match ik {
                IllegalKind::PaddingWrite => self.counters.padding_writes += 1,
                IllegalKind::QuarantineRead => self.counters.quarantine_reads += 1,
                IllegalKind::QuarantineWrite => self.counters.quarantine_writes += 1,
                IllegalKind::UninitRead => self.counters.uninit_reads += 1,
            }
            if tracing {
                self.trace.push(TraceEvent::Illegal {
                    kind: ik,
                    access: kind,
                    access_site: site,
                    obj_seq,
                    offset,
                    patch,
                });
            }
        }
        if let Some(rec) = trap {
            self.sentry
                .as_mut()
                .expect("trap implies engine")
                .record_trap(rec);
            return Err(Fault::Mem(MemFault::GuardTrap { addr, kind, len }));
        }
        Ok(())
    }

    fn on_guard_trap(
        &mut self,
        _clock: &mut Clock,
        addr: Addr,
        len: u64,
        kind: AccessKind,
        site: CallSite,
    ) {
        // A permission-bit trap fired inside the address space; if it
        // came from the sentry arena, attribute it. A poisoned slot
        // still holding its quarantined object is a caught dangling
        // access; anything else (guard pages, released or recycled
        // slots, evicted objects) is a wild hit.
        let Some(engine) = self.sentry.as_ref() else {
            return;
        };
        let Some(slot) = engine.slot_of(addr) else {
            return;
        };
        let rec = match self.table.find_containing(addr) {
            Some(info) => match &info.state {
                ObjState::Quarantined { freed_site, .. }
                    if info.sentried == Some(slot) && engine.is_poisoned(slot) =>
                {
                    TrapRecord {
                        kind: TrapKind::PoisonAccess,
                        access: Some(kind),
                        addr,
                        len,
                        alloc_site: info.alloc_site,
                        free_site: Some(*freed_site),
                        access_site: Some(site),
                        size: info.size,
                        slot,
                    }
                }
                _ => TrapRecord {
                    kind: TrapKind::GuardHit,
                    access: Some(kind),
                    addr,
                    len,
                    alloc_site: info.alloc_site,
                    free_site: None,
                    access_site: Some(site),
                    size: info.size,
                    slot,
                },
            },
            None => TrapRecord {
                kind: TrapKind::GuardHit,
                access: Some(kind),
                addr,
                len,
                alloc_site: CallSite::default(),
                free_site: None,
                access_site: Some(site),
                size: 0,
                slot,
            },
        };
        self.sentry
            .as_mut()
            .expect("engine checked above")
            .record_trap(rec);
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    fn clone_box(&self) -> Box<dyn AllocBackend> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl ExtAllocator {
    /// Finishes a sampled allocation inside a guarded sentry slot.
    ///
    /// Layout inside the slot's data page (guard pages on both sides):
    /// `[slack | plan padding? | object | plan padding? | slack …]`. Any
    /// padding change the plan or a patch requested moves inside the
    /// slot, so trials behave exactly as they would on the heap; the
    /// 16-byte slack is the sentry's own canary when no change is
    /// active.
    #[allow(clippy::too_many_arguments)]
    fn sentry_malloc(
        &mut self,
        mem: &mut SimMemory,
        clock: &mut Clock,
        req: u64,
        site: CallSite,
        placement: SlotPlacement,
        pad: bool,
        pad_canary: bool,
        fill: Fill,
        patch_idx: Option<usize>,
    ) -> Result<Addr, Fault> {
        clock.advance(COST_SENTRY_PLACE);
        let extra = if pad { self.pad_each } else { 0 };
        let left = SLOT_SLACK + extra;
        let right = SLOT_SLACK + extra;
        let outer = placement.data;
        let user = outer.offset(left);
        // Pure slack is always canaried; a padding change keeps its own
        // exposing/preventive flag for the whole region.
        let canary = if pad { pad_canary } else { true };
        if canary {
            clock.advance(cost_fill(left + right));
            fill_canary(mem, outer, left)?;
            fill_canary(mem, user.offset(req), right)?;
        }
        if pad {
            self.counters.objects_padded += 1;
            self.note_change(site);
        }
        match fill {
            Fill::None => {}
            Fill::Zero => {
                clock.advance(cost_fill(req));
                mem.fill(user, req, 0)?;
                self.counters.objects_zero_filled += 1;
                self.note_change(site);
            }
            Fill::Canary => {
                clock.advance(cost_fill(req));
                fill_canary(mem, user, req)?;
                self.counters.objects_canary_filled += 1;
                self.note_change(site);
            }
        }
        if let Some(idx) = patch_idx {
            *self.counters.patch_triggers.entry(idx).or_insert(0) += 1;
        }
        self.seq += 1;
        let seq = self.seq;
        self.table.insert(ObjectInfo {
            user,
            size: req,
            outer,
            outer_size: left + req + right,
            alloc_site: site,
            seq,
            pad: Some(PadInfo {
                left,
                right,
                canary,
            }),
            zero_filled: fill == Fill::Zero,
            canary_filled: fill == Fill::Canary,
            state: ObjState::Live,
            // Always tracked, so uninitialized reads of sampled objects
            // are caught even in production mode.
            written: Some(IntervalSet::new()),
            sentried: Some(placement.slot),
        });
        if let Some(engine) = self.sentry.as_mut() {
            engine.charge_overhead(
                COST_SENTRY_PLACE + if canary { cost_fill(left + right) } else { 0 },
            );
        }
        if self.tracing {
            self.trace.push(TraceEvent::Alloc {
                seq,
                user,
                size: req,
                site,
                patch: patch_idx,
            });
        }
        Ok(user)
    }

    /// Really deallocates a quarantined object (eviction path), checking
    /// its canary first.
    fn really_free(&mut self, mem: &mut SimMemory, user: Addr) -> Result<(), Fault> {
        let Some(info) = self.table.get_by_user(user) else {
            return Ok(());
        };
        if let ObjState::Quarantined { freed_site, canary } = info.state {
            if canary {
                if let Some((off, _)) = check_canary(mem, info.user, info.size)? {
                    self.manifests.push(Manifestation::QuarantineCorrupt {
                        freed_site,
                        alloc_site: info.alloc_site,
                        user: info.user,
                        offset: off,
                    });
                }
            }
        }
        let outer = info.outer;
        let sentried = info.sentried;
        if let Some(p) = info.pad {
            if sentried.is_none() {
                self.counters.cur_padding_bytes = self
                    .counters
                    .cur_padding_bytes
                    .saturating_sub(p.left + p.right);
            }
        }
        self.table.remove_by_user(user);
        if let Some(slot) = sentried {
            // The slot goes back to the free list unpoisoned: the object
            // left through the ordinary delayed-free quarantine.
            if let Some(engine) = self.sentry.as_mut() {
                engine.release(mem, slot);
            }
            return Ok(());
        }
        self.heap.free(mem, outer)?;
        Ok(())
    }

    /// Appends a manifestation (used by the heap-marking module).
    pub(crate) fn push_manifestation(&mut self, m: Manifestation) {
        self.manifests.push(m);
    }

    /// Flushes the entire quarantine back to the heap (used when patches
    /// are removed after failed validation).
    pub fn flush_quarantine(&mut self, mem: &mut SimMemory) -> Result<(), Fault> {
        for entry in self.quarantine.drain() {
            self.really_free(mem, entry.user)?;
        }
        Ok(())
    }
}

/// Removes the `[lo, hi)` span from the mark list, splitting marks that
/// straddle it.
fn trim_marks(marks: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    let mut out = Vec::with_capacity(marks.len());
    for &(start, len) in marks.iter() {
        let end = start + len;
        if end <= lo || start >= hi {
            out.push((start, len));
            continue;
        }
        if start < lo {
            out.push((start, lo - start));
        }
        if end > hi {
            out.push((hi, end - hi));
        }
    }
    *marks = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bugtype::BugType;
    use crate::changes::Mode;
    use crate::patch::Patch;
    use fa_proc::SymbolTable;

    fn setup() -> (SimMemory, ExtAllocator, Clock) {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        (mem, ExtAllocator::attach(heap), Clock::new())
    }

    fn site(id: u64) -> CallSite {
        CallSite([id, 0, 0])
    }

    #[test]
    fn normal_mode_is_transparent() {
        let (mut mem, mut ext, mut clock) = setup();
        let p = ext.malloc(&mut mem, &mut clock, 100, site(1)).unwrap();
        assert_eq!(ext.usable_size(&mut mem, p).unwrap(), 100);
        ext.free(&mut mem, &mut clock, p, site(2)).unwrap();
        assert!(ext.table().is_empty());
        assert_eq!(ext.counters().changed_objects, 0);
    }

    #[test]
    fn padding_patch_pads_matching_site_only() {
        let (mut mem, mut ext, mut clock) = setup();
        let symbols = SymbolTable::new();
        let patch = Patch::new(BugType::BufferOverflow, site(1), &symbols);
        ext.set_normal(PatchSet::from_patches([patch]));
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let b = ext.malloc(&mut mem, &mut clock, 64, site(2)).unwrap();
        let ia = ext.table().get_by_user(a).unwrap();
        let ib = ext.table().get_by_user(b).unwrap();
        assert!(ia.pad.is_some());
        assert!(ib.pad.is_none());
        assert_eq!(ext.counters().objects_padded, 1);
        assert_eq!(ext.counters().patch_triggers.get(&0), Some(&1));
        assert_eq!(
            ext.counters().cur_padding_bytes,
            2 * PAD_EACH_SIDE,
            "1016 bytes per padded object, as in paper Table 5"
        );
    }

    #[test]
    fn padding_absorbs_overflow() {
        let (mut mem, mut ext, mut clock) = setup();
        let symbols = SymbolTable::new();
        ext.set_normal(PatchSet::from_patches([Patch::new(
            BugType::BufferOverflow,
            site(1),
            &symbols,
        )]));
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let b = ext.malloc(&mut mem, &mut clock, 64, site(2)).unwrap();
        // Overflow a by 100 bytes — lands in padding, not in b or heap
        // metadata.
        mem.write(a.offset(64), &[0x77; 100]).unwrap();
        ext.free(&mut mem, &mut clock, b, site(9)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(9)).unwrap();
        ext.heap().check_integrity(&mut mem).unwrap();
    }

    #[test]
    fn exposing_padding_detects_overflow_object() {
        let (mut mem, mut ext, mut clock) = setup();
        let mut plan = ChangePlan::all_preventive();
        plan.overflow = Mode::Expose;
        ext.set_diagnostic(plan);
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let _b = ext.malloc(&mut mem, &mut clock, 64, site(2)).unwrap();
        mem.write(a.offset(64), &[0x77; 10]).unwrap();
        ext.scan(&mut mem).unwrap();
        let m = ext.manifestations();
        assert_eq!(m.len(), 1);
        match &m[0] {
            Manifestation::PaddingCorrupt {
                alloc_site,
                right_side,
                offset,
                ..
            } => {
                assert_eq!(*alloc_site, site(1));
                assert!(*right_side);
                assert_eq!(*offset, 0);
            }
            other => panic!("unexpected manifestation {other:?}"),
        }
    }

    #[test]
    fn delay_free_preserves_contents() {
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_diagnostic(ChangePlan::all_preventive());
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        mem.write(a, b"important").unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        // A dangling read still sees the old contents (preventive form).
        assert_eq!(mem.read_bytes(a, 9).unwrap(), b"important");
        // And the chunk is not reused.
        let b = ext.malloc(&mut mem, &mut clock, 64, site(3)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn exposing_delay_free_canaries_and_detects_dangling_write() {
        let (mut mem, mut ext, mut clock) = setup();
        let mut plan = ChangePlan::all_preventive();
        plan.dangling_write = Mode::Expose;
        plan.dangling_read = Mode::Off;
        ext.set_diagnostic(plan);
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        // Dangling write through the stale pointer.
        mem.write_u64(a.offset(8), 0x1234).unwrap();
        ext.scan(&mut mem).unwrap();
        let m: Vec<_> = ext
            .manifestations()
            .iter()
            .filter(|m| m.bug_type() == Some(BugType::DanglingWrite))
            .collect();
        assert_eq!(m.len(), 1);
        match m[0] {
            Manifestation::QuarantineCorrupt {
                freed_site, offset, ..
            } => {
                assert_eq!(*freed_site, site(2));
                assert_eq!(*offset, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_free_detected_and_neutralized_when_delayed() {
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_diagnostic(ChangePlan::all_preventive());
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(3)).unwrap(); // double free
        let m: Vec<_> = ext
            .manifestations()
            .iter()
            .filter(|m| m.bug_type() == Some(BugType::DoubleFree))
            .collect();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn double_free_crashes_without_changes() {
        let (mut mem, mut ext, mut clock) = setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let _b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        let err = ext.free(&mut mem, &mut clock, a, site(2)).unwrap_err();
        assert!(matches!(err, Fault::Heap(_)));
    }

    #[test]
    fn zero_fill_change_zeroes_new_objects() {
        let (mut mem, mut ext, mut clock) = setup();
        // Dirty a chunk, free it for reuse.
        let a = ext.malloc(&mut mem, &mut clock, 64, site(9)).unwrap();
        mem.fill(a, 64, 0x5a).unwrap();
        let hold = ext.malloc(&mut mem, &mut clock, 16, site(9)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(9)).unwrap();
        let mut plan = ChangePlan::none();
        plan.uninit_read = Mode::Prevent;
        ext.set_diagnostic(plan);
        let b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        assert_eq!(b, a, "chunk reuse expected");
        assert!(mem.read_bytes(b, 64).unwrap().iter().all(|&x| x == 0));
        let _ = hold;
    }

    #[test]
    fn canary_fill_change_canaries_new_objects() {
        let (mut mem, mut ext, mut clock) = setup();
        let mut plan = ChangePlan::none();
        plan.uninit_read = Mode::Expose;
        ext.set_diagnostic(plan);
        let b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        assert!(mem
            .read_bytes(b, 64)
            .unwrap()
            .iter()
            .all(|&x| x == crate::CANARY_BYTE));
    }

    #[test]
    fn expose_only_scopes_fill_by_site() {
        let (mut mem, mut ext, mut clock) = setup();
        let mut plan = ChangePlan::none();
        plan.uninit_read = Mode::ExposeOnly([site(1)].into_iter().collect());
        ext.set_diagnostic(plan);
        let a = ext.malloc(&mut mem, &mut clock, 32, site(1)).unwrap();
        let b = ext.malloc(&mut mem, &mut clock, 32, site(2)).unwrap();
        assert!(mem
            .read_bytes(a, 32)
            .unwrap()
            .iter()
            .all(|&x| x == crate::CANARY_BYTE));
        assert!(mem.read_bytes(b, 32).unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    fn quarantine_eviction_really_frees_in_normal_mode() {
        // The byte threshold applies to patched production runs: a
        // DelayFree patch must not pin unbounded memory.
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_quarantine_threshold(300);
        let symbols = SymbolTable::new();
        ext.set_normal(PatchSet::from_patches([Patch::new(
            BugType::DanglingRead,
            site(20),
            &symbols,
        )]));
        let mut ptrs = Vec::new();
        for i in 0..6u64 {
            let p = ext.malloc(&mut mem, &mut clock, 100, site(i)).unwrap();
            ptrs.push(p);
        }
        for p in &ptrs {
            ext.free(&mut mem, &mut clock, *p, site(20)).unwrap();
        }
        assert!(
            ext.quarantine().bytes() <= 300 + 116,
            "quarantine must stay near the threshold, got {}",
            ext.quarantine().bytes()
        );
        assert!(ext.quarantine().len() < 6);
        ext.heap().check_integrity(&mut mem).unwrap();
    }

    #[test]
    fn quarantine_is_unbounded_in_diagnostic_mode() {
        // Diagnostic re-executions are short and rolled back; eviction
        // there would release exactly the objects the preventive change
        // is keeping resident (it broke the Apache phase-1 search).
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_quarantine_threshold(300);
        ext.set_diagnostic(ChangePlan::all_preventive());
        let mut ptrs = Vec::new();
        for i in 0..6u64 {
            let p = ext.malloc(&mut mem, &mut clock, 100, site(i)).unwrap();
            ptrs.push(p);
        }
        for p in &ptrs {
            ext.free(&mut mem, &mut clock, *p, site(20)).unwrap();
        }
        assert_eq!(ext.quarantine().len(), 6, "no eviction during diagnosis");
        assert_eq!(ext.quarantine().bytes(), 6 * (100 + 2 * PAD_EACH_SIDE));
        ext.heap().check_integrity(&mut mem).unwrap();
    }

    #[test]
    fn alloc_sites_collected_in_diagnostic_mode() {
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_diagnostic(ChangePlan::none());
        for s in [1u64, 2, 1, 3] {
            let p = ext.malloc(&mut mem, &mut clock, 16, site(s)).unwrap();
            ext.free(&mut mem, &mut clock, p, site(s + 10)).unwrap();
        }
        assert_eq!(ext.alloc_sites_seen(), &[site(1), site(2), site(3)]);
        assert_eq!(ext.dealloc_sites_seen(), &[site(11), site(12), site(13)]);
    }

    #[test]
    fn validation_mode_traces_allocs_and_illegal_accesses() {
        let (mut mem, mut ext, mut clock) = setup();
        let symbols = SymbolTable::new();
        ext.set_validation(
            PatchSet::from_patches([Patch::new(BugType::BufferOverflow, site(1), &symbols)]),
            7,
        );
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        // Overflow into the padding: the observe hook classifies it.
        ext.observe_access(&mut clock, a.offset(70), 8, AccessKind::Write, site(5))
            .unwrap();
        mem.write_u64(a.offset(70), 1).unwrap();
        let trace = ext.trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Alloc { patch: Some(0), .. })));
        assert!(trace.iter().any(|e| matches!(
            e,
            TraceEvent::Illegal {
                kind: IllegalKind::PaddingWrite,
                ..
            }
        )));
        assert_eq!(ext.counters().padding_writes, 1);
    }

    #[test]
    fn uninit_read_traced_once() {
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_validation(PatchSet::new(), 1);
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.observe_access(&mut clock, a, 8, AccessKind::Write, site(5))
            .unwrap();
        // Initialized read: fine.
        ext.observe_access(&mut clock, a, 8, AccessKind::Read, site(5))
            .unwrap();
        assert_eq!(ext.counters().uninit_reads, 0);
        // Read past the written prefix: uninit.
        ext.observe_access(&mut clock, a.offset(8), 8, AccessKind::Read, site(5))
            .unwrap();
        assert_eq!(ext.counters().uninit_reads, 1);
        // Same read again: reported once.
        ext.observe_access(&mut clock, a.offset(8), 8, AccessKind::Read, site(5))
            .unwrap();
        assert_eq!(ext.counters().uninit_reads, 1);
    }

    #[test]
    fn quarantine_access_traced() {
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_diagnostic(ChangePlan::all_preventive());
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        ext.observe_access(&mut clock, a.offset(4), 8, AccessKind::Read, site(5))
            .unwrap();
        ext.observe_access(&mut clock, a.offset(4), 8, AccessKind::Write, site(5))
            .unwrap();
        assert_eq!(ext.counters().quarantine_reads, 1);
        assert_eq!(ext.counters().quarantine_writes, 1);
    }

    #[test]
    fn meta_bytes_counts_tracked_objects() {
        let (mut mem, mut ext, mut clock) = setup();
        let _a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let _b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        assert_eq!(ext.meta_bytes(), 32);
    }

    #[test]
    fn realloc_preserves_data_and_tracking() {
        let (mut mem, mut ext, mut clock) = setup();
        let p = ext.malloc(&mut mem, &mut clock, 32, site(1)).unwrap();
        mem.write(p, b"0123456789abcdefghijklmnopqrstuv").unwrap();
        let q = ext.realloc(&mut mem, &mut clock, p, 4096, site(1)).unwrap();
        assert_ne!(p, q);
        assert_eq!(
            mem.read_bytes(q, 32).unwrap(),
            b"0123456789abcdefghijklmnopqrstuv"
        );
        assert!(ext.table().get_by_user(p).is_none(), "old object untracked");
        let info = ext.table().get_by_user(q).unwrap();
        assert_eq!(info.size, 4096);
        ext.free(&mut mem, &mut clock, q, site(2)).unwrap();
        ext.heap().check_integrity(&mut mem).unwrap();
    }

    #[test]
    fn realloc_applies_alloc_side_patches() {
        let (mut mem, mut ext, mut clock) = setup();
        let symbols = SymbolTable::new();
        ext.set_normal(PatchSet::from_patches([Patch::new(
            BugType::BufferOverflow,
            site(1),
            &symbols,
        )]));
        let p = ext.malloc(&mut mem, &mut clock, 32, site(9)).unwrap();
        assert!(ext.table().get_by_user(p).unwrap().pad.is_none());
        // Realloc at the patched site: the new object is padded.
        let q = ext.realloc(&mut mem, &mut clock, p, 64, site(1)).unwrap();
        assert!(ext.table().get_by_user(q).unwrap().pad.is_some());
        assert_eq!(ext.counters().objects_padded, 1);
    }

    #[test]
    fn realloc_of_quarantined_object_is_rejected() {
        let (mut mem, mut ext, mut clock) = setup();
        ext.set_diagnostic(ChangePlan::all_preventive());
        let p = ext.malloc(&mut mem, &mut clock, 32, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, p, site(2)).unwrap();
        let err = ext
            .realloc(&mut mem, &mut clock, p, 64, site(1))
            .unwrap_err();
        assert!(matches!(err, Fault::Heap(_)), "{err}");
    }

    fn sentry_setup() -> (SimMemory, ExtAllocator, Clock) {
        let (mem, mut ext, clock) = setup();
        // Rate 1: every allocation ticks, so every site is sampled.
        ext.enable_sentry(SentryConfig {
            rate: 1,
            hot_threshold: u64::MAX,
            ..SentryConfig::default()
        });
        (mem, ext, clock)
    }

    #[test]
    fn sentry_poison_traps_dangling_read_in_normal_mode() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        assert!(ext.table().get_by_user(a).unwrap().sentried.is_some());
        ext.observe_access(&mut clock, a, 8, AccessKind::Write, site(4))
            .unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        // Dangling read through the stale pointer: the observe hook only
        // records the illegal-access evidence; the poisoned page traps
        // at access time and the fault is routed back for attribution.
        ext.observe_access(&mut clock, a, 8, AccessKind::Read, site(3))
            .unwrap();
        let err = mem.read_bytes(a, 8).unwrap_err();
        assert!(matches!(err, MemFault::GuardTrap { .. }), "{err}");
        ext.on_guard_trap(&mut clock, a, 8, AccessKind::Read, site(3));
        let trap = ext.take_pending_trap().unwrap();
        assert_eq!(trap.kind, TrapKind::PoisonAccess);
        assert_eq!(trap.alloc_site, site(1));
        assert_eq!(trap.free_site, Some(site(2)));
        assert_eq!(trap.access_site, Some(site(3)));
        // The illegal-access evidence the full ladder relies on is still
        // recorded.
        assert_eq!(ext.counters().quarantine_reads, 1);
    }

    #[test]
    fn sentry_slack_traps_overflow_write_in_flight() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let err = ext
            .observe_access(&mut clock, a.offset(64), 4, AccessKind::Write, site(7))
            .unwrap_err();
        assert_eq!(err.class(), "sentry-trap");
        let trap = ext.take_pending_trap().unwrap();
        assert_eq!(trap.kind, TrapKind::GuardHit);
        assert_eq!(trap.alloc_site, site(1));
        assert_eq!(ext.counters().padding_writes, 1);
    }

    #[test]
    fn sentry_double_free_traps() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        let err = ext.free(&mut mem, &mut clock, a, site(3)).unwrap_err();
        assert_eq!(err.class(), "sentry-trap");
        let trap = ext.take_pending_trap().unwrap();
        assert_eq!(trap.kind, TrapKind::DoubleFreeSlot);
        assert_eq!(trap.free_site, Some(site(2)));
        assert!(ext
            .manifestations()
            .iter()
            .any(|m| m.bug_type() == Some(BugType::DoubleFree)));
    }

    #[test]
    fn sentry_uninit_read_traps() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let err = ext
            .observe_access(&mut clock, a, 8, AccessKind::Read, site(5))
            .unwrap_err();
        assert_eq!(err.class(), "sentry-trap");
        assert_eq!(
            ext.take_pending_trap().unwrap().kind,
            TrapKind::UninitReadSlot
        );
        assert_eq!(ext.counters().uninit_reads, 1);
    }

    #[test]
    fn sentry_slack_corruption_is_caught_on_free() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        // Unobserved overflow (e.g. through code the hook cannot see):
        // the canary slack still convicts it at free time.
        mem.write(a.offset(64), &[0x77; 4]).unwrap();
        let err = ext.free(&mut mem, &mut clock, a, site(2)).unwrap_err();
        assert_eq!(err.class(), "sentry-trap");
        assert_eq!(
            ext.take_pending_trap().unwrap().kind,
            TrapKind::CanaryOnFree
        );
        assert!(ext
            .manifestations()
            .iter()
            .any(|m| m.bug_type() == Some(BugType::BufferOverflow)));
    }

    #[test]
    fn delay_free_patch_neutralizes_sentry_poisoning() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let symbols = SymbolTable::new();
        ext.set_normal(PatchSet::from_patches([Patch::new(
            BugType::DanglingRead,
            site(2),
            &symbols,
        )]));
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        // Patched delay-free quarantines instead of poisoning: the
        // dangling read is neutralized, not trapped, so the patch-health
        // monitor never sees a recurrence.
        ext.observe_access(&mut clock, a, 8, AccessKind::Read, site(3))
            .unwrap();
        assert!(ext.peek_pending_trap().is_none());
        assert_eq!(ext.counters().quarantine_reads, 1);
        ext.flush_quarantine(&mut mem).unwrap();
        assert!(ext.table().is_empty());
    }

    #[test]
    fn patched_sites_are_not_sampled() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let symbols = SymbolTable::new();
        ext.set_normal(PatchSet::from_patches([Patch::new(
            BugType::BufferOverflow,
            site(1),
            &symbols,
        )]));
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let b = ext.malloc(&mut mem, &mut clock, 64, site(2)).unwrap();
        assert!(ext.table().get_by_user(a).unwrap().sentried.is_none());
        assert!(ext.table().get_by_user(b).unwrap().sentried.is_some());
    }

    #[test]
    fn sentried_plan_padding_absorbs_overflow_in_trials() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        ext.set_diagnostic(ChangePlan::all_preventive());
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let info = ext.table().get_by_user(a).unwrap();
        assert!(info.sentried.is_some());
        assert!(
            info.pad.unwrap().left > SLOT_SLACK,
            "plan pad moved into slot"
        );
        // The overflow lands in the preventive padding inside the slot:
        // absorbed, counted, not trapped — trials behave as on the heap.
        ext.observe_access(&mut clock, a.offset(64), 4, AccessKind::Write, site(7))
            .unwrap();
        assert!(ext.peek_pending_trap().is_none());
        assert_eq!(ext.counters().padding_writes, 1);
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
    }

    #[test]
    fn sentried_realloc_moves_and_poisons_old_slot() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let a = ext.malloc(&mut mem, &mut clock, 32, site(1)).unwrap();
        ext.observe_access(&mut clock, a, 32, AccessKind::Write, site(1))
            .unwrap();
        mem.write(a, b"0123456789abcdefghijklmnopqrstuv").unwrap();
        let b = ext.realloc(&mut mem, &mut clock, a, 128, site(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(
            mem.read_bytes(b, 32).unwrap(),
            b"0123456789abcdefghijklmnopqrstuv"
        );
        // The old slot is poisoned; a stale read through it traps on the
        // page permission bits and is attributed as a poison access.
        ext.observe_access(&mut clock, a, 8, AccessKind::Read, site(9))
            .unwrap();
        let err = mem.read_bytes(a, 8).unwrap_err();
        assert!(matches!(err, MemFault::GuardTrap { .. }), "{err}");
        ext.on_guard_trap(&mut clock, a, 8, AccessKind::Read, site(9));
        assert_eq!(
            ext.take_pending_trap().unwrap().kind,
            TrapKind::PoisonAccess
        );
    }

    #[test]
    fn sentry_decisions_replay_after_clone() {
        let (mut mem, mut ext, mut clock) = sentry_setup();
        let mut ext2 = ext.clone();
        let mut mem2 = mem.clone();
        let mut clock2 = Clock::new();
        let mut sampled = Vec::new();
        let mut sampled2 = Vec::new();
        for i in 0..200u64 {
            let s = site(i % 7);
            let a = ext.malloc(&mut mem, &mut clock, 40, s).unwrap();
            sampled.push(ext.table().get_by_user(a).unwrap().sentried);
            let b = ext2.malloc(&mut mem2, &mut clock2, 40, s).unwrap();
            sampled2.push(ext2.table().get_by_user(b).unwrap().sentried);
            if i % 3 == 0 {
                ext.free(&mut mem, &mut clock, a, site(50)).unwrap();
                ext2.free(&mut mem2, &mut clock2, b, site(50)).unwrap();
            }
        }
        assert_eq!(sampled, sampled2, "cloned allocators replay decisions");
    }

    #[test]
    fn trim_marks_splits_straddling() {
        let mut marks = vec![(100, 100)]; // [100, 200)
        trim_marks(&mut marks, 140, 160);
        assert_eq!(marks, vec![(100, 40), (160, 40)]);
        trim_marks(&mut marks, 0, 100);
        assert_eq!(marks, vec![(100, 40), (160, 40)]);
        trim_marks(&mut marks, 100, 300);
        assert!(marks.is_empty());
    }
}
