//! Heap marking (paper §4.1, Fig. 3).
//!
//! Phase 1 of the diagnosis must find the *latest checkpoint before the
//! bug-triggering point*. Preventive changes applied from a checkpoint
//! *after* the trigger can accidentally avoid the failure by disturbing
//! the heap layout (the dangling write that corrupted object `E` misses it
//! once padding moves `E` elsewhere), which would misidentify the
//! checkpoint.
//!
//! Heap marking closes the hole: before re-executing from a checkpoint,
//! every free chunk in the heap is filled with canary values and a canary
//! pad is placed after the last object (the top chunk). A bug that
//! triggered *before* the checkpoint — a dangling write or overflow into
//! memory that is now free — corrupts the marks and is detected by the
//! post-run scan even if the original failure is masked. Dangling *reads*
//! of such memory return canary data, so the failure still occurs.

use fa_mem::SimMemory;
use fa_proc::{AllocBackend, Fault};

use crate::canary::{check_canary, fill_canary};
use crate::events::Manifestation;
use crate::ext::ExtAllocator;

/// How many bytes of the top chunk's user area are marked.
const TOP_MARK_BYTES: u64 = 4096;

impl ExtAllocator {
    /// Canary-fills all free chunks and the head of the top chunk,
    /// recording the marked ranges.
    ///
    /// Marks are trimmed automatically when the allocator legitimately
    /// reuses marked memory. While any mark is live, quarantine eviction
    /// is suspended (real frees would scribble cookies into marked
    /// regions).
    pub fn mark_heap(&mut self, mem: &mut SimMemory) -> Result<(), Fault> {
        self.marks.clear();
        let chunks = self.heap().walk(mem)?;
        let mut marks = Vec::new();
        for c in &chunks {
            if c.in_use {
                continue;
            }
            let (start, len) = if c.is_top {
                (c.user, c.usable().min(TOP_MARK_BYTES))
            } else {
                (c.user, c.usable())
            };
            if len == 0 {
                continue;
            }
            fill_canary(mem, start, len)?;
            marks.push((start.0, len));
        }
        self.marks = marks;
        Ok(())
    }

    /// Scans the marked ranges for corruption, appending
    /// [`Manifestation::MarkCorrupt`] for each damaged range.
    pub fn scan_marks(&mut self, mem: &mut SimMemory) -> Result<(), Fault> {
        let marks = self.marks.clone();
        for (start, len) in marks {
            if let Some((off, _)) = check_canary(mem, fa_mem::Addr(start), len)? {
                self.push_mark_corrupt(fa_mem::Addr(start + off));
            }
        }
        Ok(())
    }

    /// Returns `true` if any heap marks are live.
    pub fn has_marks(&self) -> bool {
        !self.marks.is_empty()
    }

    /// Drops all marks (end of a phase-1 iteration).
    pub fn clear_marks(&mut self) {
        self.marks.clear();
    }

    fn push_mark_corrupt(&mut self, addr: fa_mem::Addr) {
        // Route through a small helper to keep the manifests list private.
        self.push_manifestation(Manifestation::MarkCorrupt { addr });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::ChangePlan;
    use fa_heap::Heap;
    use fa_mem::Addr;
    use fa_proc::{CallSite, Clock};

    fn setup() -> (SimMemory, ExtAllocator, Clock) {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        (mem, ExtAllocator::attach(heap), Clock::new())
    }

    fn site(id: u64) -> CallSite {
        CallSite([id, 0, 0])
    }

    #[test]
    fn marks_cover_free_chunks_and_top() {
        let (mut mem, mut ext, mut clock) = setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let _b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap(); // real free: binned chunk
        ext.set_diagnostic(ChangePlan::all_preventive());
        ext.mark_heap(&mut mem).unwrap();
        assert!(ext.has_marks());
        // The freed chunk's user area is canary now.
        assert_eq!(
            mem.read_u8(a).unwrap(),
            crate::CANARY_BYTE,
            "freed chunk must be marked"
        );
        ext.scan_marks(&mut mem).unwrap();
        assert!(ext.manifestations().is_empty(), "no corruption yet");
    }

    #[test]
    fn pre_checkpoint_dangling_write_detected_via_marks() {
        let (mut mem, mut ext, mut clock) = setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let _b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        // Bug triggers BEFORE the checkpoint: object freed, dangling
        // pointer retained.
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        // "Checkpoint" and re-execution with marking.
        ext.set_diagnostic(ChangePlan::all_preventive());
        ext.mark_heap(&mut mem).unwrap();
        // The dangling write happens during re-execution into memory freed
        // before the checkpoint — into a marked region.
        mem.write_u64(a.offset(16), 0xbad).unwrap();
        ext.scan_marks(&mut mem).unwrap();
        assert!(
            ext.manifestations()
                .iter()
                .any(|m| matches!(m, Manifestation::MarkCorrupt { .. })),
            "mark corruption must expose the pre-checkpoint bug"
        );
    }

    #[test]
    fn reuse_of_marked_memory_trims_marks() {
        let (mut mem, mut ext, mut clock) = setup();
        let a = ext.malloc(&mut mem, &mut clock, 256, site(1)).unwrap();
        let _b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        ext.set_diagnostic(ChangePlan::none());
        ext.mark_heap(&mut mem).unwrap();
        // Reuse the marked chunk; the app writes to it legitimately.
        let c = ext.malloc(&mut mem, &mut clock, 256, site(3)).unwrap();
        assert_eq!(c, a);
        mem.fill(c, 256, 0x11).unwrap();
        ext.scan_marks(&mut mem).unwrap();
        assert!(
            ext.manifestations().is_empty(),
            "legitimate reuse must not read as corruption: {:?}",
            ext.manifestations()
        );
    }

    #[test]
    fn top_allocation_after_marking_is_clean() {
        let (mut mem, mut ext, mut clock) = setup();
        let _a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.set_diagnostic(ChangePlan::none());
        ext.mark_heap(&mut mem).unwrap();
        // Allocations carve the (marked) top chunk.
        for i in 0..5 {
            let p = ext.malloc(&mut mem, &mut clock, 128, site(2 + i)).unwrap();
            mem.fill(p, 128, 0x22).unwrap();
        }
        ext.scan_marks(&mut mem).unwrap();
        assert!(
            ext.manifestations().is_empty(),
            "top carving must not trip marks: {:?}",
            ext.manifestations()
        );
    }

    #[test]
    fn clear_marks_disables_detection() {
        let (mut mem, mut ext, mut clock) = setup();
        let a = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        let _b = ext.malloc(&mut mem, &mut clock, 64, site(1)).unwrap();
        ext.free(&mut mem, &mut clock, a, site(2)).unwrap();
        ext.set_diagnostic(ChangePlan::none());
        ext.mark_heap(&mut mem).unwrap();
        ext.clear_marks();
        assert!(!ext.has_marks());
        mem.write_u64(a.offset(16), 0xbad).unwrap();
        ext.scan_marks(&mut mem).unwrap();
        assert!(ext.manifestations().is_empty());
    }
}
