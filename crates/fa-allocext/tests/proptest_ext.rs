//! Property-based tests: the allocator extension must preserve heap
//! integrity, object-table consistency, and application data under
//! arbitrary operation scripts in every mode and under every
//! environmental-change plan.

use proptest::prelude::*;

use fa_allocext::{BugType, ChangePlan, ExtAllocator, Mode, ObjState, Patch, PatchSet};
use fa_heap::Heap;
use fa_mem::{Addr, SimMemory};
use fa_proc::{AllocBackend, CallSite, Clock, SymbolTable};

#[derive(Clone, Debug)]
enum Op {
    Malloc { size: u16, site: u8 },
    Free { idx: u8, site: u8 },
    Write { idx: u8, stamp: u8 },
    Read { idx: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u16..1024, any::<u8>()).prop_map(|(size, site)| Op::Malloc { size, site }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(idx, site)| Op::Free { idx, site }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(idx, stamp)| Op::Write { idx, stamp }),
        1 => any::<u8>().prop_map(|idx| Op::Read { idx }),
    ]
}

fn plan_strategy() -> impl Strategy<Value = ChangePlan> {
    let mode = || prop_oneof![Just(Mode::Off), Just(Mode::Prevent), Just(Mode::Expose),];
    (mode(), mode(), mode(), mode(), mode()).prop_map(
        |(overflow, dangling_read, dangling_write, double_free, uninit_read)| ChangePlan {
            overflow,
            dangling_read,
            dangling_write,
            double_free,
            uninit_read,
            heap_marking: false,
        },
    )
}

fn site(id: u8) -> CallSite {
    CallSite([u64::from(id) + 1, 7, 9])
}

/// Runs a script under a given extension configuration; checks that live
/// objects keep their contents and the heap stays structurally sound.
fn run_script(ops: &[Op], configure: impl FnOnce(&mut ExtAllocator)) {
    let mut mem = SimMemory::new();
    let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
    let mut ext = ExtAllocator::attach(heap);
    configure(&mut ext);
    let mut clock = Clock::new();
    // live: (user, size, stamp)
    let mut live: Vec<(Addr, u64, u8)> = Vec::new();

    for op in ops {
        match op {
            Op::Malloc { size, site: s } => {
                let size = u64::from(*size);
                let p = ext.malloc(&mut mem, &mut clock, size, site(*s)).unwrap();
                mem.fill(p, size, 0x11).unwrap();
                live.push((p, size, 0x11));
            }
            Op::Free { idx, site: s } => {
                if live.is_empty() {
                    continue;
                }
                let (p, _, _) = live.swap_remove(*idx as usize % live.len());
                ext.free(&mut mem, &mut clock, p, site(*s)).unwrap();
            }
            Op::Write { idx, stamp } => {
                if live.is_empty() {
                    continue;
                }
                let slot = *idx as usize % live.len();
                let (p, size, _) = live[slot];
                ext.observe_access(&mut clock, p, size, fa_mem::AccessKind::Write, site(0))
                    .unwrap();
                mem.fill(p, size, *stamp).unwrap();
                live[slot].2 = *stamp;
            }
            Op::Read { idx } => {
                if live.is_empty() {
                    continue;
                }
                let slot = *idx as usize % live.len();
                let (p, size, stamp) = live[slot];
                ext.observe_access(&mut clock, p, size, fa_mem::AccessKind::Read, site(0))
                    .unwrap();
                let data = mem.read_bytes(p, size).unwrap();
                assert!(
                    data.iter().all(|&b| b == stamp),
                    "live object corrupted by the extension"
                );
            }
        }
        // Invariants after every op.
        for &(p, size, stamp) in &live {
            let data = mem.read_bytes(p, size).unwrap();
            assert!(
                data.iter().all(|&b| b == stamp),
                "object at {p} lost its contents"
            );
            let info = ext.table().get_by_user(p).expect("live object tracked");
            assert_eq!(info.size, size);
            assert!(matches!(info.state, ObjState::Live));
        }
    }
    // Quarantined bytes must match the quarantine's accounting.
    let quarantined: u64 = ext
        .table()
        .iter()
        .filter(|o| matches!(o.state, ObjState::Quarantined { .. }))
        .map(|o| o.outer_size)
        .sum();
    assert_eq!(quarantined, ext.quarantine().bytes());
    // Structural check of the underlying heap.
    ext.heap().check_integrity(&mut mem).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn normal_mode_preserves_everything(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_script(&ops, |_| {});
    }

    #[test]
    fn diagnostic_mode_preserves_everything(
        ops in prop::collection::vec(op_strategy(), 1..80),
        plan in plan_strategy(),
    ) {
        run_script(&ops, move |ext| ext.set_diagnostic(plan));
    }

    #[test]
    fn validation_mode_preserves_everything(
        ops in prop::collection::vec(op_strategy(), 1..80),
        seed in any::<u64>(),
    ) {
        run_script(&ops, move |ext| ext.set_validation(PatchSet::new(), seed));
    }

    #[test]
    fn patched_mode_preserves_everything(
        ops in prop::collection::vec(op_strategy(), 1..80),
        patch_site in any::<u8>(),
    ) {
        let symbols = SymbolTable::new();
        let patches = PatchSet::from_patches([
            Patch::new(BugType::BufferOverflow, site(patch_site), &symbols),
            Patch::new(BugType::DanglingRead, site(patch_site.wrapping_add(1)), &symbols),
            Patch::new(BugType::UninitRead, site(patch_site.wrapping_add(2)), &symbols),
        ]);
        run_script(&ops, move |ext| ext.set_normal(patches));
    }

    #[test]
    fn clone_then_replay_is_identical(ops in prop::collection::vec(op_strategy(), 1..60)) {
        // The extension must be deterministic and checkpoint-safe: a clone
        // receiving the same operations ends in the same state.
        let mut mem_a = SimMemory::new();
        let heap = Heap::new(&mut mem_a, Addr(0x1000_0000), 1 << 26).unwrap();
        let mut a = ExtAllocator::attach(heap);
        let mut mem_b = mem_a.clone();
        let mut b = a.clone();
        let mut clock_a = Clock::new();
        let mut clock_b = Clock::new();
        let mut live_a: Vec<Addr> = Vec::new();
        let mut live_b: Vec<Addr> = Vec::new();
        for op in &ops {
            match op {
                Op::Malloc { size, site: s } => {
                    live_a.push(a.malloc(&mut mem_a, &mut clock_a, u64::from(*size), site(*s)).unwrap());
                    live_b.push(b.malloc(&mut mem_b, &mut clock_b, u64::from(*size), site(*s)).unwrap());
                }
                Op::Free { idx, site: s } if !live_a.is_empty() => {
                    let i = *idx as usize % live_a.len();
                    a.free(&mut mem_a, &mut clock_a, live_a.swap_remove(i), site(*s)).unwrap();
                    b.free(&mut mem_b, &mut clock_b, live_b.swap_remove(i), site(*s)).unwrap();
                }
                _ => {}
            }
        }
        prop_assert_eq!(live_a, live_b, "identical addresses");
        prop_assert_eq!(clock_a.now(), clock_b.now(), "identical virtual time");
        prop_assert_eq!(a.table().len(), b.table().len());
        prop_assert_eq!(a.heap().stats(), b.heap().stats());
    }
}
