//! Regression: a pooled trial context rebound across *different apps*
//! must be indistinguishable — snapshot digest and trial reports alike —
//! from a freshly forked one.
//!
//! The hazard is stale state surviving the rebind: a page (with its
//! cached content hash) left over from the previous binding that the
//! diff-aware restore fails to replace would skew
//! `CtxSnapshot::digest()` and corrupt trial outcomes silently.

use fa_allocext::{ChangePlan, ExtAllocator};
use fa_checkpoint::{AdaptiveConfig, CheckpointManager};
use fa_exec::{ProcessSlab, SlabSubstrate, TrialSpec, TrialSubstrate};
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, Process, ProcessCtx, Response};

/// Fills one small buffer with a per-app byte pattern; apps A and B
/// differ in allocation size and fill byte so their heaps (and page
/// contents) diverge thoroughly.
#[derive(Clone)]
struct PatternApp {
    tag: &'static str,
    size: u64,
    fill: u8,
}

impl App for PatternApp {
    fn name(&self) -> &'static str {
        self.tag
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            let p = ctx.malloc(self.size + input.a)?;
            ctx.fill(p, self.size + input.a, self.fill)?;
            ctx.free(p)?;
            Ok(Response::bytes(self.size))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

fn launch(app: PatternApp) -> (Process, CheckpointManager) {
    let mut ctx = ProcessCtx::new(1 << 26);
    ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
    let proc = Process::launch(Box::new(app), ctx).unwrap();
    let mgr = CheckpointManager::new(
        AdaptiveConfig {
            base_interval_ns: 1_000_000,
            ..AdaptiveConfig::default()
        },
        16,
    );
    (proc, mgr)
}

fn input(i: u64) -> Input {
    InputBuilder::op(0).a(i * 8).gap_us(50).build()
}

/// Feeds, checkpoints mid-stream, feeds more, and returns the process,
/// the checkpoint snapshot, and a replay spec covering the tail region.
fn scenario(app: PatternApp) -> (Process, fa_proc::ProcSnapshot, TrialSpec) {
    let (mut proc, mut mgr) = launch(app);
    for i in 0..6 {
        proc.feed(input(i));
    }
    let ckpt = mgr.force_checkpoint(&mut proc);
    for i in 6..10 {
        proc.feed(input(i));
    }
    let snap = mgr.get(ckpt).unwrap().snap.clone();
    let spec = TrialSpec {
        ckpt_id: ckpt,
        plan: ChangePlan::all_preventive(),
        mark: true,
        timing_seed: 7,
        until: proc.cursor(),
    };
    (proc, snap, spec)
}

#[test]
fn slab_reuse_across_apps_matches_fresh_fork() {
    let app_a = PatternApp {
        tag: "app-a",
        size: 64,
        fill: 0xaa,
    };
    let app_b = PatternApp {
        tag: "app-b",
        size: 4096,
        fill: 0xbb,
    };

    let mut slab = ProcessSlab::new();

    // First binding: app A runs a trial on a freshly forked context.
    let (proc_a, snap_a, spec_a) = scenario(app_a);
    let mut sub = SlabSubstrate::new(slab.acquire(&proc_a), snap_a.clone(), false);
    let report_a = sub.reexecute(&spec_a).unwrap();
    assert!(report_a.passed, "benign replay must pass: {report_a:?}");
    let digest_a = {
        sub.restore(&snap_a).unwrap();
        sub.snapshot().digest()
    };
    slab.release(sub.into_process());
    assert_eq!(slab.reuses(), 0);

    // Second binding: the SAME pooled context is rebound to app B.
    let (proc_b, snap_b, spec_b) = scenario(app_b);
    let mut reused = SlabSubstrate::new(slab.acquire(&proc_b), snap_b.clone(), false);
    assert_eq!(slab.reuses(), 1, "the pooled context must be recycled");

    // A fresh fork is the ground truth the recycled context must match.
    let mut fresh = SlabSubstrate::new(proc_b.fork(), snap_b.clone(), false);

    let report_reused = reused.reexecute(&spec_b).unwrap();
    let report_fresh = fresh.reexecute(&spec_b).unwrap();
    assert!(report_fresh.passed);
    assert_eq!(report_reused.passed, report_fresh.passed);
    assert_eq!(report_reused.manifests.len(), report_fresh.manifests.len());
    assert_eq!(report_reused.alloc_sites, report_fresh.alloc_sites);
    assert_eq!(report_reused.changed_objects, report_fresh.changed_objects);
    assert_eq!(report_reused.elapsed_ns, report_fresh.elapsed_ns);

    // Digest-exactness: after restoring both contexts from B's snapshot,
    // their own snapshots must agree bit-for-bit — a stale page (or a
    // stale cached page hash) surviving the rebind would break this.
    reused.restore(&snap_b).unwrap();
    fresh.restore(&snap_b).unwrap();
    let digest_reused = reused.snapshot().digest();
    let digest_fresh = fresh.snapshot().digest();
    assert_eq!(digest_reused, digest_fresh);
    assert_ne!(
        digest_reused, digest_a,
        "apps A and B must produce different snapshot digests"
    );

    // Third acquire: contexts keep cycling.
    slab.release(reused.into_process());
    let again = slab.acquire(&proc_b);
    assert_eq!(slab.reuses(), 2);
    assert_eq!(slab.acquisitions(), 3);
    drop(again);
}
