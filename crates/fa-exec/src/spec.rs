//! Trial specifications: the unit of work the substrate executes.

use fa_allocext::ChangePlan;

use crate::harness::{ReexecOptions, RunReport};

/// One fully-specified re-execution trial.
///
/// A trial is a pure function of its spec (given the frozen input log):
/// roll back to `ckpt_id`, install `plan` on the allocator extension,
/// optionally heap-mark, perturb timing with `timing_seed`, and replay
/// until `until`. Pureness is what makes speculation sound — the
/// diagnosis scheduler can run a spec on any [`crate::TrialSubstrate`]
/// (the supervised process, a fork, a pooled slab context) and commit
/// the report as if it had executed sequentially.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialSpec {
    /// Checkpoint to roll back to.
    pub ckpt_id: u64,
    /// Environmental changes to install for the replay.
    pub plan: ChangePlan,
    /// Apply heap marking after rollback (phase 1, Fig. 3 defence).
    pub mark: bool,
    /// Timing seed for the replay ("timing-based change", paper §4.1).
    pub timing_seed: u64,
    /// Replay until the cursor reaches this index (exclusive).
    pub until: usize,
}

impl TrialSpec {
    /// Lowers the spec into harness options. `integrity_check` comes from
    /// the engine configuration, not the spec: it is a property of the
    /// deployment's error monitors, identical for every trial.
    pub fn options(&self, integrity_check: bool) -> ReexecOptions {
        ReexecOptions {
            mark_heap: self.mark,
            timing_seed: self.timing_seed,
            until_cursor: self.until,
            integrity_check,
        }
    }
}

/// What a completed trial yields. Today this is exactly the harness
/// [`RunReport`]; the alias is the substrate's name for it.
pub type TrialOutcome = RunReport;
