//! Typed errors for the trial-execution substrate.
//!
//! Historically the core crate asserted its way through trial setup:
//! a missing checkpoint, a corrupt snapshot, or a foreign allocator
//! aborted the whole supervisor with a panic. `FaError` replaces those
//! aborts with values the runtime can act on — a poisoned trial reports
//! as a failed run and recovery descends the degradation ladder instead
//! of taking the process down with it.

use std::fmt;

/// Why a trial — or a trial-infrastructure operation — could not produce
/// a [`crate::RunReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaError {
    /// An operation that only makes sense with a crashed process was
    /// invoked while no failure is pending. Carries the operation name.
    NoPendingFailure(&'static str),
    /// The requested checkpoint id is not retained in the ring.
    CheckpointMissing(u64),
    /// The requested checkpoint failed its checksum verification.
    CheckpointCorrupt(u64),
    /// The process does not run on the First-Aid extension allocator.
    WrongAllocator,
    /// A trial worker died (panicked or was lost) before reporting.
    TrialPoisoned(String),
}

impl fmt::Display for FaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaError::NoPendingFailure(what) => {
                write!(f, "{what} requires a pending failure")
            }
            FaError::CheckpointMissing(id) => write!(f, "checkpoint {id} not retained"),
            FaError::CheckpointCorrupt(id) => {
                write!(f, "checkpoint {id} failed checksum verification")
            }
            FaError::WrongAllocator => {
                write!(f, "First-Aid requires the process to run on ExtAllocator")
            }
            FaError::TrialPoisoned(why) => write!(f, "trial worker poisoned: {why}"),
        }
    }
}

impl std::error::Error for FaError {}

/// Result alias used throughout the substrate.
pub type FaResult<T> = Result<T, FaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        // The fallible APIs must report the same diagnostics the old
        // panicking paths printed, so logs stay greppable across the
        // migration.
        assert_eq!(
            FaError::CheckpointMissing(7).to_string(),
            "checkpoint 7 not retained"
        );
        assert_eq!(
            FaError::WrongAllocator.to_string(),
            "First-Aid requires the process to run on ExtAllocator"
        );
        assert_eq!(
            FaError::NoPendingFailure("recover").to_string(),
            "recover requires a pending failure"
        );
    }
}
