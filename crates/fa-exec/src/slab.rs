//! Pooled, reusable trial contexts.
//!
//! A diagnosis wave of K speculative trials used to fork K fresh
//! processes — a full `SimMemory` page-map clone, allocator clone, and
//! log copy per trial, discarded at the end of the wave. The slab keeps
//! those contexts alive across waves: a recycled context is rebound to
//! the current template ([`Process::rebind`]) and then restored from the
//! wave's checkpoint snapshot, where the diff-aware
//! [`fa_mem::SimMemory::restore`] only replaces the pages that actually
//! diverged since the context last ran. Page identity (and the per-page
//! cached content hashes riding on it) is preserved through the existing
//! COW digests, so reuse is both cheap and digest-exact.

use fa_proc::Process;

/// A pool of recycled trial processes.
#[derive(Default)]
pub struct ProcessSlab {
    free: Vec<Process>,
    acquisitions: usize,
    reuses: usize,
}

impl ProcessSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        ProcessSlab::default()
    }

    /// Hands out a trial context equivalent to `template.fork()`.
    ///
    /// If a pooled context is available it is rebound to the template
    /// instead of forking a fresh one; the caller must `restore` it from
    /// a snapshot before stepping (every [`crate::SlabSubstrate`] trial
    /// starts with exactly that restore).
    pub fn acquire(&mut self, template: &Process) -> Process {
        self.acquisitions += 1;
        match self.free.pop() {
            Some(mut pooled) => {
                self.reuses += 1;
                pooled.rebind(template);
                pooled
            }
            None => template.fork(),
        }
    }

    /// Returns a trial context to the pool for the next acquire.
    pub fn release(&mut self, trial: Process) {
        self.free.push(trial);
    }

    /// Total contexts handed out over the slab's lifetime.
    pub fn acquisitions(&self) -> usize {
        self.acquisitions
    }

    /// How many acquisitions were served by recycling a pooled context
    /// instead of forking a fresh one.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Contexts currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}
