//! The re-execution harness: rollback + environmental changes + replay.
//!
//! Every diagnosis iteration is one call to [`ReplayHarness::reexecute`]:
//! roll the process back to a checkpoint, configure the allocator
//! extension with a [`ChangePlan`] (optionally heap-marking the rolled-back
//! heap first), replay the input log through the failure region, scan for
//! manifestations, and report what happened.

use fa_allocext::{ChangePlan, ExtAllocator, Manifestation};
use fa_checkpoint::CheckpointManager;
use fa_proc::{CallSite, FailureRecord, Process};

use crate::error::{FaError, FaResult};

/// The fixed virtual-time cost of reinstating saved task state on any
/// rollback or snapshot restore (mirrors
/// [`CheckpointManager::rollback_to`]'s charge).
pub const ROLLBACK_COST_NS: u64 = 80_000;

/// Options for one re-execution iteration.
#[derive(Clone, Debug)]
pub struct ReexecOptions {
    /// Apply heap marking after rollback (phase 1, Fig. 3 defence).
    pub mark_heap: bool,
    /// Timing seed for this re-execution; varying it is the "timing-based
    /// change" that shakes out nondeterministic bugs.
    pub timing_seed: u64,
    /// Replay until the cursor reaches this index (exclusive); the success
    /// criterion requires passing the original failure point plus a margin
    /// of roughly 3 checkpoint intervals (paper §4.1).
    pub until_cursor: usize,
    /// Run the heap-integrity error monitor after every replayed input,
    /// mirroring a deployment that uses stronger error detectors
    /// (paper §3, "one can deploy more sophisticated error detectors").
    /// Replay must use the same monitors as normal execution, or failures
    /// caught by a monitor would not reproduce during diagnosis.
    pub integrity_check: bool,
}

/// The outcome of one re-execution iteration.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// The re-execution passed the whole region without failing.
    pub passed: bool,
    /// The failure, if one occurred.
    pub failure: Option<FailureRecord>,
    /// Manifestations collected (during the run and by the final scan).
    pub manifests: Vec<Manifestation>,
    /// Distinct allocation call-sites seen, in first-seen order.
    pub alloc_sites: Vec<CallSite>,
    /// Distinct deallocation call-sites seen, in first-seen order.
    pub dealloc_sites: Vec<CallSite>,
    /// Reads of quarantined objects observed (dangling-read evidence).
    pub quarantine_reads: u64,
    /// Reads of uninitialized bytes observed (uninit-read evidence).
    pub uninit_reads: u64,
    /// Objects that received an environmental change this iteration
    /// (paper Table 4, "objects" columns).
    pub changed_objects: u64,
    /// Distinct call-sites at which changes were applied this iteration
    /// (paper Table 4, "call-sites" columns).
    pub changed_sites: usize,
    /// Virtual time this iteration consumed (rollback + replay + scan).
    pub elapsed_ns: u64,
}

impl RunReport {
    /// Returns `true` if any manifestation maps to the given bug type.
    pub fn manifested(&self, bug: fa_allocext::BugType) -> bool {
        self.manifests.iter().any(|m| m.bug_type() == Some(bug))
    }

    /// Returns `true` if any heap-mark corruption was found — the bug
    /// triggered before the checkpoint.
    pub fn mark_corrupt(&self) -> bool {
        self.manifests
            .iter()
            .any(|m| matches!(m, Manifestation::MarkCorrupt { .. }))
    }
}

/// Drives rollback/re-execution iterations over a process.
pub struct ReplayHarness;

impl ReplayHarness {
    /// Re-executes the process from checkpoint `ckpt_id` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the process does not run on an [`ExtAllocator`] (the
    /// First-Aid runtime always installs one) or if the checkpoint id is
    /// not retained. Use [`Self::try_reexecute`] to get an error instead.
    pub fn reexecute(
        process: &mut Process,
        manager: &CheckpointManager,
        ckpt_id: u64,
        plan: ChangePlan,
        opts: &ReexecOptions,
    ) -> RunReport {
        Self::try_reexecute(process, manager, ckpt_id, plan, opts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`Self::reexecute`]: a missing or corrupt
    /// checkpoint and a foreign allocator come back as [`FaError`]s the
    /// caller can degrade on, not panics.
    pub fn try_reexecute(
        process: &mut Process,
        manager: &CheckpointManager,
        ckpt_id: u64,
        plan: ChangePlan,
        opts: &ReexecOptions,
    ) -> FaResult<RunReport> {
        let ckpt = manager
            .get(ckpt_id)
            .ok_or(FaError::CheckpointMissing(ckpt_id))?;
        if !ckpt.verify() {
            return Err(FaError::CheckpointCorrupt(ckpt_id));
        }
        // `restore_into` re-verifies; the ring cannot change under the
        // shared borrow, so this cannot fail past the checks above.
        if !manager.restore_into(process, ckpt_id) {
            return Err(FaError::CheckpointCorrupt(ckpt_id));
        }
        Self::try_replay_after_rollback(process, plan, opts)
    }

    /// Re-executes `process` from a raw snapshot, without going through a
    /// [`CheckpointManager`].
    ///
    /// This is the speculative-trial entry point: the parallel diagnosis
    /// scheduler hands each worker thread a pooled (or forked) process
    /// plus a clone of the checkpoint's snapshot and replays there,
    /// leaving the main process (and the manager's ring) untouched. The
    /// rollback side effects mirror [`CheckpointManager::rollback_to`]
    /// exactly — same restore, same fixed rollback cost, same dirty-page
    /// reset — so a trial produces a byte-identical [`RunReport`] whether
    /// it runs here or through [`Self::reexecute`].
    ///
    /// # Panics
    ///
    /// Panics if the process does not run on an [`ExtAllocator`]. Use
    /// [`Self::try_reexecute_on`] to get an error instead.
    pub fn reexecute_on(
        process: &mut Process,
        snap: &fa_proc::ProcSnapshot,
        plan: ChangePlan,
        opts: &ReexecOptions,
    ) -> RunReport {
        Self::try_reexecute_on(process, snap, plan, opts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`Self::reexecute_on`].
    pub fn try_reexecute_on(
        process: &mut Process,
        snap: &fa_proc::ProcSnapshot,
        plan: ChangePlan,
        opts: &ReexecOptions,
    ) -> FaResult<RunReport> {
        process.restore(snap);
        process.ctx.clock.advance(ROLLBACK_COST_NS);
        process.ctx.mem.take_dirty_pages();
        Self::try_replay_after_rollback(process, plan, opts)
    }

    /// The shared replay body: assumes the process is already rolled back.
    fn try_replay_after_rollback(
        process: &mut Process,
        plan: ChangePlan,
        opts: &ReexecOptions,
    ) -> FaResult<RunReport> {
        let mark = opts.mark_heap;
        let start_ns = process.ctx.clock.now();
        process.ctx.timing_seed = opts.timing_seed;
        process.set_pacing(false);
        let marking_ok = process.ctx.with_alloc_and_mem(|alloc, mem| {
            let ext = try_ext(alloc)?;
            ext.set_diagnostic(plan);
            if mark {
                // A corrupt heap walk means the checkpoint already
                // contains the bug's damage: report it like mark
                // corruption so phase 1 rejects this checkpoint and
                // searches further back.
                Ok(ext.mark_heap(mem).is_ok())
            } else {
                Ok(true)
            }
        });
        let marking_ok = match marking_ok {
            Ok(ok) => ok,
            Err(e) => {
                process.set_pacing(true);
                return Err(e);
            }
        };
        if !marking_ok {
            process.set_pacing(true);
            return Ok(RunReport {
                passed: false,
                failure: None,
                manifests: vec![Manifestation::MarkCorrupt {
                    addr: fa_mem::Addr(0),
                }],
                alloc_sites: Vec::new(),
                dealloc_sites: Vec::new(),
                quarantine_reads: 0,
                uninit_reads: 0,
                changed_objects: 0,
                changed_sites: 0,
                elapsed_ns: process.ctx.clock.now().saturating_sub(start_ns) + ROLLBACK_COST_NS,
            });
        }

        while process.cursor() < opts.until_cursor {
            match process.step() {
                Some(r) if r.is_ok() => {}
                _ => break,
            }
            if opts.integrity_check {
                let verdict = process
                    .ctx
                    .with_alloc_and_mem(|alloc, mem| alloc.heap().check_integrity(mem));
                if let Err(e) = verdict {
                    process.raise_failure(fa_proc::Fault::Heap(e));
                    break;
                }
            }
        }

        let failure = process.failure.clone();
        let reached = process.cursor();
        let report = process.ctx.with_alloc_and_mem(|alloc, mem| {
            let ext = try_ext(alloc)?;
            // Final scan: harvest canary evidence that accumulated without
            // being checked mid-run.
            let _ = ext.scan(mem);
            ext.clear_marks();
            Ok(RunReport {
                passed: failure.is_none() && reached >= opts.until_cursor,
                failure: failure.clone(),
                manifests: ext.manifestations().to_vec(),
                alloc_sites: ext.alloc_sites_seen().to_vec(),
                dealloc_sites: ext.dealloc_sites_seen().to_vec(),
                quarantine_reads: ext.counters().quarantine_reads,
                uninit_reads: ext.counters().uninit_reads,
                changed_objects: ext.counters().changed_objects,
                changed_sites: ext.counters().changed_sites.len(),
                elapsed_ns: 0,
            })
        });
        process.set_pacing(true);
        let report = report?;
        Ok(RunReport {
            elapsed_ns: process.ctx.clock.now().saturating_sub(start_ns) + ROLLBACK_COST_NS,
            ..report
        })
    }

    /// Computes the success-region end cursor: the index of the first
    /// input arriving 3 checkpoint intervals (or `margin_ns`) after the
    /// failing input, clamped to the log length.
    pub fn success_end_cursor(process: &Process, failure_index: usize, margin_ns: u64) -> usize {
        let log = process.log();
        let mut acc = 0u64;
        let mut end = failure_index + 1;
        for (i, input) in log.iter().enumerate().skip(failure_index + 1) {
            acc += input.gap_ns;
            if acc >= margin_ns {
                return i + 1;
            }
            end = i + 1;
        }
        end.min(log.len())
    }
}

/// Downcasts the backend to the extension allocator.
///
/// # Panics
///
/// Panics if the process runs on a different allocator; use
/// [`try_ext`] for a fallible downcast.
pub fn expect_ext(alloc: &mut dyn fa_proc::AllocBackend) -> &mut ExtAllocator {
    try_ext(alloc).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible downcast of the backend to the extension allocator.
pub fn try_ext(alloc: &mut dyn fa_proc::AllocBackend) -> FaResult<&mut ExtAllocator> {
    alloc
        .as_any_mut()
        .downcast_mut::<ExtAllocator>()
        .ok_or(FaError::WrongAllocator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_allocext::BugType;
    use fa_checkpoint::AdaptiveConfig;
    use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};

    /// Overflows a buffer by `input.b` bytes when op == 1.
    #[derive(Clone, Default)]
    struct OverflowApp;

    impl App for OverflowApp {
        fn name(&self) -> &'static str {
            "overflow-app"
        }

        fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
            ctx.call("serve", |ctx| {
                ctx.call("build_buf", |ctx| {
                    let p = ctx.malloc(64)?;
                    let write_len = 64 + input.b; // bug: off-by-input.b
                    ctx.fill(p, write_len, 0x42)?;
                    ctx.free(p)?;
                    Ok(Response::bytes(64))
                })
            })
        }

        fn clone_app(&self) -> BoxedApp {
            Box::new(self.clone())
        }
    }

    fn launch() -> (Process, CheckpointManager) {
        let mut ctx = ProcessCtx::new(1 << 26);
        ctx.swap_alloc(|old| Box::new(ExtAllocator::attach(old.heap().clone())));
        let proc = Process::launch(Box::new(OverflowApp), ctx).unwrap();
        let mgr = CheckpointManager::new(
            AdaptiveConfig {
                base_interval_ns: 1_000_000,
                ..AdaptiveConfig::default()
            },
            16,
        );
        (proc, mgr)
    }

    fn normal(i: u64) -> Input {
        InputBuilder::op(0).a(i).gap_us(50).build()
    }

    fn buggy() -> Input {
        InputBuilder::op(1).b(40).gap_us(50).buggy().build()
    }

    #[test]
    fn preventive_reexecution_survives_overflow() {
        let (mut proc, mut mgr) = launch();
        for i in 0..5 {
            proc.feed(normal(i));
        }
        let ckpt = mgr.force_checkpoint(&mut proc);
        for i in 0..3 {
            proc.feed(normal(i));
        }
        let r = proc.feed(buggy());
        assert!(!r.is_ok(), "overflow must crash without protection");
        let failure_index = proc.failure.as_ref().unwrap().input_index;
        // Queue margin inputs.
        for i in 0..3 {
            proc.enqueue(normal(i));
        }
        let until = ReplayHarness::success_end_cursor(&proc, failure_index, 150_000);
        assert!(until > failure_index);

        // Plain re-execution fails deterministically again.
        let r = ReplayHarness::reexecute(
            &mut proc,
            &mgr,
            ckpt,
            ChangePlan::none(),
            &ReexecOptions {
                mark_heap: false,
                timing_seed: 99,
                until_cursor: until,
                integrity_check: false,
            },
        );
        assert!(!r.passed);
        assert!(r.failure.is_some());

        // All-preventive re-execution passes.
        let r = ReplayHarness::reexecute(
            &mut proc,
            &mgr,
            ckpt,
            ChangePlan::all_preventive(),
            &ReexecOptions {
                mark_heap: true,
                timing_seed: 0,
                until_cursor: until,
                integrity_check: false,
            },
        );
        assert!(
            r.passed,
            "padding must absorb the overflow: {:?}",
            r.failure
        );
        assert!(!r.mark_corrupt());
        assert!(r.elapsed_ns > 0);

        // Exposing probe identifies the overflow and its call-site.
        let r = ReplayHarness::reexecute(
            &mut proc,
            &mgr,
            ckpt,
            ChangePlan::probe(BugType::BufferOverflow, &BugType::ALL),
            &ReexecOptions {
                mark_heap: false,
                timing_seed: 0,
                until_cursor: until,
                integrity_check: false,
            },
        );
        assert!(r.manifested(BugType::BufferOverflow));
        assert!(!r.alloc_sites.is_empty());
    }

    #[test]
    fn reexecute_on_fork_matches_reexecute() {
        let (mut proc, mut mgr) = launch();
        for i in 0..5 {
            proc.feed(normal(i));
        }
        let ckpt = mgr.force_checkpoint(&mut proc);
        for i in 0..3 {
            proc.feed(normal(i));
        }
        proc.feed(buggy());
        let failure_index = proc.failure.as_ref().unwrap().input_index;
        for i in 0..3 {
            proc.enqueue(normal(i));
        }
        let until = ReplayHarness::success_end_cursor(&proc, failure_index, 150_000);
        let opts = ReexecOptions {
            mark_heap: false,
            timing_seed: 7,
            until_cursor: until,
            integrity_check: false,
        };

        // Speculative replay on a fork from the raw snapshot...
        let mut fork = proc.fork();
        let snap = mgr.get(ckpt).unwrap().snap.clone();
        let spec = ReplayHarness::reexecute_on(
            &mut fork,
            &snap,
            ChangePlan::probe(BugType::BufferOverflow, &BugType::ALL),
            &opts,
        );
        // ...must match the managed rollback path byte for byte.
        let main = ReplayHarness::reexecute(
            &mut proc,
            &mgr,
            ckpt,
            ChangePlan::probe(BugType::BufferOverflow, &BugType::ALL),
            &opts,
        );
        assert_eq!(spec.passed, main.passed);
        assert_eq!(spec.manifests.len(), main.manifests.len());
        assert_eq!(spec.alloc_sites, main.alloc_sites);
        assert_eq!(spec.dealloc_sites, main.dealloc_sites);
        assert_eq!(spec.quarantine_reads, main.quarantine_reads);
        assert_eq!(spec.uninit_reads, main.uninit_reads);
        assert_eq!(spec.elapsed_ns, main.elapsed_ns);
        assert!(spec.manifested(BugType::BufferOverflow));
    }

    #[test]
    fn try_reexecute_reports_missing_checkpoint() {
        let (mut proc, mgr) = launch();
        proc.feed(normal(0));
        let err = ReplayHarness::try_reexecute(
            &mut proc,
            &mgr,
            999,
            ChangePlan::none(),
            &ReexecOptions {
                mark_heap: false,
                timing_seed: 0,
                until_cursor: 1,
                integrity_check: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, FaError::CheckpointMissing(999));
    }

    #[test]
    fn success_end_cursor_respects_gaps() {
        let (mut proc, _mgr) = launch();
        for i in 0..3 {
            proc.feed(normal(i));
        }
        for _ in 0..10 {
            proc.enqueue(InputBuilder::op(0).gap_us(100).build());
        }
        // Failure at index 2; margin of 350 µs covers inputs 3..=6 (gaps
        // of 100 µs each reach 400 µs at index 6).
        let end = ReplayHarness::success_end_cursor(&proc, 2, 350_000);
        assert_eq!(end, 7);
        // Margin beyond the log clamps.
        let end = ReplayHarness::success_end_cursor(&proc, 2, 10_000_000_000);
        assert_eq!(end, proc.log().len());
    }
}
