//! # fa-exec — the unified trial-execution substrate
//!
//! First-Aid's diagnosis loop is *re-execution under environmental
//! changes* (paper §3.3): roll the crashed process back to a checkpoint,
//! perturb the allocator's behaviour, replay the logged inputs, and see
//! whether the failure moves. Four subsystems drive that loop — the core
//! runtime's recovery path and degradation ladder, the diagnosis engine's
//! speculative trial waves, fa-sentry's fast path, and fa-fleet workers.
//! This crate is the one place the loop is implemented:
//!
//! * [`ReplayHarness`] — rollback + [`ChangePlan`](fa_allocext::ChangePlan)
//!   + replay + scan, with panicking and fallible (`try_`) entry points;
//! * [`TrialSpec`] / [`TrialOutcome`] — a trial as a pure value and its
//!   result;
//! * [`TrialSubstrate`] — *where* a trial runs: [`ManagedSubstrate`] on
//!   the supervised process through the checkpoint ring, or
//!   [`SlabSubstrate`] on a pooled context against a cloned snapshot;
//! * [`ProcessSlab`] — recycled trial contexts, reset via the diff-aware
//!   `SimMemory::restore` instead of rebuilt from scratch;
//! * [`FaultGate`] / [`TrialLedger`] — injected-flakiness resolution in
//!   sequential commit order and virtual-clock accounting;
//! * [`FaError`] — typed failures, so a poisoned trial degrades instead
//!   of aborting the supervisor.

mod backoff;
mod error;
mod harness;
mod slab;
mod spec;
mod substrate;
mod watchdog;

pub use backoff::Backoff;
pub use error::{FaError, FaResult};
pub use harness::{expect_ext, try_ext, ReexecOptions, ReplayHarness, RunReport, ROLLBACK_COST_NS};
pub use slab::ProcessSlab;
pub use spec::{TrialOutcome, TrialSpec};
pub use substrate::{FaultGate, ManagedSubstrate, SlabSubstrate, TrialLedger, TrialSubstrate};
pub use watchdog::Watchdog;
