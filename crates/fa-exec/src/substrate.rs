//! Where trials run: the [`TrialSubstrate`] trait and its two
//! implementations, plus the fault gate and the virtual-clock ledger.
//!
//! Four subsystems drive re-execution trials — the recovery path in the
//! core runtime, the diagnosis wave scheduler, fa-sentry's fast path, and
//! fa-fleet workers. Each used to carry its own copy of the
//! fork/restore/replay/fault-gate plumbing. The substrate is that
//! plumbing made first-class: a trial is a [`TrialSpec`], a place to run
//! it is a `TrialSubstrate`, and everything above chooses *which* trials
//! to run, never *how*.

use std::cell::Cell;

use fa_checkpoint::CheckpointManager;
use fa_faults::{FaultPlan, FaultStage};
use fa_proc::{ProcSnapshot, Process};

use crate::backoff::Backoff;
use crate::error::FaResult;
use crate::harness::{ReplayHarness, RunReport, ROLLBACK_COST_NS};
use crate::spec::{TrialOutcome, TrialSpec};

/// A place where rollback/re-execution trials run.
///
/// Implementations differ only in where the rolled-back state lives (the
/// supervised process against the checkpoint ring, or a pooled context
/// against a cloned snapshot); a given [`TrialSpec`] must produce a
/// byte-identical [`TrialOutcome`] on any substrate.
pub trait TrialSubstrate {
    /// Snapshots the subject process (raw, manager-independent).
    fn snapshot(&mut self) -> ProcSnapshot;

    /// Restores the subject process from a raw snapshot, applying the
    /// same fixed rollback cost and dirty-page reset as a managed
    /// rollback.
    fn restore(&mut self, snap: &ProcSnapshot) -> FaResult<()>;

    /// Runs one fully-specified trial: rollback, environmental changes,
    /// replay through the failure region, final scan.
    fn reexecute(&mut self, spec: &TrialSpec) -> FaResult<TrialOutcome>;
}

/// The sequential substrate: trials run on the supervised process itself,
/// rolled back through the [`CheckpointManager`]'s ring. This is the
/// leader path of every diagnosis wave and the recovery/ladder path of
/// the runtime.
pub struct ManagedSubstrate<'p, 'm> {
    process: &'p mut Process,
    manager: &'m CheckpointManager,
    integrity_check: bool,
}

impl<'p, 'm> ManagedSubstrate<'p, 'm> {
    /// Binds the supervised process and its checkpoint ring.
    pub fn new(
        process: &'p mut Process,
        manager: &'m CheckpointManager,
        integrity_check: bool,
    ) -> Self {
        ManagedSubstrate {
            process,
            manager,
            integrity_check,
        }
    }
}

impl TrialSubstrate for ManagedSubstrate<'_, '_> {
    fn snapshot(&mut self) -> ProcSnapshot {
        self.process.snapshot()
    }

    fn restore(&mut self, snap: &ProcSnapshot) -> FaResult<()> {
        self.process.restore(snap);
        self.process.ctx.clock.advance(ROLLBACK_COST_NS);
        self.process.ctx.mem.take_dirty_pages();
        Ok(())
    }

    fn reexecute(&mut self, spec: &TrialSpec) -> FaResult<TrialOutcome> {
        ReplayHarness::try_reexecute(
            self.process,
            self.manager,
            spec.ckpt_id,
            spec.plan.clone(),
            &spec.options(self.integrity_check),
        )
    }
}

/// The speculative substrate: a pooled (or forked) process bound to one
/// checkpoint snapshot, replaying off to the side while the leader runs
/// on the main process. Owns its `Process` so it can move onto a worker
/// thread; [`Self::into_process`] releases the context back to the
/// [`crate::ProcessSlab`] when the trial is done.
pub struct SlabSubstrate {
    process: Process,
    snap: ProcSnapshot,
    integrity_check: bool,
}

impl SlabSubstrate {
    /// Binds a trial context to the snapshot its specs roll back to.
    /// `spec.ckpt_id` is implied by the bound snapshot; the caller is
    /// responsible for handing each substrate only specs of its own
    /// checkpoint.
    pub fn new(process: Process, snap: ProcSnapshot, integrity_check: bool) -> Self {
        SlabSubstrate {
            process,
            snap,
            integrity_check,
        }
    }

    /// Releases the trial context for return to the pool.
    pub fn into_process(self) -> Process {
        self.process
    }
}

impl TrialSubstrate for SlabSubstrate {
    fn snapshot(&mut self) -> ProcSnapshot {
        self.process.snapshot()
    }

    fn restore(&mut self, snap: &ProcSnapshot) -> FaResult<()> {
        self.process.restore(snap);
        self.process.ctx.clock.advance(ROLLBACK_COST_NS);
        self.process.ctx.mem.take_dirty_pages();
        Ok(())
    }

    fn reexecute(&mut self, spec: &TrialSpec) -> FaResult<TrialOutcome> {
        ReplayHarness::try_reexecute_on(
            &mut self.process,
            &self.snap,
            spec.plan.clone(),
            &spec.options(self.integrity_check),
        )
    }
}

/// The flaky-re-execution fault gate.
///
/// Before a trial's report is committed, injected `ReexecFlaky` faults
/// are resolved in sequential commit order: each flaky iteration costs an
/// exponentially backed-off virtual-time penalty and a bounded number of
/// retries. Because the gate consults the (stateful) fault plan at commit
/// time — never on the worker threads — the injected schedule is
/// identical at any parallelism.
pub struct FaultGate<'a> {
    plan: &'a FaultPlan,
    retries: u32,
    backoff_ns: u64,
    consumed: &'a Cell<usize>,
}

impl<'a> FaultGate<'a> {
    /// Builds a gate over the engine's fault plan. `consumed` accumulates
    /// the number of retries burned across the whole diagnosis.
    pub fn new(
        plan: &'a FaultPlan,
        retries: u32,
        backoff_ns: u64,
        consumed: &'a Cell<usize>,
    ) -> Self {
        FaultGate {
            plan,
            retries,
            backoff_ns,
            consumed,
        }
    }

    /// Resolves the gate for one committed trial. `Ok(penalty_ns)` means
    /// the trial's report stands after `penalty_ns` of retry cost;
    /// `Err(penalty_ns)` means retries were exhausted and the trial is
    /// lost (the caller reports it as a failed run).
    pub fn resolve(&self) -> Result<u64, u64> {
        // Unjittered shared policy: the k-th retry costs base << k, capped
        // at base << 16 (the pre-Backoff schedule, kept byte-identical so
        // virtual-time-sensitive fault tests are unaffected).
        let mut backoff = Backoff::new(self.backoff_ns, self.backoff_ns.saturating_mul(1 << 16));
        let mut penalty_ns = 0u64;
        loop {
            if self.plan.should_fail(FaultStage::ReexecFlaky) {
                let attempt = backoff.attempts();
                penalty_ns = penalty_ns.saturating_add(backoff.next_delay_ns());
                if attempt < self.retries {
                    self.consumed.set(self.consumed.get() + 1);
                    continue;
                }
                return Err(penalty_ns);
            }
            return Ok(penalty_ns);
        }
    }
}

/// Virtual-clock accounting for one diagnosis: how many rollbacks ran,
/// how much virtual time they consumed, and the human-readable trail.
#[derive(Debug, Default)]
pub struct TrialLedger {
    /// Number of committed trials.
    pub rollbacks: usize,
    /// Total virtual time charged (max-over-wave for speculative trials).
    pub elapsed_ns: u64,
    /// Human-readable diagnosis trail.
    pub log: Vec<String>,
}

impl TrialLedger {
    /// Starts a ledger with an opening log line.
    pub fn new(first_line: String) -> Self {
        TrialLedger {
            rollbacks: 0,
            elapsed_ns: 0,
            log: vec![first_line],
        }
    }

    /// Charges one committed trial to the ledger.
    pub fn charge(&mut self, report: &RunReport) {
        self.rollbacks += 1;
        self.elapsed_ns += report.elapsed_ns;
    }
}
