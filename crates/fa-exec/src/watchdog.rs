//! The hung-trial watchdog: per-trial virtual-time deadlines.
//!
//! A diagnostic re-execution can wedge — in the simulation either via an
//! injected [`FaultStage::TrialHang`] or by genuinely overrunning its
//! virtual-time deadline. Without supervision a single wedged trial
//! stalls its whole wave and, through it, the entire diagnosis. The
//! watchdog reaps such trials at *commit* time (the same sequential
//! resolution point as [`crate::FaultGate`], so the injected schedule is
//! identical at any parallelism), charges the burned deadline plus a
//! jittered retry backoff to the virtual clock, and after bounded
//! retries declares the trial lost so the caller can degrade — in the
//! core runtime that means descending the ladder instead of wedging.

use std::cell::Cell;

use fa_faults::{FaultPlan, FaultStage};

use crate::backoff::Backoff;

/// Mixed into the fault-plan seed so watchdog jitter decorrelates from
/// other consumers of the same seed.
const WATCHDOG_SEED_SALT: u64 = 0x57a7_c4d0_9bad_d093;

/// Judges committed trials against a per-trial virtual-time deadline.
pub struct Watchdog<'a> {
    plan: &'a FaultPlan,
    deadline_ns: u64,
    retries: u32,
    backoff_base_ns: u64,
    hangs: &'a Cell<usize>,
}

impl<'a> Watchdog<'a> {
    /// Builds a watchdog over the engine's fault plan. `deadline_ns == 0`
    /// disables the genuine-overrun check (injected hangs still fire);
    /// `hangs` accumulates reaped-trial counts across the diagnosis.
    pub fn new(
        plan: &'a FaultPlan,
        deadline_ns: u64,
        retries: u32,
        backoff_base_ns: u64,
        hangs: &'a Cell<usize>,
    ) -> Self {
        Watchdog {
            plan,
            deadline_ns,
            retries,
            backoff_base_ns,
            hangs,
        }
    }

    /// Resolves the watchdog for one committed trial that ran for
    /// `trial_elapsed_ns` of virtual time. `Ok(penalty_ns)` means the
    /// trial's report stands after `penalty_ns` of reap-and-retry cost;
    /// `Err(penalty_ns)` means the trial is lost (genuinely overdue, or
    /// injected hangs exhausted the retries) and the caller must degrade
    /// instead of waiting forever.
    pub fn judge(&self, trial_elapsed_ns: u64) -> Result<u64, u64> {
        let overdue = self.deadline_ns > 0 && trial_elapsed_ns > self.deadline_ns;
        let mut backoff = Backoff::seeded(
            self.backoff_base_ns,
            self.backoff_base_ns.saturating_mul(1 << 10),
            self.plan.seed() ^ WATCHDOG_SEED_SALT,
        );
        let mut penalty_ns = 0u64;
        let mut attempt: u32 = 0;
        loop {
            let injected = self.plan.should_fail(FaultStage::TrialHang);
            if !injected && !overdue {
                return Ok(penalty_ns);
            }
            self.hangs.set(self.hangs.get() + 1);
            // The wedged trial burned its whole deadline before the reap.
            let burned = if self.deadline_ns > 0 {
                self.deadline_ns
            } else {
                trial_elapsed_ns
            };
            penalty_ns = penalty_ns
                .saturating_add(burned)
                .saturating_add(backoff.next_delay_ns());
            if overdue || attempt >= self.retries {
                // A genuine overrun is deterministic — retrying cannot
                // clear it, so escalate immediately.
                return Err(penalty_ns);
            }
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_faults::Injection;

    #[test]
    fn quiet_trials_pass_for_free() {
        let plan = FaultPlan::none();
        let hangs = Cell::new(0);
        let dog = Watchdog::new(&plan, 1_000, 2, 10, &hangs);
        assert_eq!(dog.judge(500), Ok(0));
        assert_eq!(hangs.get(), 0);
    }

    #[test]
    fn genuinely_overdue_trials_are_lost_immediately() {
        let plan = FaultPlan::none();
        let hangs = Cell::new(0);
        let dog = Watchdog::new(&plan, 1_000, 5, 10, &hangs);
        let penalty = dog.judge(1_500).unwrap_err();
        assert!(penalty >= 1_000, "charged at least the burned deadline");
        assert_eq!(hangs.get(), 1, "no retries for a deterministic overrun");
    }

    #[test]
    fn injected_hangs_retry_then_pass() {
        // First occurrence hangs, second is clean: one reap, then Ok.
        let plan = FaultPlan::builder(3)
            .inject(FaultStage::TrialHang, Injection::Nth(vec![0]))
            .build();
        let hangs = Cell::new(0);
        let dog = Watchdog::new(&plan, 1_000, 2, 10, &hangs);
        let penalty = dog.judge(100).unwrap();
        assert!(penalty >= 1_000);
        assert_eq!(hangs.get(), 1);
    }

    #[test]
    fn persistent_injected_hangs_exhaust_retries() {
        let plan = FaultPlan::builder(3)
            .inject(FaultStage::TrialHang, Injection::EveryNth(1))
            .build();
        let hangs = Cell::new(0);
        let dog = Watchdog::new(&plan, 1_000, 2, 10, &hangs);
        let penalty = dog.judge(100).unwrap_err();
        assert!(penalty >= 3_000, "three reaps charged three deadlines");
        assert_eq!(hangs.get(), 3, "initial attempt + two retries");
    }

    #[test]
    fn zero_deadline_disables_overrun_but_not_injection() {
        let plan = FaultPlan::none();
        let hangs = Cell::new(0);
        let dog = Watchdog::new(&plan, 0, 2, 10, &hangs);
        assert_eq!(dog.judge(u64::MAX), Ok(0));
    }
}
