//! Seeded, jittered exponential backoff.
//!
//! One policy object replaces the hand-rolled backoff loops that used
//! to live in the fleet worker crash-loop, the diagnosis retry gate,
//! and the patch-pool persistence retry. All time here is *virtual*:
//! callers charge the returned delays to their own virtual clocks, so
//! the schedule is deterministic and free of wall-clock sleeps.

use fa_faults::splitmix64;

/// Exponential backoff with optional deterministic jitter.
///
/// The k-th call to [`Backoff::next_delay_ns`] (0-based) returns
/// `base << k` capped at `max`, optionally scaled by a seeded jitter in
/// `[0.75, 1.25)` so that independent actors (fleet workers retrying a
/// shared resource) decorrelate without any global RNG state.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ns: u64,
    max_ns: u64,
    jitter_seed: Option<u64>,
    attempt: u32,
}

impl Backoff {
    /// An unjittered policy: the k-th delay is exactly `base << k`,
    /// capped at `max`.
    pub fn new(base_ns: u64, max_ns: u64) -> Backoff {
        Backoff {
            base_ns,
            max_ns,
            jitter_seed: None,
            attempt: 0,
        }
    }

    /// A jittered policy: each delay is scaled by a deterministic
    /// pseudo-random factor in `[0.75, 1.25)` derived from `seed` and
    /// the attempt number.
    pub fn seeded(base_ns: u64, max_ns: u64, seed: u64) -> Backoff {
        Backoff {
            jitter_seed: Some(seed),
            ..Backoff::new(base_ns, max_ns)
        }
    }

    /// The delay to charge for the next retry, advancing the attempt
    /// counter. Shifts saturate (attempts past 63 stay at the cap).
    pub fn next_delay_ns(&mut self) -> u64 {
        let exp = self.attempt.min(24);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self.base_ns.saturating_mul(1u64 << exp).min(self.max_ns);
        match self.jitter_seed {
            None => raw,
            Some(seed) => {
                // Deterministic jitter in [0.75, 1.25): raw * (3/4 + r/2)
                // with r uniform in [0, 1) over 1024 buckets.
                let r = splitmix64(seed ^ u64::from(exp).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let bucket = r % 1024;
                (raw / 4)
                    .saturating_mul(3)
                    .saturating_add((raw / 2048).saturating_mul(bucket))
            }
        }
    }

    /// Retries attempted so far (calls to [`Backoff::next_delay_ns`]
    /// since construction or the last [`Backoff::reset`]).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Clears the attempt counter (the guarded operation succeeded).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unjittered_doubles_and_caps() {
        let mut b = Backoff::new(100, 500);
        assert_eq!(b.next_delay_ns(), 100);
        assert_eq!(b.next_delay_ns(), 200);
        assert_eq!(b.next_delay_ns(), 400);
        assert_eq!(b.next_delay_ns(), 500, "capped at max");
        assert_eq!(b.attempts(), 4);
        b.reset();
        assert_eq!(b.next_delay_ns(), 100);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = Backoff::seeded(1_000_000, u64::MAX, 42);
        let mut b = Backoff::seeded(1_000_000, u64::MAX, 42);
        let sa: Vec<u64> = (0..8).map(|_| a.next_delay_ns()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_delay_ns()).collect();
        assert_eq!(sa, sb, "same seed, same schedule");
        for (k, &d) in sa.iter().enumerate() {
            let raw = 1_000_000u64 << k;
            assert!(
                d >= raw / 4 * 3 && d < raw / 4 * 5,
                "attempt {k}: {d} outside [0.75, 1.25) of {raw}"
            );
        }
        let mut c = Backoff::seeded(1_000_000, u64::MAX, 43);
        let sc: Vec<u64> = (0..8).map(|_| c.next_delay_ns()).collect();
        assert_ne!(sa, sc, "different seed, different jitter");
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let mut b = Backoff::new(u64::MAX / 2, u64::MAX);
        for _ in 0..100 {
            // Would panic on shift/mul overflow in debug builds if the
            // schedule did not saturate.
            let _ = b.next_delay_ns();
        }
        assert_eq!(b.attempts(), 100);
    }
}
