//! # fa-faults — deterministic fault injection for First-Aid itself
//!
//! First-Aid is a recovery system, so the interesting failures are
//! failures *of its own stages*: a checkpoint whose pages rotted on
//! disk, a re-execution that wedges or flakes, a validation fork that
//! dies, a patch-pool write that hits a full disk. A [`FaultPlan`] is a
//! seeded, deterministic schedule of such failures. The pipeline asks
//! [`FaultPlan::should_fail`] at each injection point; the plan counts
//! the occurrence and answers from its schedule, so the same seed
//! always produces the same fault sequence — which is what makes the
//! degradation ladder in `first-aid-core` testable at all.
//!
//! The crate is dependency-free on purpose: every other crate in the
//! workspace can thread a plan through without a cycle. Clones of a
//! `FaultPlan` share their occurrence counters (the plan is one global
//! schedule, not a per-component one), so handing the same plan to the
//! checkpoint manager, the diagnosis engine, and the patch pool keeps a
//! single consistent timeline.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of injectable pipeline stages.
pub const STAGES: usize = 7;

/// An injectable stage of the First-Aid pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultStage {
    /// A checkpoint's snapshot no longer matches its checksum
    /// (simulated storage rot / partial write).
    CheckpointCorrupt,
    /// A diagnostic re-execution fails for reasons unrelated to the
    /// bug (scheduling noise, resource exhaustion) and must be retried.
    ReexecFlaky,
    /// Diagnosis wedges and blows its deadline outright.
    DiagnosisTimeout,
    /// A validation fork dies before producing a verdict.
    ValidationFork,
    /// A patch-pool persistence write/rename returns an I/O error.
    PoolPersistIo,
    /// A journal append in `fa-wal` returns an I/O error (full disk,
    /// EIO) and must be retried or degraded around.
    WalAppendIo,
    /// A diagnostic trial wedges past its virtual-time deadline and has
    /// to be reaped by the hung-trial watchdog.
    TrialHang,
}

impl FaultStage {
    /// All stages, in `index()` order.
    pub const ALL: [FaultStage; STAGES] = [
        FaultStage::CheckpointCorrupt,
        FaultStage::ReexecFlaky,
        FaultStage::DiagnosisTimeout,
        FaultStage::ValidationFork,
        FaultStage::PoolPersistIo,
        FaultStage::WalAppendIo,
        FaultStage::TrialHang,
    ];

    /// Dense index of this stage (position in [`FaultStage::ALL`]).
    pub fn index(self) -> usize {
        match self {
            FaultStage::CheckpointCorrupt => 0,
            FaultStage::ReexecFlaky => 1,
            FaultStage::DiagnosisTimeout => 2,
            FaultStage::ValidationFork => 3,
            FaultStage::PoolPersistIo => 4,
            FaultStage::WalAppendIo => 5,
            FaultStage::TrialHang => 6,
        }
    }

    /// Stable human-readable label (used in logs and bench output).
    pub fn label(self) -> &'static str {
        match self {
            FaultStage::CheckpointCorrupt => "checkpoint-corrupt",
            FaultStage::ReexecFlaky => "reexec-flaky",
            FaultStage::DiagnosisTimeout => "diagnosis-timeout",
            FaultStage::ValidationFork => "validation-fork",
            FaultStage::PoolPersistIo => "pool-persist-io",
            FaultStage::WalAppendIo => "wal-append-io",
            FaultStage::TrialHang => "trial-hang",
        }
    }
}

impl fmt::Display for FaultStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// When a stage should fail, as a function of its occurrence counter
/// `k` (0-based: the k-th time the pipeline reaches that stage).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Injection {
    /// Never fail (the default).
    #[default]
    Off,
    /// Fail exactly on the listed occurrences.
    Nth(Vec<u64>),
    /// Fail every n-th occurrence (the n-1st, 2n-1st, ... so the first
    /// occurrence survives unless `n == 1`). `EveryNth(0)` is `Off`.
    EveryNth(u64),
    /// Fail a deterministic pseudo-random `p`/1000 of occurrences,
    /// derived from the plan seed (no global RNG state).
    PerMille(u32),
}

impl Injection {
    fn decide(&self, seed: u64, stage: usize, k: u64) -> bool {
        match self {
            Injection::Off => false,
            Injection::Nth(list) => list.contains(&k),
            Injection::EveryNth(n) => *n != 0 && (k + 1).is_multiple_of(*n),
            Injection::PerMille(pm) => {
                let x = splitmix64(seed ^ (stage as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ k);
                x % 1000 < u64::from((*pm).min(1000))
            }
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer. Also
/// used by the checkpoint checksums in `fa-proc`/`fa-checkpoint`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    specs: [Injection; STAGES],
    occurrences: [AtomicU64; STAGES],
    fired: [AtomicU64; STAGES],
}

/// A seeded, deterministic schedule of pipeline-stage failures.
///
/// Clones share state: occurrence counters advance globally across all
/// holders, and `fired()` totals are plan-wide. A plan with every stage
/// [`Injection::Off`] is a noop and is what [`FaultPlan::none`] (and
/// `Default`) returns.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        Self::builder(0).build()
    }

    /// Start building a plan with the given seed (the seed only
    /// matters for [`Injection::PerMille`] schedules).
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            specs: Default::default(),
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// True if no stage can ever fire.
    pub fn is_noop(&self) -> bool {
        self.inner.specs.iter().all(|s| matches!(s, Injection::Off))
    }

    /// Record one occurrence of `stage` and answer whether it should
    /// fail. This is the single injection-point entry used throughout
    /// the pipeline.
    pub fn should_fail(&self, stage: FaultStage) -> bool {
        let i = stage.index();
        let k = self.inner.occurrences[i].fetch_add(1, Ordering::Relaxed);
        let hit = self.inner.specs[i].decide(self.inner.seed, i, k);
        if hit {
            self.inner.fired[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// How many times `stage` has been reached so far.
    pub fn occurrences(&self, stage: FaultStage) -> u64 {
        self.inner.occurrences[stage.index()].load(Ordering::Relaxed)
    }

    /// How many times `stage` actually failed so far.
    pub fn fired(&self, stage: FaultStage) -> u64 {
        self.inner.fired[stage.index()].load(Ordering::Relaxed)
    }

    /// Total injected failures across all stages.
    pub fn fired_total(&self) -> u64 {
        FaultStage::ALL.iter().map(|&s| self.fired(s)).sum()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("FaultPlan");
        d.field("seed", &self.inner.seed);
        for stage in FaultStage::ALL {
            let spec = &self.inner.specs[stage.index()];
            if !matches!(spec, Injection::Off) {
                d.field(stage.label(), spec);
            }
        }
        d.field("fired", &self.fired_total());
        d.finish()
    }
}

/// Builder for [`FaultPlan`].
pub struct FaultPlanBuilder {
    seed: u64,
    specs: [Injection; STAGES],
}

impl FaultPlanBuilder {
    /// Set the injection schedule for one stage.
    pub fn inject(mut self, stage: FaultStage, spec: Injection) -> Self {
        self.specs[stage.index()] = spec;
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(Inner {
                seed: self.seed,
                specs: self.specs,
                occurrences: Default::default(),
                fired: Default::default(),
            }),
        }
    }
}

/// A supervisor kill point: the journal dies after `after_appends`
/// successful appends, optionally mid-append (leaving a torn final
/// record on disk instead of a clean prefix).
///
/// `after_appends == 0, torn == false` kills the supervisor before it
/// journals anything; `torn == true` always writes *part* of record
/// `after_appends` before dying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillPoint {
    /// Complete appends to allow before dying.
    pub after_appends: u64,
    /// Die mid-append, leaving a torn (checksum-invalid) final record.
    pub torn: bool,
}

impl KillPoint {
    /// A clean kill after `n` complete appends.
    pub fn clean(n: u64) -> KillPoint {
        KillPoint {
            after_appends: n,
            torn: false,
        }
    }

    /// A torn kill: `n` complete appends plus a half-written record.
    pub fn torn(n: u64) -> KillPoint {
        KillPoint {
            after_appends: n,
            torn: true,
        }
    }
}

/// A deterministic schedule of supervisor kill points, used by the
/// crash-safety acceptance sweep to kill a fleet between (and inside)
/// every pair of journal appends.
#[derive(Clone, Debug, Default)]
pub struct KillSchedule {
    points: Vec<KillPoint>,
}

impl KillSchedule {
    /// Every kill point for a journal of `appends` records: a clean and
    /// a torn kill at each boundary `0..appends`. The torn kill at
    /// boundary `k` half-writes record `k` after `k` complete appends.
    pub fn exhaustive(appends: u64) -> KillSchedule {
        let mut points = Vec::with_capacity(2 * appends as usize);
        for k in 0..appends {
            points.push(KillPoint::clean(k));
            points.push(KillPoint::torn(k));
        }
        KillSchedule { points }
    }

    /// A seeded pseudo-random sample of `count` kill points over a
    /// journal of `appends` records (for large logs where the
    /// exhaustive sweep would be too slow). Deterministic in `seed`.
    pub fn sampled(seed: u64, appends: u64, count: usize) -> KillSchedule {
        if appends == 0 {
            return KillSchedule::default();
        }
        let points = (0..count as u64)
            .map(|i| {
                let x = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                KillPoint {
                    after_appends: x % appends,
                    torn: splitmix64(x) & 1 == 1,
                }
            })
            .collect();
        KillSchedule { points }
    }

    /// The kill points, in schedule order.
    pub fn points(&self) -> &[KillPoint] {
        &self.points
    }

    /// Number of kill points in the schedule.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the schedule contains no kill points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl IntoIterator for KillSchedule {
    type Item = KillPoint;
    type IntoIter = std::vec::IntoIter<KillPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_never_fires_but_still_counts() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        for _ in 0..10 {
            assert!(!plan.should_fail(FaultStage::ReexecFlaky));
        }
        assert_eq!(plan.occurrences(FaultStage::ReexecFlaky), 10);
        assert_eq!(plan.fired_total(), 0);
    }

    #[test]
    fn nth_fires_exactly_on_listed_occurrences() {
        let plan = FaultPlan::builder(1)
            .inject(FaultStage::DiagnosisTimeout, Injection::Nth(vec![0, 3]))
            .build();
        let hits: Vec<bool> = (0..6)
            .map(|_| plan.should_fail(FaultStage::DiagnosisTimeout))
            .collect();
        assert_eq!(hits, vec![true, false, false, true, false, false]);
        assert_eq!(plan.fired(FaultStage::DiagnosisTimeout), 2);
    }

    #[test]
    fn every_nth_spares_the_first_occurrences() {
        let plan = FaultPlan::builder(1)
            .inject(FaultStage::CheckpointCorrupt, Injection::EveryNth(3))
            .build();
        let hits: Vec<bool> = (0..9)
            .map(|_| plan.should_fail(FaultStage::CheckpointCorrupt))
            .collect();
        assert_eq!(
            hits,
            vec![false, false, true, false, false, true, false, false, true]
        );
        // EveryNth(0) is Off, not divide-by-zero.
        let zero = FaultPlan::builder(1)
            .inject(FaultStage::PoolPersistIo, Injection::EveryNth(0))
            .build();
        assert!(!zero.should_fail(FaultStage::PoolPersistIo));
    }

    #[test]
    fn per_mille_is_deterministic_and_roughly_calibrated() {
        let mk = || {
            FaultPlan::builder(0xfa17)
                .inject(FaultStage::ReexecFlaky, Injection::PerMille(250))
                .build()
        };
        let (a, b) = (mk(), mk());
        let sa: Vec<bool> = (0..2000)
            .map(|_| a.should_fail(FaultStage::ReexecFlaky))
            .collect();
        let sb: Vec<bool> = (0..2000)
            .map(|_| b.should_fail(FaultStage::ReexecFlaky))
            .collect();
        assert_eq!(sa, sb, "same seed, same schedule");
        let rate = sa.iter().filter(|&&h| h).count();
        assert!((300..700).contains(&rate), "~25% of 2000, got {rate}");
        // A different seed gives a different schedule.
        let c = FaultPlan::builder(0xdead)
            .inject(FaultStage::ReexecFlaky, Injection::PerMille(250))
            .build();
        let sc: Vec<bool> = (0..2000)
            .map(|_| c.should_fail(FaultStage::ReexecFlaky))
            .collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn clones_share_occurrence_counters() {
        let plan = FaultPlan::builder(7)
            .inject(FaultStage::PoolPersistIo, Injection::Nth(vec![1]))
            .build();
        let clone = plan.clone();
        assert!(!plan.should_fail(FaultStage::PoolPersistIo)); // k = 0
        assert!(clone.should_fail(FaultStage::PoolPersistIo)); // k = 1: shared counter
        assert_eq!(plan.occurrences(FaultStage::PoolPersistIo), 2);
        assert_eq!(plan.fired(FaultStage::PoolPersistIo), 1);
    }

    #[test]
    fn exhaustive_kill_schedule_covers_every_boundary_twice() {
        let sched = KillSchedule::exhaustive(3);
        assert_eq!(sched.len(), 6);
        for k in 0..3 {
            assert!(sched.points().contains(&KillPoint::clean(k)));
            assert!(sched.points().contains(&KillPoint::torn(k)));
        }
        assert!(KillSchedule::exhaustive(0).is_empty());
    }

    #[test]
    fn sampled_kill_schedule_is_seeded_and_in_range() {
        let a = KillSchedule::sampled(9, 50, 16);
        let b = KillSchedule::sampled(9, 50, 16);
        assert_eq!(a.points(), b.points(), "same seed, same schedule");
        assert!(a.points().iter().all(|p| p.after_appends < 50));
        let c = KillSchedule::sampled(10, 50, 16);
        assert_ne!(a.points(), c.points(), "different seed, different points");
        assert!(KillSchedule::sampled(1, 0, 16).is_empty());
    }

    #[test]
    fn stages_are_independently_counted() {
        let plan = FaultPlan::builder(3)
            .inject(FaultStage::ValidationFork, Injection::EveryNth(1))
            .build();
        assert!(plan.should_fail(FaultStage::ValidationFork));
        assert!(!plan.should_fail(FaultStage::CheckpointCorrupt));
        assert_eq!(plan.occurrences(FaultStage::ValidationFork), 1);
        assert_eq!(plan.occurrences(FaultStage::CheckpointCorrupt), 1);
        assert_eq!(plan.fired_total(), 1);
    }
}
