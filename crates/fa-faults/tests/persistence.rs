//! Crash-safety of patch-pool persistence: torn temp files from a died
//! writer must not corrupt reloads, and injected persistence I/O errors
//! must degrade the pool to in-memory operation while the last good
//! on-disk state survives.

use fa_allocext::{BugType, Patch};
use fa_faults::{FaultPlan, FaultStage, Injection};
use fa_proc::{CallSite, SymbolTable};
use first_aid_core::PatchPool;

fn patch(id: u64) -> Patch {
    Patch::new(
        BugType::BufferOverflow,
        CallSite([id, 0, 0]),
        &SymbolTable::new(),
    )
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fa-faults-persist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A writer that dies mid-persist leaves a torn `.tmp-<pid>` file behind.
/// The loader must ignore it and reload the program's patches from the
/// last complete `*.patches.json`.
#[test]
fn torn_temp_file_does_not_corrupt_reload() {
    let dir = scratch("torn");
    {
        let pool = PatchPool::persistent(&dir).expect("create pool dir");
        assert_eq!(pool.add("squid", [patch(7)]), 1);
        assert!(!pool.is_degraded());
    }
    // Simulate a crash between "write temp" and "rename into place":
    // truncated JSON under the temp naming scheme.
    std::fs::write(dir.join(".squid.patches.json.tmp-9999"), b"[{\"bug\":\"Buf")
        .expect("write torn temp file");

    let pool = PatchPool::persistent(&dir).expect("reload pool");
    assert_eq!(pool.len("squid"), 1, "last good file wins");
    let set = pool.get("squid");
    assert!(!set.is_empty(), "reloaded patch set is usable");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected persistence I/O errors: every write fails, the pool retries,
/// logs, and degrades to in-memory operation — and a later reload sees
/// only the last successfully persisted state.
#[test]
fn degraded_pool_preserves_last_good_file() {
    let dir = scratch("degraded");
    {
        // Healthy pool persists patch #1.
        let pool = PatchPool::persistent(&dir).expect("create pool dir");
        assert_eq!(pool.add("squid", [patch(1)]), 1);
        assert!(!pool.is_degraded());
        assert_eq!(pool.io_error_count(), 0);
    }
    {
        // Reopen with every persistence write failing. Adding patch #2
        // must still succeed in memory; the pool retries the write,
        // gives up, and marks itself degraded.
        let faults = FaultPlan::builder(3)
            .inject(FaultStage::PoolPersistIo, Injection::EveryNth(1))
            .build();
        let pool = PatchPool::persistent(&dir)
            .expect("reopen pool dir")
            .with_faults(faults);
        assert_eq!(pool.add("squid", [patch(2)]), 1);
        assert!(pool.is_degraded(), "pool degraded after exhausted retries");
        assert!(pool.io_error_count() >= 3, "every attempt was counted");
        assert_eq!(pool.len("squid"), 2, "in-memory state is complete");
    }
    // A fresh reload sees only what was successfully persisted.
    let pool = PatchPool::persistent(&dir).expect("final reload");
    assert_eq!(pool.len("squid"), 1, "the degraded write never landed");
    let _ = std::fs::remove_dir_all(&dir);
}
