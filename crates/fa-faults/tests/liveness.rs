//! Property: *any* seeded fault plan leaves the runtime live. Whatever
//! combination of pipeline-stage failures is injected, the run neither
//! panics nor loses accounting — served + dropped == offered.

use fa_apps::{spec_by_key, WorkloadSpec};
use fa_checkpoint::AdaptiveConfig;
use fa_faults::{FaultPlan, FaultStage, Injection};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool};
use proptest::prelude::*;

fn injection() -> impl Strategy<Value = Injection> {
    prop_oneof![
        Just(Injection::Off),
        (1u64..6).prop_map(Injection::EveryNth),
        (0u32..700).prop_map(Injection::PerMille),
        prop::collection::vec(0u64..8, 0..3).prop_map(Injection::Nth),
    ]
}

fn plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        injection(),
        injection(),
        injection(),
        injection(),
        injection(),
    )
        .prop_map(|(seed, ckpt, reexec, timeout, fork, pool)| {
            FaultPlan::builder(seed)
                .inject(FaultStage::CheckpointCorrupt, ckpt)
                .inject(FaultStage::ReexecFlaky, reexec)
                .inject(FaultStage::DiagnosisTimeout, timeout)
                .inject(FaultStage::ValidationFork, fork)
                .inject(FaultStage::PoolPersistIo, pool)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_fault_plan_leaves_the_runtime_live(plan in plan()) {
        let spec = spec_by_key("squid").unwrap();
        let config = FirstAidConfig {
            adaptive: AdaptiveConfig {
                base_interval_ns: 20_000_000,
                max_interval_ns: 320_000_000,
                ..AdaptiveConfig::default()
            },
            max_checkpoints: 200,
            faults: plan,
            ..FirstAidConfig::default()
        };
        let mut runtime =
            FirstAidRuntime::launch((spec.build)(), config, PatchPool::in_memory())
                .expect("launch");
        let workload = (spec.workload)(&WorkloadSpec::new(120, &[20, 60]));
        let offered = workload.len();
        let summary = runtime.run(workload, None);
        prop_assert_eq!(
            summary.served + summary.dropped,
            offered,
            "input conservation violated: {:?}",
            summary
        );
        prop_assert!(summary.recoveries >= summary.failures);
    }
}
