//! Acceptance tests for the degradation ladder: seeded faults in
//! First-Aid's own pipeline must degrade service, never kill it.

use fa_apps::{spec_by_key, WorkloadSpec};
use fa_checkpoint::AdaptiveConfig;
use fa_faults::{FaultPlan, FaultStage, Injection};
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};
use first_aid_core::{FirstAidConfig, FirstAidRuntime, PatchPool, RecoveryKind};

fn quick_config(faults: FaultPlan) -> FirstAidConfig {
    FirstAidConfig {
        adaptive: AdaptiveConfig {
            base_interval_ns: 20_000_000,
            max_interval_ns: 320_000_000,
            ..AdaptiveConfig::default()
        },
        // Keep the whole stream's worth of checkpoints so the ladder's
        // oldest intact checkpoint predates the bug trigger even after
        // corruption sweeps.
        max_checkpoints: 400,
        faults,
        ..FirstAidConfig::default()
    }
}

/// The headline scenario: Apache's dangling read (error-propagation
/// distance ~250 inputs) while every third checkpoint silently rots AND
/// the first diagnosis wedges past its deadline. Precise diagnosis is
/// impossible, so the runtime must serve the remaining stream via the
/// generic-patch rung: no panic, no unbounded drop streak.
#[test]
fn apache_survives_checkpoint_rot_and_wedged_diagnosis() {
    let spec = spec_by_key("apache").unwrap();
    let plan = FaultPlan::builder(0xacce97)
        .inject(FaultStage::CheckpointCorrupt, Injection::EveryNth(3))
        .inject(FaultStage::DiagnosisTimeout, Injection::Nth(vec![0]))
        .build();
    let mut runtime = FirstAidRuntime::launch(
        (spec.build)(),
        quick_config(plan.clone()),
        PatchPool::in_memory(),
    )
    .expect("launch apache");
    let workload = (spec.workload)(&WorkloadSpec::new(400, &[30]));
    let offered = workload.len();
    let summary = runtime.run(workload, None);

    // Both injections actually fired.
    assert!(plan.fired(FaultStage::CheckpointCorrupt) > 0);
    assert_eq!(plan.fired(FaultStage::DiagnosisTimeout), 1);

    // Liveness: every input is accounted for, almost all are served.
    assert_eq!(summary.served + summary.dropped, offered);
    assert!(
        summary.dropped <= 2,
        "no unbounded drop streak: {summary:?}"
    );
    assert!(!runtime.needs_restart(), "drop streak stays bounded");

    // The ladder descended to the generic rung and it carried the
    // poisoned input through.
    let d = &summary.degradation;
    assert!(d.diagnosis_timeouts >= 1, "wedge was counted: {d:?}");
    assert!(d.checkpoint_checksum_misses >= 1, "rot was noticed: {d:?}");
    assert!(
        d.generic_patches >= 1,
        "generic rung served the stream: {d:?}"
    );
    assert!(runtime
        .recoveries
        .iter()
        .any(|r| r.kind == RecoveryKind::GenericPatched));
    assert!(
        runtime.pool().get("apache").has_generic(),
        "program-wide patches are pooled"
    );
}

/// Flaky re-executions: diagnosis retries with backoff and still lands a
/// precise patch (or descends gracefully); the stream is never lost.
#[test]
fn squid_diagnosis_survives_flaky_reexecutions() {
    let spec = spec_by_key("squid").unwrap();
    let plan = FaultPlan::builder(0xf1a4)
        .inject(FaultStage::ReexecFlaky, Injection::PerMille(300))
        .build();
    let mut runtime = FirstAidRuntime::launch(
        (spec.build)(),
        quick_config(plan.clone()),
        PatchPool::in_memory(),
    )
    .expect("launch squid");
    let workload = (spec.workload)(&WorkloadSpec::new(160, &[40]));
    let offered = workload.len();
    let summary = runtime.run(workload, None);
    assert_eq!(summary.served + summary.dropped, offered);
    assert!(plan.fired(FaultStage::ReexecFlaky) > 0, "flakiness fired");
    assert!(
        summary.degradation.reexec_retries >= 1,
        "retries were paid: {:?}",
        summary.degradation
    );
    assert!(summary.dropped <= 2, "{summary:?}");
}

/// Validation-fork death: the patches stay installed (they survived
/// diagnosis), but no consistency verdict and no report are filed.
#[test]
fn validation_fork_death_keeps_patches_unvalidated() {
    let spec = spec_by_key("squid").unwrap();
    let plan = FaultPlan::builder(0x7a11)
        .inject(FaultStage::ValidationFork, Injection::EveryNth(1))
        .build();
    let mut runtime = FirstAidRuntime::launch(
        (spec.build)(),
        quick_config(plan.clone()),
        PatchPool::in_memory(),
    )
    .expect("launch squid");
    let workload = (spec.workload)(&WorkloadSpec::new(120, &[40]));
    let summary = runtime.run(workload, None);
    assert_eq!(summary.failures, 1);
    assert_eq!(summary.dropped, 0, "patched recovery still serves");
    assert_eq!(summary.degradation.validation_fork_failures, 1);
    let patched = runtime
        .recoveries
        .iter()
        .find(|r| r.kind == RecoveryKind::Patched)
        .expect("diagnosis succeeded");
    assert!(patched.validation.is_none(), "no verdict from a dead fork");
    assert!(patched.report.is_none(), "no report without validation");
    assert!(
        !runtime.pool().is_empty("squid"),
        "patches kept despite the dead fork"
    );
}

/// An overflow the generic rung cannot absorb: 600 bytes past the end
/// of a 64-byte block, well beyond the program-wide pad (508 per side).
/// With diagnosis permanently wedged, neither a precise nor a generic
/// patch can ever hold — exactly the case the health monitor exists for.
#[derive(Clone, Default)]
struct WidePen;

impl App for WidePen {
    fn name(&self) -> &'static str {
        "wide-pen"
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("serve", |ctx| {
            let buf = ctx.malloc(64)?;
            let n = if input.op == 1 { 64 + 600 } else { 64 };
            ctx.fill(buf, n, 5)?;
            ctx.free(buf)?;
            Ok(Response::bytes(64))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

/// Health monitor: when injected timeouts force the generic rung and the
/// signature keeps recurring anyway, the generic patches are revoked and
/// the runtime lands on pure rollback-and-drop.
#[test]
fn recurring_signature_revokes_and_escalates() {
    // Every diagnosis wedges: precise patching is never available.
    let plan = FaultPlan::builder(0xdead)
        .inject(FaultStage::DiagnosisTimeout, Injection::EveryNth(1))
        .build();
    let mut config = quick_config(plan);
    config.restart_after_drops = 3;
    let mut runtime =
        FirstAidRuntime::launch(Box::new(WidePen), config, PatchPool::in_memory()).expect("launch");
    // Triggers spaced > 20 apart so the crash-loop guard does not mask
    // the monitor's recurrence counter.
    let workload: Vec<Input> = (0..260)
        .map(|i| {
            InputBuilder::op(u32::from(i == 50 || i == 120 || i == 190))
                .gap_us(200)
                .build()
        })
        .collect();
    let offered = workload.len();
    let summary = runtime.run(workload, None);
    assert_eq!(summary.served + summary.dropped, offered);
    let d = &summary.degradation;
    assert!(
        d.generic_patches + d.rollback_drops >= 2,
        "the ladder kept descending: {d:?}"
    );
    assert!(
        d.patch_revocations >= 1,
        "ineffective generic patches were revoked: {d:?}"
    );
    assert!(
        runtime
            .pool()
            .is_revoked("wide-pen", first_aid_core::GENERIC_SITE),
        "the generic rung is tombstoned"
    );
    assert!(d.rollback_drops >= 1, "ladder landed on rung 3: {d:?}");
}
