//! Property-based tests of the foundation First-Aid's diagnosis stands
//! on: snapshot → roll back → replay must be *exactly* equivalent to
//! never having diverged, for arbitrary application behaviour.

use proptest::prelude::*;

use fa_mem::Addr;
use fa_proc::{App, BoxedApp, Fault, Input, InputBuilder, ProcessCtx, Response};

/// An app whose behaviour is driven entirely by input fields: allocates,
/// writes, reads, frees slots of a table; `op & 3` selects the action.
#[derive(Clone, Default)]
struct Scripted {
    slots: Vec<Option<(Addr, u64)>>,
    checksum: u64,
}

impl App for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn init(&mut self, _ctx: &mut ProcessCtx) -> Result<(), Fault> {
        self.slots = vec![None; 16];
        Ok(())
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
        ctx.call("dispatch", |ctx| {
            let slot = (input.a as usize) % 16;
            match input.op & 3 {
                0 => {
                    // Allocate (replacing any previous occupant).
                    if let Some((old, _)) = self.slots[slot].take() {
                        ctx.free(old)?;
                    }
                    let size = (input.b % 512).max(8);
                    let p = ctx.call("slot_alloc", |ctx| ctx.malloc(size))?;
                    ctx.fill(p, size, (input.b % 251) as u8)?;
                    self.slots[slot] = Some((p, size));
                }
                1 => {
                    if let Some((p, _)) = self.slots[slot].take() {
                        ctx.call("slot_free", |ctx| ctx.free(p))?;
                    }
                }
                2 => {
                    if let Some((p, size)) = self.slots[slot] {
                        let data = ctx.read_bytes(p, size)?;
                        self.checksum = self
                            .checksum
                            .wrapping_mul(31)
                            .wrapping_add(data.iter().map(|&b| u64::from(b)).sum::<u64>());
                    }
                }
                _ => {
                    if let Some((p, size)) = self.slots[slot] {
                        ctx.write_u64(
                            p.offset((input.b % (size.saturating_sub(8).max(1))) & !7),
                            input.b,
                        )?;
                    }
                }
            }
            Ok(Response::bytes(input.b % 128))
        })
    }

    fn clone_app(&self) -> BoxedApp {
        Box::new(self.clone())
    }
}

fn input_strategy() -> impl Strategy<Value = Input> {
    // Zero arrival gaps: replays deliberately skip gap idle time, so for
    // the fingerprints (which include the clock) to be comparable the
    // workload must be gap-free. The work time must then match exactly.
    (any::<u32>(), any::<u64>(), any::<u64>())
        .prop_map(|(op, a, b)| InputBuilder::op(op & 3).a(a).b(b).build())
}

fn fingerprint(p: &fa_proc::Process) -> (u64, u64, u64, u64) {
    let stats = p.ctx.alloc().heap().stats();
    (
        stats.allocs,
        stats.frees,
        stats.heap_bytes,
        p.ctx.clock.now(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rollback_replay_equals_straight_run(
        inputs in prop::collection::vec(input_strategy(), 2..80),
        cut_frac in 0.0f64..1.0,
    ) {
        // Straight run.
        let mut straight = fa_proc::Process::launch(
            Box::new(Scripted::default()),
            ProcessCtx::new(1 << 26),
        ).unwrap();
        for i in &inputs {
            let r = straight.feed(i.clone());
            prop_assert!(r.is_ok());
        }
        let want = fingerprint(&straight);

        // Run with a mid-stream snapshot, divergence, rollback, replay.
        let mut p = fa_proc::Process::launch(
            Box::new(Scripted::default()),
            ProcessCtx::new(1 << 26),
        ).unwrap();
        let cut = ((inputs.len() as f64 * cut_frac) as usize).min(inputs.len());
        for i in &inputs[..cut] {
            p.feed(i.clone());
        }
        let snap = p.snapshot();
        for i in &inputs[cut..] {
            p.feed(i.clone());
        }
        p.restore(&snap);
        while p.step().is_some() {}
        let got = fingerprint(&p);
        prop_assert_eq!(got, want, "replay must be indistinguishable");
    }

    #[test]
    fn forked_process_is_independent(
        inputs in prop::collection::vec(input_strategy(), 2..40),
    ) {
        let mut a = fa_proc::Process::launch(
            Box::new(Scripted::default()),
            ProcessCtx::new(1 << 26),
        ).unwrap();
        for i in &inputs {
            a.feed(i.clone());
        }
        let before = fingerprint(&a);
        let mut b = a.fork();
        // Drive the fork further; the original must not move.
        for i in &inputs {
            b.enqueue(i.clone());
        }
        while b.step().is_some() {}
        prop_assert_eq!(fingerprint(&a), before);
        prop_assert!(fingerprint(&b).0 >= before.0);
    }
}
