//! The allocator interposition point.
//!
//! First-Aid's memory allocator extension "relies on the underlying memory
//! allocator for fulfilling memory management requests" (paper §3) and
//! interposes on every allocation and deallocation to query the patch pool
//! and apply environmental changes. [`AllocBackend`] is that seam: the
//! process context routes every `malloc`/`free`/`realloc` and — standing in
//! for Pin-style dynamic instrumentation — every load/store notification
//! through it.

use std::any::Any;

use fa_heap::Heap;
use fa_mem::{AccessKind, Addr, SimMemory};

use crate::callsite::CallSite;
use crate::clock::Clock;
use crate::fault::Fault;

/// An allocator implementation the process routes requests through.
///
/// Implementations must be deterministic given the same call sequence (the
/// diagnosis engine relies on replay determinism) and cloneable so they can
/// be captured in checkpoints. `Send` allows the validation engine to run
/// re-executions on a separate thread (paper §5: validation happens "in
/// parallel on a different processor core").
pub trait AllocBackend: Send {
    /// Allocates `req` bytes for the given allocation call-site.
    ///
    /// Implementations charge their own bookkeeping overhead to `clock` —
    /// this is what the allocator-extension bars of paper Fig. 6 measure.
    fn malloc(
        &mut self,
        mem: &mut SimMemory,
        clock: &mut Clock,
        req: u64,
        site: CallSite,
    ) -> Result<Addr, Fault>;

    /// Frees the allocation at `addr` from the given deallocation
    /// call-site.
    fn free(
        &mut self,
        mem: &mut SimMemory,
        clock: &mut Clock,
        addr: Addr,
        site: CallSite,
    ) -> Result<(), Fault>;

    /// Reallocates `addr` to `req` bytes.
    fn realloc(
        &mut self,
        mem: &mut SimMemory,
        clock: &mut Clock,
        addr: Addr,
        req: u64,
        site: CallSite,
    ) -> Result<Addr, Fault>;

    /// Returns the usable size of the allocation at `addr`.
    fn usable_size(&self, mem: &mut SimMemory, addr: Addr) -> Result<u64, Fault>;

    /// Observes an application load/store before it is performed.
    ///
    /// This is the Pin-analog hook: the extension uses it to trace illegal
    /// accesses (writes into padding, accesses to delay-freed objects,
    /// reads before initialization). It must not alter the access, but may
    /// charge classification overhead to `clock`. Returning an error
    /// aborts the access before it happens — the sentry tier uses this to
    /// deliver [`fa_mem::MemFault::GuardTrap`] faults for accesses to
    /// guarded slots.
    fn observe_access(
        &mut self,
        clock: &mut Clock,
        addr: Addr,
        len: u64,
        kind: AccessKind,
        site: CallSite,
    ) -> Result<(), Fault>;

    /// Notifies the backend that an access just raised
    /// [`fa_mem::MemFault::GuardTrap`] from the page permission bits
    /// ([`fa_mem::Perms::GUARD`]/[`fa_mem::Perms::POISONED`]).
    ///
    /// The process context calls this after the MMU-analog fault and
    /// before delivering it to the application — the simulated SIGSEGV
    /// hand-off to First-Aid's error monitor. The extension uses it to
    /// attribute the trap (dangling access to a poisoned sentry slot,
    /// overflow into a guard page) and latch a trap record for the bug
    /// report. The default does nothing; the fault is delivered either
    /// way.
    fn on_guard_trap(
        &mut self,
        _clock: &mut Clock,
        _addr: Addr,
        _len: u64,
        _kind: AccessKind,
        _site: CallSite,
    ) {
    }

    /// Returns the underlying heap.
    fn heap(&self) -> &Heap;

    /// Returns the underlying heap mutably.
    fn heap_mut(&mut self) -> &mut Heap;

    /// Clones the backend into a box (checkpoint support).
    fn clone_box(&self) -> Box<dyn AllocBackend>;

    /// Upcasts for concrete-type inspection by the diagnosis engine.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for concrete-type inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn AllocBackend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The unmodified underlying allocator: requests go straight to the heap.
///
/// This is what a process runs on before First-Aid is attached, and the
/// baseline for the normal-run overhead experiments (paper Fig. 6,
/// "original" bars).
#[derive(Clone)]
pub struct PlainAllocator {
    heap: Heap,
}

impl PlainAllocator {
    /// Wraps a heap.
    pub fn new(heap: Heap) -> Self {
        PlainAllocator { heap }
    }
}

impl AllocBackend for PlainAllocator {
    fn malloc(
        &mut self,
        mem: &mut SimMemory,
        _clock: &mut Clock,
        req: u64,
        _site: CallSite,
    ) -> Result<Addr, Fault> {
        Ok(self.heap.malloc(mem, req)?)
    }

    fn free(
        &mut self,
        mem: &mut SimMemory,
        _clock: &mut Clock,
        addr: Addr,
        _site: CallSite,
    ) -> Result<(), Fault> {
        Ok(self.heap.free(mem, addr)?)
    }

    fn realloc(
        &mut self,
        mem: &mut SimMemory,
        _clock: &mut Clock,
        addr: Addr,
        req: u64,
        _site: CallSite,
    ) -> Result<Addr, Fault> {
        Ok(self.heap.realloc(mem, addr, req)?)
    }

    fn usable_size(&self, mem: &mut SimMemory, addr: Addr) -> Result<u64, Fault> {
        Ok(self.heap.usable_size(mem, addr)?)
    }

    fn observe_access(
        &mut self,
        _clock: &mut Clock,
        _addr: Addr,
        _len: u64,
        _kind: AccessKind,
        _site: CallSite,
    ) -> Result<(), Fault> {
        Ok(())
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    fn clone_box(&self) -> Box<dyn AllocBackend> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_allocator_roundtrip() {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        let mut alloc = PlainAllocator::new(heap);
        let mut clock = Clock::new();
        let site = CallSite::default();
        let p = alloc.malloc(&mut mem, &mut clock, 100, site).unwrap();
        assert!(alloc.usable_size(&mut mem, p).unwrap() >= 100);
        alloc.free(&mut mem, &mut clock, p, site).unwrap();
    }

    #[test]
    fn boxed_clone_is_independent() {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, Addr(0x1000_0000), 1 << 26).unwrap();
        let mut alloc: Box<dyn AllocBackend> = Box::new(PlainAllocator::new(heap));
        let mut clock = Clock::new();
        let site = CallSite::default();
        let snapshot = alloc.clone();
        let _p = alloc.malloc(&mut mem, &mut clock, 100, site).unwrap();
        assert_eq!(snapshot.heap().stats().allocs, 0);
        assert_eq!(alloc.heap().stats().allocs, 1);
    }
}
