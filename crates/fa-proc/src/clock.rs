//! Virtual time.
//!
//! The paper reports wall-clock figures (0.084–3.978 s recovery, 200 ms
//! checkpoint intervals, MB/s throughput). A reproduction on a simulator
//! cannot — and per the task guidance, need not — match absolute 2009
//! hardware numbers, but it *can* make time deterministic: every simulated
//! operation advances a virtual nanosecond clock by a calibrated cost, so
//! recovery times, checkpoint intervals, and throughput curves are exactly
//! reproducible run-to-run.

use serde::{Deserialize, Serialize};

/// One millisecond in virtual nanoseconds.
pub const MS: u64 = 1_000_000;

/// One second in virtual nanoseconds.
pub const SEC: u64 = 1_000_000_000;

/// Calibrated virtual costs of simulated operations, in nanoseconds.
///
/// Defaults are loosely calibrated to a mid-2000s x86 server so that the
/// reproduced experiment tables land in the same ranges as the paper's.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Costs {
    /// Cost of a `malloc` call (allocator bookkeeping).
    pub malloc: u64,
    /// Cost of a `free` call.
    pub free: u64,
    /// Fixed cost of a load/store operation.
    pub mem_base: u64,
    /// Additional cost per 8 bytes transferred.
    pub mem_per_word: u64,
    /// Fixed cost of dispatching one input (syscall + parsing analog).
    pub input_base: u64,
    /// Cost of a function call frame push/pop pair.
    pub frame: u64,
    /// Cost of replicating one page during checkpoint/rollback.
    pub page_copy: u64,
}

impl Default for Costs {
    fn default() -> Self {
        Costs {
            malloc: 150,
            free: 120,
            mem_base: 10,
            mem_per_word: 2,
            input_base: 3_000,
            frame: 15,
            page_copy: 3_000,
        }
    }
}

impl Costs {
    /// Returns the cost of a memory access of `len` bytes.
    #[inline]
    pub fn access(&self, len: u64) -> u64 {
        self.mem_base + (len.div_ceil(8)) * self.mem_per_word
    }
}

/// A monotonically advancing virtual clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Clock {
    ns: u64,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Returns the current time in virtual nanoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.ns
    }

    /// Advances the clock by `ns` nanoseconds.
    #[inline]
    pub fn advance(&mut self, ns: u64) {
        self.ns += ns;
    }

    /// Returns the current time in virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.ns as f64 / SEC as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = Clock::new();
        c.advance(500);
        c.advance(1_500);
        assert_eq!(c.now(), 2_000);
    }

    #[test]
    fn seconds_conversion() {
        let mut c = Clock::new();
        c.advance(2 * SEC + SEC / 2);
        assert!((c.seconds() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn access_cost_scales_with_length() {
        let costs = Costs::default();
        assert_eq!(costs.access(1), costs.mem_base + costs.mem_per_word);
        assert_eq!(costs.access(8), costs.mem_base + costs.mem_per_word);
        assert_eq!(costs.access(64), costs.mem_base + 8 * costs.mem_per_word);
    }
}
