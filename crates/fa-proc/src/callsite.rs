//! Call stacks and multi-level call-sites.
//!
//! First-Aid keys its runtime patches to the *call-site* of an allocation
//! or deallocation, defined as "the return addresses of the most recent
//! three functions on the stack" (paper §2). Objects allocated or freed at
//! the same call-site tend to share characteristics (e.g. the same
//! overflow), so the call-site serves as the signature of the
//! bug-triggering objects.
//!
//! Applications in this reproduction maintain an explicit call stack of
//! function identifiers (stable hashes of function names). A call-site is
//! the top three frames, which matches the paper's bug reports, e.g.
//! `util_ald_free ← util_ald_cache_purge ← util_ald_cache_insert`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Sentinel frame id for missing stack levels (stacks shallower than 3).
pub const NO_SITE: u64 = 0;

/// A three-level call-site signature: `[callee, caller, caller's caller]`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct CallSite(pub [u64; 3]);

impl CallSite {
    /// Returns the innermost (most recent) frame id.
    pub fn leaf(&self) -> u64 {
        self.0[0]
    }

    /// Renders the call-site using a symbol table, innermost first.
    pub fn render(&self, symbols: &SymbolTable) -> String {
        self.0
            .iter()
            .filter(|&&id| id != NO_SITE)
            .map(|&id| format!("0x{:07x}@{}", id & 0xfff_ffff, symbols.name(id)))
            .collect::<Vec<_>>()
            .join(" <- ")
    }
}

/// Stable 64-bit hash of a function name (FNV-1a).
///
/// Stability across runs and processes matters: patches stored
/// persistently must match call-sites of later executions of the same
/// program (paper §2, "Patch generation and application").
pub fn intern_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Never collide with the sentinel.
    if hash == NO_SITE {
        1
    } else {
        hash
    }
}

/// Maps frame ids back to function names for reports.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: HashMap<u64, String>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> u64 {
        let id = intern_name(name);
        self.names.entry(id).or_insert_with(|| name.to_owned());
        id
    }

    /// Returns the name for `id`, or `"?"` if unknown.
    pub fn name(&self, id: u64) -> &str {
        self.names.get(&id).map(String::as_str).unwrap_or("?")
    }
}

/// The explicit function call stack of a simulated process.
#[derive(Clone, Debug, Default)]
pub struct CallStack {
    frames: Vec<u64>,
}

impl CallStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        CallStack::default()
    }

    /// Pushes a frame.
    pub fn push(&mut self, id: u64) {
        self.frames.push(id);
    }

    /// Pops the top frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty; that is a harness bug, not a simulated
    /// memory bug.
    pub fn pop(&mut self) {
        self.frames.pop().expect("call stack underflow");
    }

    /// Returns the current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Returns the three-level call-site signature at this point.
    pub fn callsite(&self) -> CallSite {
        let mut site = [NO_SITE; 3];
        for (slot, frame) in self.frames.iter().rev().take(3).enumerate() {
            site[slot] = *frame;
        }
        CallSite(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_distinct() {
        assert_eq!(intern_name("malloc_wrapper"), intern_name("malloc_wrapper"));
        assert_ne!(intern_name("foo"), intern_name("bar"));
        assert_ne!(intern_name("foo"), NO_SITE);
    }

    #[test]
    fn callsite_is_top_three() {
        let mut st = CallStack::new();
        let mut sym = SymbolTable::new();
        for f in ["main", "serve", "cache_insert", "ald_alloc"] {
            st.push(sym.intern(f));
        }
        let cs = st.callsite();
        assert_eq!(cs.0[0], intern_name("ald_alloc"));
        assert_eq!(cs.0[1], intern_name("cache_insert"));
        assert_eq!(cs.0[2], intern_name("serve"));
    }

    #[test]
    fn shallow_stack_pads_with_sentinel() {
        let mut st = CallStack::new();
        st.push(intern_name("main"));
        let cs = st.callsite();
        assert_eq!(cs.0[0], intern_name("main"));
        assert_eq!(cs.0[1], NO_SITE);
        assert_eq!(cs.0[2], NO_SITE);
        assert_eq!(cs.leaf(), intern_name("main"));
    }

    #[test]
    fn push_pop_restores_site() {
        let mut st = CallStack::new();
        st.push(intern_name("a"));
        let before = st.callsite();
        st.push(intern_name("b"));
        st.pop();
        assert_eq!(st.callsite(), before);
    }

    #[test]
    fn render_uses_symbols() {
        let mut st = CallStack::new();
        let mut sym = SymbolTable::new();
        st.push(sym.intern("util_ald_free"));
        let s = st.callsite().render(&sym);
        assert!(s.contains("@util_ald_free"), "{s}");
    }

    #[test]
    fn serde_roundtrip() {
        let cs = CallSite([1, 2, 3]);
        let json = serde_json::to_string(&cs).unwrap();
        let back: CallSite = serde_json::from_str(&json).unwrap();
        assert_eq!(cs, back);
    }

    #[test]
    #[should_panic(expected = "call stack underflow")]
    fn pop_empty_panics() {
        CallStack::new().pop();
    }
}
