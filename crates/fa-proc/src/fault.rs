//! Process failures as seen by First-Aid's error monitors.

use core::fmt;

use fa_heap::HeapError;
use fa_mem::MemFault;

use crate::callsite::CallSite;

/// A failure of the simulated process.
///
/// The paper's error monitors catch "assertion failures as well as
/// exceptions (e.g., access violation) raised from the kernel" (§3). In
/// this reproduction the same three classes exist: memory access
/// violations, allocator aborts (glibc-style integrity checks), and
/// application-level assertion failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Access violation — the SIGSEGV analog.
    Mem(MemFault),
    /// Allocator abort — corrupted metadata, invalid/double free.
    Heap(HeapError),
    /// Application assertion failure.
    Assertion {
        /// Human-readable description of the violated expectation.
        msg: String,
        /// Call-site where the assertion fired.
        site: CallSite,
    },
}

impl Fault {
    /// Builds an assertion fault.
    pub fn assertion(msg: impl Into<String>, site: CallSite) -> Fault {
        Fault::Assertion {
            msg: msg.into(),
            site,
        }
    }

    /// Returns a short stable label for the fault class, used in
    /// diagnosis logs.
    pub fn class(&self) -> &'static str {
        match self {
            Fault::Mem(MemFault::GuardTrap { .. }) => "sentry-trap",
            Fault::Mem(_) => "access-violation",
            Fault::Heap(HeapError::InvalidFree { .. }) => "invalid-free",
            Fault::Heap(HeapError::CorruptChunk { .. }) => "heap-corruption",
            Fault::Heap(HeapError::OutOfMemory { .. }) => "out-of-memory",
            Fault::Heap(HeapError::Mem(_)) => "access-violation",
            Fault::Assertion { .. } => "assertion",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(e) => write!(f, "{e}"),
            Fault::Heap(e) => write!(f, "{e}"),
            Fault::Assertion { msg, .. } => write!(f, "assertion failed: {msg}"),
        }
    }
}

impl std::error::Error for Fault {}

impl From<MemFault> for Fault {
    fn from(e: MemFault) -> Self {
        Fault::Mem(e)
    }
}

impl From<HeapError> for Fault {
    fn from(e: HeapError) -> Self {
        match e {
            HeapError::Mem(m) => Fault::Mem(m),
            other => Fault::Heap(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_heap::InvalidFreeKind;
    use fa_mem::{AccessKind, Addr};

    #[test]
    fn classes_are_distinct() {
        let m: Fault = MemFault::AccessViolation {
            addr: Addr(1),
            kind: AccessKind::Read,
            len: 1,
        }
        .into();
        assert_eq!(m.class(), "access-violation");
        let h: Fault = HeapError::InvalidFree {
            addr: Addr(1),
            kind: InvalidFreeKind::DoubleFree,
        }
        .into();
        assert_eq!(h.class(), "invalid-free");
        let a = Fault::assertion("x", CallSite::default());
        assert_eq!(a.class(), "assertion");
    }

    #[test]
    fn guard_trap_has_its_own_class() {
        let f: Fault = MemFault::GuardTrap {
            addr: Addr(1),
            kind: AccessKind::Write,
            len: 8,
        }
        .into();
        assert_eq!(f.class(), "sentry-trap");
    }

    #[test]
    fn heap_mem_fault_flattens() {
        let f: Fault = HeapError::Mem(MemFault::NoSuchRegion).into();
        assert!(matches!(f, Fault::Mem(_)));
    }

    #[test]
    fn display_mentions_message() {
        let a = Fault::assertion("cache magic mismatch", CallSite::default());
        assert_eq!(a.to_string(), "assertion failed: cache magic mismatch");
    }
}
