//! The process context: what a simulated application sees as "libc".
//!
//! Every allocation, deallocation, and memory access an application makes
//! goes through [`ProcessCtx`]. This is the reproduction's equivalent of
//! the paper's two interposition layers at once:
//!
//! * the **allocator extension seam** — `malloc`/`free`/`realloc` are
//!   routed through an [`AllocBackend`], where First-Aid's extension
//!   queries the patch pool and applies environmental changes;
//! * the **instrumentation seam** — loads and stores are announced to the
//!   backend before they execute, standing in for the Pin-based tracing
//!   the validation engine uses (paper §5).
//!
//! The context also owns the explicit call stack producing multi-level
//! call-sites, the virtual clock, the simulated file table, and the timing
//! seed used to model scheduling nondeterminism.

use fa_heap::Heap;
use fa_mem::{AccessKind, Addr, MemFault, MemSnapshot, SimMemory};

use crate::alloc_api::{AllocBackend, PlainAllocator};
use crate::callsite::{CallSite, CallStack, SymbolTable};
use crate::clock::{Clock, Costs};
use crate::fault::Fault;
use crate::files::FileTable;

/// Default base address of the simulated heap.
pub const DEFAULT_HEAP_BASE: Addr = Addr(0x1000_0000);

/// The execution context of a simulated process.
pub struct ProcessCtx {
    /// The address space.
    pub mem: SimMemory,
    alloc: Box<dyn AllocBackend>,
    /// The explicit call stack (produces allocation call-sites).
    pub stack: CallStack,
    /// Frame-id to function-name mapping for reports.
    pub symbols: SymbolTable,
    /// Virtual time.
    pub clock: Clock,
    /// Calibrated operation costs.
    pub costs: Costs,
    /// Simulated files (checkpointed and rolled back with the process).
    pub files: FileTable,
    /// Seed standing in for scheduling/timing nondeterminism.
    ///
    /// Deterministic apps ignore it; apps modelling races consult
    /// [`Self::timing`]. Diagnosis re-executions perturb it ("timing-based
    /// changes", paper §4.1).
    pub timing_seed: u64,
}

impl Clone for ProcessCtx {
    fn clone(&self) -> Self {
        ProcessCtx {
            mem: self.mem.clone(),
            alloc: self.alloc.clone_box(),
            stack: self.stack.clone(),
            symbols: self.symbols.clone(),
            clock: self.clock,
            costs: self.costs,
            files: self.files.clone(),
            timing_seed: self.timing_seed,
        }
    }
}

/// A checkpointable snapshot of a [`ProcessCtx`].
pub struct CtxSnapshot {
    mem: MemSnapshot,
    alloc: Box<dyn AllocBackend>,
    stack: CallStack,
    symbols: SymbolTable,
    clock: Clock,
    costs: Costs,
    files: FileTable,
    timing_seed: u64,
}

impl Clone for CtxSnapshot {
    fn clone(&self) -> Self {
        CtxSnapshot {
            mem: self.mem.clone(),
            alloc: self.alloc.clone_box(),
            stack: self.stack.clone(),
            symbols: self.symbols.clone(),
            clock: self.clock,
            costs: self.costs,
            files: self.files.clone(),
            timing_seed: self.timing_seed,
        }
    }
}

impl CtxSnapshot {
    /// A content-aware checksum over the snapshot: virtual clock, timing
    /// seed, memory shape, and the per-page content digest, mixed through
    /// SplitMix64. Two snapshots of diverged contexts collide only
    /// accidentally; a snapshot whose stored checksum no longer matches
    /// its `digest()` has rotted (fa-checkpoint uses this to detect
    /// corruption, including a single flipped byte inside a page).
    ///
    /// The content fold reuses hashes cached on the CoW-shared pages, so
    /// digesting a fresh checkpoint costs O(pages dirtied since the last
    /// checkpoint), not O(resident pages).
    pub fn digest(&self) -> u64 {
        let mut h = mix64(0xfa1d ^ self.clock.now());
        h = mix64(h ^ self.timing_seed);
        h = mix64(h ^ self.mem.page_count() as u64);
        h = mix64(h ^ self.mem.referenced_bytes());
        mix64(h ^ self.mem.content_digest())
    }

    /// Corrupts one byte of snapshotted page data in place (CoW-isolated
    /// from the live process and sibling snapshots). Test/fault-injection
    /// hook for checkpoint-rot detection; returns `false` if the snapshot
    /// holds no page data to rot.
    pub fn rot_page(&mut self) -> bool {
        self.mem.rot_page()
    }
}

/// SplitMix64 finalizer used by the snapshot digests.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ProcessCtx {
    /// Creates a context with a fresh memory, heap, and plain allocator.
    pub fn new(heap_limit: u64) -> Self {
        let mut mem = SimMemory::new();
        let heap = Heap::new(&mut mem, DEFAULT_HEAP_BASE, heap_limit)
            .expect("fresh address space must accommodate the heap");
        ProcessCtx {
            mem,
            alloc: Box::new(PlainAllocator::new(heap)),
            stack: CallStack::new(),
            symbols: SymbolTable::new(),
            clock: Clock::new(),
            costs: Costs::default(),
            files: FileTable::new(),
            timing_seed: 0,
        }
    }

    // ------------------------------------------------------------------
    // Allocator access
    // ------------------------------------------------------------------

    /// Returns the installed allocator backend.
    pub fn alloc(&self) -> &dyn AllocBackend {
        self.alloc.as_ref()
    }

    /// Returns the installed allocator backend mutably.
    pub fn alloc_mut(&mut self) -> &mut dyn AllocBackend {
        self.alloc.as_mut()
    }

    /// Borrows the allocator backend and the memory simultaneously.
    ///
    /// The diagnosis engine needs this to drive extension operations that
    /// touch simulated memory (mode switches that fill canaries, heap
    /// marking, scans).
    pub fn with_alloc_and_mem<R>(
        &mut self,
        f: impl FnOnce(&mut dyn AllocBackend, &mut SimMemory) -> R,
    ) -> R {
        let ProcessCtx { alloc, mem, .. } = self;
        f(alloc.as_mut(), mem)
    }

    /// Replaces the allocator backend (e.g. attaching the First-Aid
    /// extension), handing the old backend to the closure so its heap can
    /// be adopted.
    pub fn swap_alloc(&mut self, f: impl FnOnce(Box<dyn AllocBackend>) -> Box<dyn AllocBackend>) {
        // Temporarily park a dummy to take ownership.
        let old = std::mem::replace(
            &mut self.alloc,
            Box::new(PlainAllocator::new(fresh_dummy_heap())),
        );
        self.alloc = f(old);
    }

    // ------------------------------------------------------------------
    // Call stack
    // ------------------------------------------------------------------

    /// Enters a named function frame.
    pub fn enter(&mut self, name: &str) {
        let id = self.symbols.intern(name);
        self.stack.push(id);
        self.clock.advance(self.costs.frame);
    }

    /// Leaves the current function frame.
    pub fn leave(&mut self) {
        self.stack.pop();
    }

    /// Runs `f` inside a named frame, restoring the stack on exit.
    pub fn call<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut ProcessCtx) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        self.enter(name);
        let out = f(self);
        self.leave();
        out
    }

    /// Returns the current three-level call-site.
    pub fn site(&self) -> CallSite {
        self.stack.callsite()
    }

    // ------------------------------------------------------------------
    // Memory management API (what the app calls "malloc")
    // ------------------------------------------------------------------

    /// Allocates `req` bytes.
    pub fn malloc(&mut self, req: u64) -> Result<Addr, Fault> {
        self.clock.advance(self.costs.malloc);
        let site = self.stack.callsite();
        let ProcessCtx {
            alloc, mem, clock, ..
        } = self;
        alloc.malloc(mem, clock, req, site)
    }

    /// Allocates `req` zero-filled bytes (`calloc`).
    pub fn calloc(&mut self, req: u64) -> Result<Addr, Fault> {
        let p = self.malloc(req)?;
        self.clock.advance(self.costs.access(req));
        // Routed through the observe hook so the allocator sees the
        // zeroing as an initializing write.
        self.observed(p, req, AccessKind::Write)?;
        let r = self.mem.fill(p, req, 0);
        self.route(r)?;
        Ok(p)
    }

    /// Frees an allocation.
    pub fn free(&mut self, addr: Addr) -> Result<(), Fault> {
        self.clock.advance(self.costs.free);
        let site = self.stack.callsite();
        let ProcessCtx {
            alloc, mem, clock, ..
        } = self;
        alloc.free(mem, clock, addr, site)
    }

    /// Resizes an allocation.
    pub fn realloc(&mut self, addr: Addr, req: u64) -> Result<Addr, Fault> {
        self.clock.advance(self.costs.malloc + self.costs.free);
        let site = self.stack.callsite();
        let ProcessCtx {
            alloc, mem, clock, ..
        } = self;
        alloc.realloc(mem, clock, addr, req, site)
    }

    /// Returns the usable size of an allocation.
    pub fn usable_size(&mut self, addr: Addr) -> Result<u64, Fault> {
        self.alloc.usable_size(&mut self.mem, addr)
    }

    // ------------------------------------------------------------------
    // Memory access API (what the app sees as loads/stores)
    // ------------------------------------------------------------------

    fn observed(&mut self, addr: Addr, len: u64, kind: AccessKind) -> Result<(), Fault> {
        self.clock.advance(self.costs.access(len));
        let site = self.stack.callsite();
        let ProcessCtx { alloc, clock, .. } = self;
        alloc.observe_access(clock, addr, len, kind, site)
    }

    /// Routes a raw memory-access result back to the application.
    ///
    /// Permission-bit traps ([`MemFault::GuardTrap`] from
    /// [`fa_mem::Perms::GUARD`]/[`fa_mem::Perms::POISONED`] pages) are
    /// first announced to the allocator backend — the simulated SIGSEGV
    /// hand-off to First-Aid's error monitor — so the extension can
    /// attribute the trap before the fault reaches the application.
    fn route<T>(&mut self, res: Result<T, MemFault>) -> Result<T, Fault> {
        match res {
            Ok(v) => Ok(v),
            Err(MemFault::GuardTrap { addr, kind, len }) => {
                let site = self.stack.callsite();
                let ProcessCtx { alloc, clock, .. } = self;
                alloc.on_guard_trap(clock, addr, len, kind, site);
                Err(Fault::Mem(MemFault::GuardTrap { addr, kind, len }))
            }
            Err(f) => Err(Fault::Mem(f)),
        }
    }

    /// Stores `bytes` at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), Fault> {
        self.observed(addr, bytes.len() as u64, AccessKind::Write)?;
        let r = self.mem.write(addr, bytes);
        self.route(r)
    }

    /// Loads `len` bytes from `addr`.
    pub fn read_bytes(&mut self, addr: Addr, len: u64) -> Result<Vec<u8>, Fault> {
        self.observed(addr, len, AccessKind::Read)?;
        let r = self.mem.read_bytes(addr, len);
        self.route(r)
    }

    /// Stores a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) -> Result<(), Fault> {
        self.observed(addr, 8, AccessKind::Write)?;
        let r = self.mem.write_u64(addr, v);
        self.route(r)
    }

    /// Loads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: Addr) -> Result<u64, Fault> {
        self.observed(addr, 8, AccessKind::Read)?;
        let r = self.mem.read_u64(addr);
        self.route(r)
    }

    /// Stores a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) -> Result<(), Fault> {
        self.observed(addr, 4, AccessKind::Write)?;
        let r = self.mem.write_u32(addr, v);
        self.route(r)
    }

    /// Loads a little-endian `u32`.
    pub fn read_u32(&mut self, addr: Addr) -> Result<u32, Fault> {
        self.observed(addr, 4, AccessKind::Read)?;
        let r = self.mem.read_u32(addr);
        self.route(r)
    }

    /// Stores one byte.
    pub fn write_u8(&mut self, addr: Addr, v: u8) -> Result<(), Fault> {
        self.observed(addr, 1, AccessKind::Write)?;
        let r = self.mem.write_u8(addr, v);
        self.route(r)
    }

    /// Loads one byte.
    pub fn read_u8(&mut self, addr: Addr) -> Result<u8, Fault> {
        self.observed(addr, 1, AccessKind::Read)?;
        let r = self.mem.read_u8(addr);
        self.route(r)
    }

    /// Fills `[addr, addr + len)` with `byte` (a `memset`).
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) -> Result<(), Fault> {
        self.observed(addr, len, AccessKind::Write)?;
        let r = self.mem.fill(addr, len, byte);
        self.route(r)
    }

    /// Copies `len` bytes from `src` to `dst` (a `memcpy`).
    pub fn copy(&mut self, dst: Addr, src: Addr, len: u64) -> Result<(), Fault> {
        self.observed(src, len, AccessKind::Read)?;
        self.observed(dst, len, AccessKind::Write)?;
        let r = self.mem.copy(dst, src, len);
        self.route(r)
    }

    /// Writes a NUL-terminated string (a `strcpy`).
    pub fn write_cstr(&mut self, addr: Addr, s: &str) -> Result<(), Fault> {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.write_bytes(addr, &bytes)
    }

    /// Reads a NUL-terminated string of at most `max` bytes.
    pub fn read_cstr(&mut self, addr: Addr, max: u64) -> Result<String, Fault> {
        let bytes = self.read_bytes(addr, max)?;
        let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
        Ok(String::from_utf8_lossy(&bytes[..end]).into_owned())
    }

    // ------------------------------------------------------------------
    // Misc
    // ------------------------------------------------------------------

    /// Fails with an assertion fault if `cond` is false.
    pub fn check(&self, cond: bool, msg: &str) -> Result<(), Fault> {
        if cond {
            Ok(())
        } else {
            Err(Fault::assertion(msg, self.stack.callsite()))
        }
    }

    /// Returns a deterministic pseudo-random value derived from the timing
    /// seed — the hook through which nondeterministic (timing-dependent)
    /// bugs are modelled.
    pub fn timing(&self, salt: u64) -> u64 {
        let mut x = self
            .timing_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x
    }

    /// Takes a checkpointable snapshot of the full context.
    pub fn snapshot(&self) -> CtxSnapshot {
        CtxSnapshot {
            mem: self.mem.snapshot(),
            alloc: self.alloc.clone_box(),
            stack: self.stack.clone(),
            symbols: self.symbols.clone(),
            clock: self.clock,
            costs: self.costs,
            files: self.files.clone(),
            timing_seed: self.timing_seed,
        }
    }

    /// Restores the context from a snapshot.
    pub fn restore(&mut self, snap: &CtxSnapshot) {
        self.mem.restore(&snap.mem);
        self.alloc = snap.alloc.clone_box();
        self.stack = snap.stack.clone();
        self.symbols = snap.symbols.clone();
        self.clock = snap.clock;
        self.costs = snap.costs;
        self.files = snap.files.clone();
        self.timing_seed = snap.timing_seed;
    }
}

/// Builds a throwaway heap for [`ProcessCtx::swap_alloc`]'s placeholder.
fn fresh_dummy_heap() -> Heap {
    let mut mem = SimMemory::new();
    Heap::new(&mut mem, Addr(0x10_0000), 1 << 20).expect("dummy heap")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ProcessCtx {
        ProcessCtx::new(1 << 26)
    }

    #[test]
    fn malloc_free_through_ctx() {
        let mut c = ctx();
        c.enter("main");
        let p = c.malloc(64).unwrap();
        c.write_bytes(p, b"payload").unwrap();
        assert_eq!(c.read_bytes(p, 7).unwrap(), b"payload");
        c.free(p).unwrap();
        c.leave();
    }

    #[test]
    fn clock_advances_on_ops() {
        let mut c = ctx();
        let t0 = c.clock.now();
        c.enter("f");
        let p = c.malloc(64).unwrap();
        c.write_u64(p, 1).unwrap();
        assert!(c.clock.now() > t0);
    }

    #[test]
    fn call_restores_stack_on_error() {
        let mut c = ctx();
        c.enter("main");
        let site_before = c.site();
        let r: Result<(), Fault> = c.call("inner", |c| c.check(false, "boom"));
        assert!(r.is_err());
        assert_eq!(c.site(), site_before);
    }

    #[test]
    fn cstr_roundtrip() {
        let mut c = ctx();
        c.enter("main");
        let p = c.malloc(32).unwrap();
        c.write_cstr(p, "hello").unwrap();
        assert_eq!(c.read_cstr(p, 32).unwrap(), "hello");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut c = ctx();
        c.enter("main");
        let p = c.malloc(64).unwrap();
        c.write_u64(p, 42).unwrap();
        c.files.open("f");
        c.files.write("f", b"v1");
        let snap = c.snapshot();
        c.write_u64(p, 99).unwrap();
        c.free(p).unwrap();
        c.files.write("f", b"more");
        c.restore(&snap);
        assert_eq!(c.read_u64(p).unwrap(), 42);
        assert_eq!(c.files.contents("f").unwrap(), b"v1");
        // The allocation is live again; freeing succeeds exactly once.
        c.free(p).unwrap();
        assert!(c.free(p).is_err());
    }

    #[test]
    fn timing_depends_on_seed() {
        let mut c = ctx();
        let a = c.timing(7);
        c.timing_seed = 1;
        let b = c.timing(7);
        assert_ne!(a, b);
        // And is deterministic for a fixed seed.
        assert_eq!(c.timing(7), b);
    }

    #[test]
    fn swap_alloc_preserves_heap_state() {
        let mut c = ctx();
        c.enter("main");
        let p = c.malloc(64).unwrap();
        c.swap_alloc(|old| old); // identity swap
        c.free(p).unwrap();
    }
}
