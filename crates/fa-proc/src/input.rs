//! Application inputs and the replay log format.
//!
//! Inputs are the unit of both progress and replay: the network proxy of
//! the original system records incoming messages during normal execution
//! and replays them during re-execution (paper §3). Here an [`Input`] is a
//! small structured record all applications share; each app interprets the
//! fields its own way (a URL for Squid, a mail index for Pine, ...).

use serde::{Deserialize, Serialize};

/// One unit of application input (request, command, message).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Input {
    /// Application-defined operation code.
    pub op: u32,
    /// First numeric argument.
    pub a: u64,
    /// Second numeric argument.
    pub b: u64,
    /// Textual payload (URL, macro body, expression, ...).
    pub text: String,
    /// Binary payload.
    pub data: Vec<u8>,
    /// Idle time before this input arrives, in virtual nanoseconds.
    ///
    /// Charged to the clock during *normal* execution only; diagnosis
    /// re-executions replay inputs back-to-back, which is why recovery is
    /// much faster than the original execution of the same region.
    pub gap_ns: u64,
    /// Harness-only marker: this input is expected to trigger the bug.
    ///
    /// Applications must not read this field; it exists so experiment
    /// drivers can count triggers and verify prevention.
    pub buggy: bool,
}

/// Fluent constructor for [`Input`]s.
///
/// # Examples
///
/// ```
/// use fa_proc::InputBuilder;
///
/// let req = InputBuilder::op(1).a(42).text("GET /index.html").gap_us(500).build();
/// assert_eq!(req.a, 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct InputBuilder {
    input: Input,
}

impl InputBuilder {
    /// Starts an input with the given op code.
    pub fn op(op: u32) -> Self {
        InputBuilder {
            input: Input {
                op,
                ..Input::default()
            },
        }
    }

    /// Sets the first numeric argument.
    pub fn a(mut self, a: u64) -> Self {
        self.input.a = a;
        self
    }

    /// Sets the second numeric argument.
    pub fn b(mut self, b: u64) -> Self {
        self.input.b = b;
        self
    }

    /// Sets the textual payload.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.input.text = text.into();
        self
    }

    /// Sets the binary payload.
    pub fn data(mut self, data: Vec<u8>) -> Self {
        self.input.data = data;
        self
    }

    /// Sets the arrival gap in microseconds.
    pub fn gap_us(mut self, us: u64) -> Self {
        self.input.gap_ns = us * 1_000;
        self
    }

    /// Marks the input as bug-triggering (harness bookkeeping only).
    pub fn buggy(mut self) -> Self {
        self.input.buggy = true;
        self
    }

    /// Finishes the input.
    pub fn build(self) -> Input {
        self.input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let i = InputBuilder::op(7)
            .a(1)
            .b(2)
            .text("x")
            .data(vec![9])
            .gap_us(3)
            .buggy()
            .build();
        assert_eq!(i.op, 7);
        assert_eq!((i.a, i.b), (1, 2));
        assert_eq!(i.text, "x");
        assert_eq!(i.data, vec![9]);
        assert_eq!(i.gap_ns, 3_000);
        assert!(i.buggy);
    }

    #[test]
    fn serde_roundtrip() {
        let i = InputBuilder::op(1).text("GET /").build();
        let s = serde_json::to_string(&i).unwrap();
        assert_eq!(serde_json::from_str::<Input>(&s).unwrap(), i);
    }
}
