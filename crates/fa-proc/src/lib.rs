//! Deterministic process substrate for the First-Aid reproduction.
//!
//! First-Aid (EuroSys 2009) wraps a *native* process: it interposes on the
//! allocator, checkpoints the address space, records network input through a
//! proxy, and replays it during diagnosis re-executions. This crate provides
//! the equivalent process abstraction over the simulated memory and heap:
//!
//! * [`App`] — a deterministic, cloneable application that handles
//!   [`Input`]s through a [`ProcessCtx`]; determinism given the input log
//!   is what makes checkpoint/re-execution diagnosis sound;
//! * [`ProcessCtx`] — the "libc + MMU" seen by applications: `malloc`,
//!   `free`, typed loads/stores (every access is observable, standing in
//!   for Pin-style instrumentation), an explicit call stack producing
//!   multi-level allocation call-sites, a simulated file table, and a
//!   virtual clock with calibrated operation costs;
//! * [`AllocBackend`] — the allocator interposition point implemented by
//!   the plain heap here and by the First-Aid memory allocator extension
//!   in `fa-allocext`;
//! * [`Process`] — an app plus its context plus the recorded input log
//!   (the network-proxy analog) with snapshot/restore and replay;
//! * [`Fault`] — what the error monitors catch: memory access violations,
//!   allocator aborts, and application assertion failures.

pub mod alloc_api;
pub mod app;
pub mod callsite;
pub mod clock;
pub mod ctx;
pub mod fault;
pub mod files;
pub mod input;
pub mod process;

pub use alloc_api::{AllocBackend, PlainAllocator};
pub use app::{App, BoxedApp, Response};
pub use callsite::{CallSite, CallStack, SymbolTable, NO_SITE};
pub use clock::{Clock, Costs};
pub use ctx::{CtxSnapshot, ProcessCtx, DEFAULT_HEAP_BASE};
pub use fault::Fault;
pub use files::FileTable;
pub use input::{Input, InputBuilder};
pub use process::{FailureRecord, ProcSnapshot, Process, StepResult};
