//! A tiny simulated file table.
//!
//! For rollback of file state, First-Aid "keep\[s\] a copy of each accessed
//! file and file pointers at the beginning of each checkpoint and
//! reinstat\[es\] it for rollback" (paper §3, following Discount Checking /
//! Flashback). This module models exactly that: files are named byte
//! vectors with positions, the whole table is cloned into checkpoints, and
//! restoring a snapshot reinstates contents and file pointers.
//!
//! Contents are shared via [`Arc`] so snapshotting the table is cheap
//! (copy-on-write on the first mutation of each file).

use std::collections::BTreeMap;
use std::sync::Arc;

/// An open simulated file.
#[derive(Clone, Debug, Default)]
struct File {
    data: Arc<Vec<u8>>,
    pos: usize,
}

/// A named collection of simulated files with file pointers.
#[derive(Clone, Debug, Default)]
pub struct FileTable {
    files: BTreeMap<String, File>,
}

impl FileTable {
    /// Creates an empty file table.
    pub fn new() -> Self {
        FileTable::default()
    }

    /// Opens (creating if absent) a file and resets its position to zero.
    pub fn open(&mut self, name: &str) {
        let f = self.files.entry(name.to_owned()).or_default();
        f.pos = 0;
    }

    /// Returns `true` if the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Appends `bytes` at the current position, overwriting any suffix.
    pub fn write(&mut self, name: &str, bytes: &[u8]) {
        let f = self.files.entry(name.to_owned()).or_default();
        let data = Arc::make_mut(&mut f.data);
        data.truncate(f.pos);
        data.extend_from_slice(bytes);
        f.pos = data.len();
    }

    /// Reads up to `len` bytes from the current position.
    pub fn read(&mut self, name: &str, len: usize) -> Vec<u8> {
        match self.files.get_mut(name) {
            Some(f) => {
                let end = (f.pos + len).min(f.data.len());
                let out = f.data[f.pos..end].to_vec();
                f.pos = end;
                out
            }
            None => Vec::new(),
        }
    }

    /// Moves the file pointer.
    pub fn seek(&mut self, name: &str, pos: usize) {
        if let Some(f) = self.files.get_mut(name) {
            f.pos = pos.min(f.data.len());
        }
    }

    /// Returns the file length, or `None` if absent.
    pub fn len(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(|f| f.data.len())
    }

    /// Returns `true` if no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Returns the full contents of a file, if present.
    pub fn contents(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|f| f.data.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut ft = FileTable::new();
        ft.open("log");
        ft.write("log", b"hello ");
        ft.write("log", b"world");
        ft.seek("log", 0);
        assert_eq!(ft.read("log", 64), b"hello world");
    }

    #[test]
    fn snapshot_restores_contents_and_position() {
        let mut ft = FileTable::new();
        ft.open("db");
        ft.write("db", b"v1");
        let snap = ft.clone();
        ft.write("db", b"-corrupted");
        ft = snap;
        assert_eq!(ft.contents("db").unwrap(), b"v1");
        ft.write("db", b"!"); // position was after "v1"
        assert_eq!(ft.contents("db").unwrap(), b"v1!");
    }

    #[test]
    fn read_missing_file_is_empty() {
        let mut ft = FileTable::new();
        assert!(ft.read("nope", 10).is_empty());
        assert!(!ft.exists("nope"));
        assert!(ft.is_empty());
    }

    #[test]
    fn write_truncates_suffix() {
        let mut ft = FileTable::new();
        ft.open("f");
        ft.write("f", b"abcdef");
        ft.seek("f", 3);
        ft.write("f", b"XY");
        assert_eq!(ft.contents("f").unwrap(), b"abcXY");
        assert_eq!(ft.len("f"), Some(5));
    }
}
