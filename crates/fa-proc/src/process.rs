//! A process: application + context + recorded input log.
//!
//! The input log plays the role of the paper's network proxy: every input
//! consumed during normal execution is recorded, and diagnosis
//! re-executions replay the log from a checkpoint's cursor position.
//! Replayed responses are not re-delivered (the proxy suppresses
//! duplicates), so delivered-byte accounting only advances the first time
//! an input is executed.

use std::collections::HashSet;

use crate::app::{BoxedApp, Response};
use crate::ctx::{CtxSnapshot, ProcessCtx};
use crate::fault::Fault;
use crate::input::Input;

/// A failure caught by the error monitor.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// The fault that terminated input handling.
    pub fault: Fault,
    /// Index into the input log of the failing input.
    pub input_index: usize,
    /// Virtual time at which the failure surfaced.
    pub at_ns: u64,
}

/// Outcome of executing one input.
#[derive(Clone, Debug)]
pub enum StepResult {
    /// The input was handled; the response was (or had already been)
    /// delivered.
    Ok(Response),
    /// The process failed while handling the input.
    Failed(FailureRecord),
}

impl StepResult {
    /// Returns `true` for [`StepResult::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, StepResult::Ok(_))
    }
}

/// A checkpointable snapshot of a whole process.
#[derive(Clone)]
pub struct ProcSnapshot {
    app: BoxedApp,
    ctx: CtxSnapshot,
    cursor: usize,
}

impl ProcSnapshot {
    /// Returns the input-log cursor at snapshot time.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// A cheap structural checksum of the snapshot (context digest
    /// mixed with the cursor). Stored alongside checkpoints so that
    /// corruption — simulated storage rot — is detectable on rollback.
    pub fn digest(&self) -> u64 {
        self.ctx
            .digest()
            .rotate_left(17)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (self.cursor as u64).wrapping_add(0x94d0_49bb_1331_11eb)
    }

    /// Corrupts one byte of snapshotted page data (CoW-isolated from the
    /// live process). Fault-injection hook for checkpoint-rot detection;
    /// returns `false` if there is no page data to rot.
    pub fn rot_page(&mut self) -> bool {
        self.ctx.rot_page()
    }
}

/// A simulated process under (or before) First-Aid supervision.
pub struct Process {
    /// The application.
    pub app: BoxedApp,
    /// Its execution context.
    pub ctx: ProcessCtx,
    log: Vec<Input>,
    cursor: usize,
    /// Highest cursor ever executed; inputs below it are replays.
    high_water: usize,
    /// The pending failure, if the process is currently crashed.
    pub failure: Option<FailureRecord>,
    /// Total bytes delivered to clients (first executions only).
    pub bytes_delivered: u64,
    /// Charge arrival gaps for first executions (normal pacing). The
    /// diagnosis and validation engines disable pacing: recorded inputs
    /// replay back-to-back regardless of their original arrival times.
    pacing: bool,
    /// Inputs permanently dropped by recovery (poisoned requests the
    /// proxy answers with an error). Owned by the proxy like the log
    /// itself: rollbacks must NOT resurrect a dropped input, or recovery
    /// would loop crashing on it forever.
    skipped: HashSet<usize>,
}

impl Process {
    /// Launches an application: runs its `init` and returns the process.
    ///
    /// Startup faults are returned as errors; First-Aid only supervises
    /// processes that came up.
    pub fn launch(mut app: BoxedApp, mut ctx: ProcessCtx) -> Result<Process, Fault> {
        ctx.enter("main");
        app.init(&mut ctx)?;
        Ok(Process {
            app,
            ctx,
            log: Vec::new(),
            cursor: 0,
            high_water: 0,
            failure: None,
            bytes_delivered: 0,
            pacing: true,
            skipped: HashSet::new(),
        })
    }

    /// Appends an input to the log without executing it.
    ///
    /// Used when inputs keep arriving while the process is crashed or
    /// being diagnosed; they queue in the proxy.
    pub fn enqueue(&mut self, input: Input) {
        self.log.push(input);
    }

    /// Executes the next logged input, if any.
    ///
    /// First executions charge the input's arrival gap to the clock;
    /// replays (after a rollback) run back-to-back, which is why diagnosis
    /// re-execution is much faster than the original run of the region.
    pub fn step(&mut self) -> Option<StepResult> {
        if self.failure.is_some() {
            return None;
        }
        // Dropped inputs are not delivered to the application at all.
        while self.skipped.contains(&self.cursor) {
            self.cursor += 1;
            self.high_water = self.high_water.max(self.cursor);
        }
        if self.cursor >= self.log.len() {
            return None;
        }
        let idx = self.cursor;
        let input = self.log[idx].clone();
        let fresh = idx >= self.high_water;
        if fresh && self.pacing {
            self.ctx.clock.advance(input.gap_ns);
        }
        self.ctx.clock.advance(self.ctx.costs.input_base);
        let outcome = self.app.handle(&mut self.ctx, &input);
        match outcome {
            Ok(resp) => {
                self.cursor += 1;
                if fresh {
                    self.high_water = self.cursor;
                    self.bytes_delivered += resp.bytes_out;
                }
                Some(StepResult::Ok(resp))
            }
            Err(fault) => {
                let record = FailureRecord {
                    fault,
                    input_index: idx,
                    at_ns: self.ctx.clock.now(),
                };
                self.failure = Some(record.clone());
                Some(StepResult::Failed(record))
            }
        }
    }

    /// Feeds one input: enqueue and execute.
    pub fn feed(&mut self, input: Input) -> StepResult {
        self.enqueue(input);
        self.step().expect("feed always has a pending input")
    }

    /// Returns the number of logged-but-unexecuted inputs.
    pub fn pending(&self) -> usize {
        self.log.len() - self.cursor
    }

    /// Returns the input log.
    pub fn log(&self) -> &[Input] {
        &self.log
    }

    /// Returns the cursor (index of the next input to execute).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Returns the highest input index ever executed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Forks the whole process — app, context, input log, cursor — into an
    /// independent copy.
    ///
    /// The validation engine runs on a fork so it "does not delay the
    /// failure recovery" (paper §2): the original process resumes serving
    /// while the fork re-executes the buggy region.
    pub fn fork(&self) -> Process {
        Process {
            app: self.app.clone(),
            ctx: self.ctx.clone(),
            log: self.log.clone(),
            cursor: self.cursor,
            high_water: self.high_water,
            failure: self.failure.clone(),
            bytes_delivered: self.bytes_delivered,
            pacing: self.pacing,
            skipped: self.skipped.clone(),
        }
    }

    /// Takes a snapshot capturing app state, full context, and cursor.
    ///
    /// The input log itself is *not* part of the snapshot: it belongs to
    /// the proxy, which persists across rollbacks.
    pub fn snapshot(&self) -> ProcSnapshot {
        ProcSnapshot {
            app: self.app.clone(),
            ctx: self.ctx.snapshot(),
            cursor: self.cursor,
        }
    }

    /// Rolls the process back to a snapshot, clearing any failure.
    pub fn restore(&mut self, snap: &ProcSnapshot) {
        self.app = snap.app.clone();
        self.ctx.restore(&snap.ctx);
        self.cursor = snap.cursor;
        self.failure = None;
    }

    /// Rebinds a pooled trial context to stand in for `template`,
    /// adopting its input log, replay bounds, pacing, and drop set — the
    /// proxy-owned state a [`Self::fork`] would copy but a
    /// [`Self::restore`] leaves alone.
    ///
    /// The execution context (app, address space, allocator, clock) is
    /// deliberately *not* reset here: a rebound process is only usable
    /// after a `restore` from a snapshot, which replaces all of it. Until
    /// then the context still holds the previous binding's state —
    /// keeping it lets the diff-aware [`fa_mem::SimMemory::restore`]
    /// reuse pages the pooled context already shares with the snapshot,
    /// which is the entire point of pooling. All page mutation runs
    /// through fa-mem's write paths, so per-page cached content hashes
    /// can never go stale across a rebind.
    pub fn rebind(&mut self, template: &Process) {
        self.log.clone_from(&template.log);
        self.cursor = template.cursor;
        self.high_water = template.high_water;
        self.failure = template.failure.clone();
        self.bytes_delivered = template.bytes_delivered;
        self.pacing = template.pacing;
        self.skipped.clone_from(&template.skipped);
    }

    /// Enables or disables arrival-gap pacing for first executions.
    pub fn set_pacing(&mut self, pacing: bool) {
        self.pacing = pacing;
    }

    /// Raises a failure detected by an external error monitor (e.g. a
    /// periodic heap-integrity sweep), attributed to the most recently
    /// executed input.
    pub fn raise_failure(&mut self, fault: Fault) {
        let record = FailureRecord {
            fault,
            input_index: self.cursor.saturating_sub(1),
            at_ns: self.ctx.clock.now(),
        };
        self.failure = Some(record);
    }

    /// Clears a failure without rolling back — used by the restart
    /// baseline and by recovery logic that decides to skip an input.
    pub fn clear_failure(&mut self) {
        self.failure = None;
    }

    /// Permanently drops the input at the cursor (a poisoned request the
    /// proxy will answer with an error). The drop survives rollbacks.
    pub fn skip_current(&mut self) {
        if self.cursor < self.log.len() {
            self.skipped.insert(self.cursor);
            self.cursor += 1;
            self.high_water = self.high_water.max(self.cursor);
        }
    }

    /// Returns the number of permanently dropped inputs.
    pub fn skipped_count(&self) -> usize {
        self.skipped.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::App;
    use crate::input::InputBuilder;
    use fa_mem::Addr;

    /// Allocates a buffer per request; fails on op == 99 by reading
    /// unmapped memory.
    #[derive(Clone, Default)]
    struct Worker {
        served: u64,
    }

    impl App for Worker {
        fn name(&self) -> &'static str {
            "worker"
        }

        fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
            ctx.call("serve", |ctx| {
                if input.op == 99 {
                    let _ = ctx.read_u64(Addr(0x10))?; // crash
                }
                let p = ctx.malloc(input.a.max(16))?;
                ctx.fill(p, input.a.max(16), 0x42)?;
                ctx.free(p)?;
                self.served += 1;
                Ok(Response::bytes(input.a))
            })
        }

        fn clone_app(&self) -> BoxedApp {
            Box::new(self.clone())
        }
    }

    fn launch() -> Process {
        Process::launch(Box::new(Worker::default()), ProcessCtx::new(1 << 26)).unwrap()
    }

    #[test]
    fn feed_delivers_and_accounts_bytes() {
        let mut p = launch();
        let r = p.feed(InputBuilder::op(1).a(100).build());
        assert!(r.is_ok());
        assert_eq!(p.bytes_delivered, 100);
        assert_eq!(p.cursor(), 1);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn failure_freezes_process() {
        let mut p = launch();
        p.feed(InputBuilder::op(1).a(10).build());
        let r = p.feed(InputBuilder::op(99).build());
        assert!(!r.is_ok());
        assert!(p.failure.is_some());
        // Further stepping does nothing while crashed.
        p.enqueue(InputBuilder::op(1).a(10).build());
        assert!(p.step().is_none());
        assert_eq!(p.pending(), 2); // failing input + queued one
    }

    #[test]
    fn rollback_and_replay() {
        let mut p = launch();
        p.feed(InputBuilder::op(1).a(10).build());
        let snap = p.snapshot();
        let delivered_at_snap = p.bytes_delivered;
        p.feed(InputBuilder::op(1).a(20).build());
        p.feed(InputBuilder::op(99).build());
        assert!(p.failure.is_some());
        p.restore(&snap);
        assert!(p.failure.is_none());
        assert_eq!(p.cursor(), 1);
        // Replay: the a=20 input re-executes but bytes are not re-counted.
        let r = p.step().unwrap();
        assert!(r.is_ok());
        assert_eq!(p.bytes_delivered, delivered_at_snap + 20);
        // The poisoned input fails again deterministically.
        let r = p.step().unwrap();
        assert!(!r.is_ok());
    }

    #[test]
    fn replay_skips_arrival_gaps() {
        let mut p = launch();
        p.feed(InputBuilder::op(1).a(10).gap_us(1_000).build());
        let snap_start = p.snapshot();
        let t_before = p.ctx.clock.now();
        p.feed(InputBuilder::op(1).a(10).gap_us(100_000).build());
        let normal_duration = p.ctx.clock.now() - t_before;
        p.restore(&snap_start);
        let t_before = p.ctx.clock.now();
        p.step().unwrap();
        let replay_duration = p.ctx.clock.now() - t_before;
        assert!(
            replay_duration < normal_duration / 10,
            "replay ({replay_duration} ns) must skip the 100 ms arrival gap \
             ({normal_duration} ns)"
        );
    }

    #[test]
    fn skip_current_drops_poisoned_input() {
        let mut p = launch();
        let r = p.feed(InputBuilder::op(99).build());
        assert!(!r.is_ok());
        p.clear_failure();
        p.skip_current();
        let r = p.feed(InputBuilder::op(1).a(5).build());
        assert!(r.is_ok());
    }

    #[test]
    fn rebind_then_restore_matches_fresh_fork() {
        let mut template = launch();
        template.feed(InputBuilder::op(1).a(10).build());
        let snap = template.snapshot();
        template.enqueue(InputBuilder::op(1).a(20).build());
        template.enqueue(InputBuilder::op(1).a(30).build());

        // A pooled context that previously ran someone else's trial.
        let mut pooled = launch();
        pooled.feed(InputBuilder::op(1).a(500).build());
        pooled.set_pacing(false);

        pooled.rebind(&template);
        pooled.restore(&snap);
        let mut fresh = template.fork();
        fresh.restore(&snap);

        assert_eq!(pooled.snapshot().digest(), fresh.snapshot().digest());
        assert_eq!(pooled.cursor(), fresh.cursor());
        assert_eq!(pooled.high_water(), fresh.high_water());
        assert_eq!(pooled.bytes_delivered, fresh.bytes_delivered);
        while let (Some(a), Some(b)) = (pooled.step(), fresh.step()) {
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_eq!(pooled.cursor(), fresh.cursor());
        assert_eq!(pooled.bytes_delivered, fresh.bytes_delivered);
    }

    #[test]
    fn deterministic_replay_reaches_same_failure() {
        let mut p = launch();
        for i in 0..10 {
            p.feed(InputBuilder::op(1).a(i * 8).build());
        }
        let snap = p.snapshot();
        p.feed(InputBuilder::op(1).a(64).build());
        let r = p.feed(InputBuilder::op(99).build());
        let first_idx = match r {
            StepResult::Failed(f) => f.input_index,
            _ => panic!("expected failure"),
        };
        for _ in 0..3 {
            p.restore(&snap);
            let mut last = None;
            while let Some(r) = p.step() {
                last = Some(r);
            }
            match last {
                Some(StepResult::Failed(f)) => assert_eq!(f.input_index, first_idx),
                other => panic!("expected deterministic failure, got {other:?}"),
            }
        }
    }
}
