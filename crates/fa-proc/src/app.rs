//! The application trait.

use crate::ctx::ProcessCtx;
use crate::fault::Fault;
use crate::input::Input;

/// The result of successfully handling one input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Response {
    /// Bytes delivered to the client, the unit of the throughput curves in
    /// paper Fig. 4.
    pub bytes_out: u64,
}

impl Response {
    /// A response delivering `bytes_out` bytes.
    pub fn bytes(bytes_out: u64) -> Response {
        Response { bytes_out }
    }

    /// An empty acknowledgement.
    pub fn ack() -> Response {
        Response { bytes_out: 0 }
    }
}

/// A deterministic simulated application.
///
/// Applications must be:
///
/// * **deterministic** — given the same context state and input sequence,
///   behaviour is identical; this is what makes checkpoint/re-execution
///   diagnosis sound (modulo the explicit [`ProcessCtx::timing`] hook);
/// * **cloneable** — their in-host state is captured in checkpoints along
///   with the simulated memory they point into.
///
/// Application state referencing simulated memory should store [`fa_mem::Addr`]
/// values; those are plain numbers and survive snapshot/restore unchanged.
/// `Send` allows validation re-executions on a separate thread.
pub trait App: Send {
    /// Returns the program name (the patch-pool key, paper §3 "Patch
    /// management" keeps one pool per program).
    fn name(&self) -> &'static str;

    /// One-time startup (static allocations, config parsing).
    fn init(&mut self, _ctx: &mut ProcessCtx) -> Result<(), Fault> {
        Ok(())
    }

    /// Handles one input.
    fn handle(&mut self, ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault>;

    /// Clones the application state into a box (checkpoint support).
    fn clone_app(&self) -> Box<dyn App>;
}

/// A boxed application.
pub type BoxedApp = Box<dyn App>;

impl Clone for BoxedApp {
    fn clone(&self) -> Self {
        self.clone_app()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Echo {
        handled: u64,
    }

    impl App for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }

        fn handle(&mut self, _ctx: &mut ProcessCtx, input: &Input) -> Result<Response, Fault> {
            self.handled += 1;
            Ok(Response::bytes(input.text.len() as u64))
        }

        fn clone_app(&self) -> BoxedApp {
            Box::new(self.clone())
        }
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut ctx = ProcessCtx::new(1 << 20);
        let mut app: BoxedApp = Box::new(Echo { handled: 0 });
        app.handle(&mut ctx, &Input::default()).unwrap();
        let copy = app.clone();
        app.handle(&mut ctx, &Input::default()).unwrap();
        // The clone froze at 1 handled input.
        let r = copy
            .clone_app()
            .handle(&mut ctx, &Input::default())
            .unwrap();
        assert_eq!(r, Response::bytes(0));
    }
}
