//! The retained flat-map address space: differential-testing oracle.
//!
//! [`FlatMemory`] is the pre-page-table implementation of the memory
//! substrate — a `BTreeMap` of pages plus a `BTreeMap` of per-page
//! permissions, with **no** TLB, no region cache, and no radix walk. It
//! implements exactly the semantics [`crate::SimMemory`] promises, by the
//! most obvious construction possible, and exists so property tests can
//! drive both implementations with the same operation stream and compare
//! every observable (`tests/differential.rs`).
//!
//! Keep this module boring: any cleverness added here weakens the oracle.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::addr::Addr;
use crate::fault::{AccessKind, MemFault};
use crate::page::{Page, SharedPage, PAGE_SIZE};
use crate::perm::Perms;
use crate::region::{Region, RegionId};
use crate::table::VA_LIMIT;

/// Snapshot of a [`FlatMemory`]: a full clone of the page and permission
/// maps (O(resident pages), unlike the O(1) paged snapshot).
#[derive(Clone)]
pub struct FlatSnapshot {
    regions: Vec<Region>,
    pages: BTreeMap<u64, SharedPage>,
    perms: BTreeMap<u64, Perms>,
    next_region: u32,
}

impl FlatSnapshot {
    /// Number of pages referenced by the snapshot.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Content digest with the same fold as
    /// [`crate::MemSnapshot::content_digest`].
    pub fn content_digest(&self) -> u64 {
        let mut h = 0xfa1d_c0de_5eed_0001u64;
        for (pageno, page) in &self.pages {
            h = crate::snapshot::mix64(h ^ pageno.rotate_left(32) ^ page.content_hash());
        }
        h
    }
}

/// Flat-map reference implementation of the [`crate::SimMemory`] API.
#[derive(Clone, Default)]
pub struct FlatMemory {
    /// Mapped regions, sorted by start address.
    regions: Vec<Region>,
    /// Materialized pages by page number.
    pages: BTreeMap<u64, SharedPage>,
    /// Non-default permissions by page number (absent ⇒ [`Perms::RW`]).
    perms: BTreeMap<u64, Perms>,
    dirty: BTreeSet<u64>,
    next_region: u32,
    bytes_read: u64,
    bytes_written: u64,
}

impl FlatMemory {
    /// Creates an empty address space.
    pub fn new() -> Self {
        FlatMemory::default()
    }

    /// See [`crate::SimMemory::map`].
    pub fn map(&mut self, start: Addr, len: u64, name: &str) -> Result<RegionId, MemFault> {
        let end = start
            .0
            .checked_add(len)
            .filter(|&end| end <= VA_LIMIT)
            .ok_or(MemFault::BeyondAddressSpace { addr: start, len })?;
        if self.regions.iter().any(|r| r.overlaps(start, len)) {
            return Err(MemFault::MapOverlap { addr: start, len });
        }
        let id = RegionId(self.next_region);
        self.next_region += 1;
        let region = Region {
            id,
            start,
            end: Addr(end),
            name: name.to_owned(),
        };
        let pos = self.regions.partition_point(|r| r.start < region.start);
        self.regions.insert(pos, region);
        Ok(id)
    }

    /// See [`crate::SimMemory::map_guarded`].
    pub fn map_guarded(&mut self, start: Addr, len: u64, name: &str) -> Result<RegionId, MemFault> {
        let id = self.map(start, len, name)?;
        self.protect(start, len, Perms::GUARD)
            .expect("freshly mapped range must be protectable");
        Ok(id)
    }

    /// See [`crate::SimMemory::unmap`].
    pub fn unmap(&mut self, id: RegionId) -> Result<(), MemFault> {
        let pos = self
            .regions
            .iter()
            .position(|r| r.id == id)
            .ok_or(MemFault::NoSuchRegion)?;
        let region = self.regions.remove(pos);
        self.reclaim_range(region.start, region.end);
        Ok(())
    }

    /// See [`crate::SimMemory::grow_region`].
    pub fn grow_region(&mut self, id: RegionId, new_end: Addr) -> Result<(), MemFault> {
        let pos = self
            .regions
            .iter()
            .position(|r| r.id == id)
            .ok_or(MemFault::NoSuchRegion)?;
        if new_end < self.regions[pos].start {
            return Err(MemFault::NoSuchRegion);
        }
        if new_end.0 > VA_LIMIT {
            return Err(MemFault::BeyondAddressSpace {
                addr: self.regions[pos].start,
                len: new_end - self.regions[pos].start,
            });
        }
        if let Some(next) = self.regions.get(pos + 1) {
            if new_end.0 > next.start.0 {
                return Err(MemFault::MapOverlap {
                    addr: next.start,
                    len: new_end - next.start,
                });
            }
        }
        let old_end = self.regions[pos].end;
        self.regions[pos].end = new_end;
        if new_end < old_end {
            self.reclaim_range(new_end, old_end);
        }
        Ok(())
    }

    fn reclaim_range(&mut self, start: Addr, end: Addr) {
        if end <= start {
            return;
        }
        let first = start.page();
        let last = end.back(1).page();
        for pageno in first..=last {
            if pageno == first || pageno == last {
                let page_start = Addr(pageno * PAGE_SIZE as u64);
                if self
                    .regions
                    .iter()
                    .any(|r| r.overlaps(page_start, PAGE_SIZE as u64))
                {
                    continue;
                }
            }
            self.pages.remove(&pageno);
            self.perms.remove(&pageno);
            self.dirty.remove(&pageno);
        }
    }

    /// See [`crate::SimMemory::region_of`].
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        self.regions
            .iter()
            .find(|r| r.start <= addr && addr < r.end)
    }

    /// See [`crate::SimMemory::region`].
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// See [`crate::SimMemory::regions`].
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// See [`crate::SimMemory::protect`].
    pub fn protect(&mut self, addr: Addr, len: u64, perms: Perms) -> Result<(), MemFault> {
        let perms = perms & Perms::STORABLE;
        match self.region_of(addr) {
            Some(r) if r.contains_range(addr, len) => {}
            _ => return Err(MemFault::NoSuchRegion),
        }
        if len == 0 {
            return Ok(());
        }
        let first = addr.page();
        let last = addr.offset(len - 1).page();
        for pageno in first..=last {
            if perms == Perms::RW {
                self.perms.remove(&pageno);
            } else {
                self.perms.insert(pageno, perms);
            }
        }
        Ok(())
    }

    /// See [`crate::SimMemory::perms_of`].
    pub fn perms_of(&self, addr: Addr) -> Option<Perms> {
        self.region_of(addr)?;
        let pageno = addr.page();
        let stored = self.perms.get(&pageno).copied().unwrap_or(Perms::RW);
        let cow = self
            .pages
            .get(&pageno)
            .is_some_and(|page| Arc::strong_count(page) > 1);
        Some(if cow { stored | Perms::COW } else { stored })
    }

    fn page_perms(&self, pageno: u64) -> Perms {
        self.perms.get(&pageno).copied().unwrap_or(Perms::RW)
    }

    fn access_check(&self, addr: Addr, len: u64, kind: AccessKind) -> Result<(), MemFault> {
        match self.region_of(addr) {
            Some(r) if r.contains_range(addr, len) => {}
            _ => return Err(MemFault::AccessViolation { addr, kind, len }),
        }
        let first = addr.page();
        let last = if len == 0 {
            first
        } else {
            addr.offset(len - 1).page()
        };
        for pageno in first..=last {
            let perms = self.page_perms(pageno);
            if perms.traps() {
                return Err(MemFault::GuardTrap { addr, kind, len });
            }
            let allowed = match kind {
                AccessKind::Read => perms.contains(Perms::READ),
                AccessKind::Write => perms.contains(Perms::WRITE),
            };
            if !allowed {
                return Err(MemFault::AccessViolation { addr, kind, len });
            }
        }
        Ok(())
    }

    /// See [`crate::SimMemory::read`].
    pub fn read(&mut self, addr: Addr, buf: &mut [u8]) -> Result<(), MemFault> {
        self.access_check(addr, buf.len() as u64, AccessKind::Read)?;
        self.bytes_read += buf.len() as u64;
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let in_page = PAGE_SIZE - cursor.page_offset();
            let take = in_page.min(buf.len() - filled);
            match self.pages.get(&cursor.page()) {
                Some(page) => {
                    let off = cursor.page_offset();
                    buf[filled..filled + take].copy_from_slice(&page.bytes()[off..off + take]);
                }
                None => buf[filled..filled + take].fill(0),
            }
            filled += take;
            cursor = cursor.offset(take as u64);
        }
        Ok(())
    }

    /// See [`crate::SimMemory::write`].
    pub fn write(&mut self, addr: Addr, buf: &[u8]) -> Result<(), MemFault> {
        self.access_check(addr, buf.len() as u64, AccessKind::Write)?;
        self.bytes_written += buf.len() as u64;
        let mut cursor = addr;
        let mut taken = 0usize;
        while taken < buf.len() {
            let in_page = PAGE_SIZE - cursor.page_offset();
            let take = in_page.min(buf.len() - taken);
            let pageno = cursor.page();
            let page = match self.pages.entry(pageno) {
                Entry::Occupied(slot) => slot.into_mut(),
                Entry::Vacant(slot) => slot.insert(Arc::new(Page::zeroed())),
            };
            let off = cursor.page_offset();
            Arc::make_mut(page).bytes_mut()[off..off + take]
                .copy_from_slice(&buf[taken..taken + take]);
            self.dirty.insert(pageno);
            taken += take;
            cursor = cursor.offset(take as u64);
        }
        Ok(())
    }

    /// See [`crate::SimMemory::read_bytes`].
    pub fn read_bytes(&mut self, addr: Addr, len: u64) -> Result<Vec<u8>, MemFault> {
        let mut buf = vec![0u8; len as usize];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// See [`crate::SimMemory::read_u64`].
    pub fn read_u64(&mut self, addr: Addr) -> Result<u64, MemFault> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// See [`crate::SimMemory::write_u64`].
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// See [`crate::SimMemory::read_u8`].
    pub fn read_u8(&mut self, addr: Addr) -> Result<u8, MemFault> {
        let mut buf = [0u8; 1];
        self.read(addr, &mut buf)?;
        Ok(buf[0])
    }

    /// See [`crate::SimMemory::write_u8`].
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemFault> {
        self.write(addr, &[value])
    }

    /// See [`crate::SimMemory::fill`].
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) -> Result<(), MemFault> {
        const CHUNK: usize = PAGE_SIZE;
        let tmp = [byte; CHUNK];
        let mut cursor = addr;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(CHUNK as u64);
            self.write(cursor, &tmp[..take as usize])?;
            cursor = cursor.offset(take);
            remaining -= take;
        }
        Ok(())
    }

    /// See [`crate::SimMemory::copy`]. The paged implementation chunks
    /// through a page-sized buffer with memmove semantics; a full
    /// temporary is observationally identical and more obviously correct.
    pub fn copy(&mut self, dst: Addr, src: Addr, len: u64) -> Result<(), MemFault> {
        self.access_check(src, len, AccessKind::Read)?;
        self.access_check(dst, len, AccessKind::Write)?;
        let mut tmp = vec![0u8; len as usize];
        self.read(src, &mut tmp)?;
        self.write(dst, &tmp)?;
        Ok(())
    }

    /// See [`crate::SimMemory::snapshot`].
    pub fn snapshot(&self) -> FlatSnapshot {
        FlatSnapshot {
            regions: self.regions.clone(),
            pages: self.pages.clone(),
            perms: self.perms.clone(),
            next_region: self.next_region,
        }
    }

    /// See [`crate::SimMemory::restore`].
    pub fn restore(&mut self, snap: &FlatSnapshot) {
        self.regions.clone_from(&snap.regions);
        self.pages.clone_from(&snap.pages);
        self.perms.clone_from(&snap.perms);
        self.next_region = snap.next_region;
        self.dirty.clear();
    }

    /// See [`crate::SimMemory::take_dirty_pages`].
    pub fn take_dirty_pages(&mut self) -> usize {
        let n = self.dirty.len();
        self.dirty.clear();
        n
    }

    /// See [`crate::SimMemory::dirty_page_count`].
    pub fn dirty_page_count(&self) -> usize {
        self.dirty.len()
    }

    /// See [`crate::SimMemory::resident_pages`].
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// See [`crate::SimMemory::mapped_bytes`].
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.iter().map(Region::len).sum()
    }

    /// See [`crate::SimMemory::bytes_read`].
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// See [`crate::SimMemory::bytes_written`].
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_basic_roundtrip() {
        let mut mem = FlatMemory::new();
        let base = Addr(0x1000);
        mem.map(base, 1 << 16, "heap").unwrap();
        mem.write(base.offset(10), b"oracle").unwrap();
        assert_eq!(mem.read_bytes(base.offset(10), 6).unwrap(), b"oracle");
        assert_eq!(mem.resident_pages(), 1);
        let snap = mem.snapshot();
        mem.fill(base, 1 << 16, 0xff).unwrap();
        mem.restore(&snap);
        assert_eq!(mem.read_bytes(base.offset(10), 6).unwrap(), b"oracle");
        assert_eq!(mem.read_u8(base).unwrap(), 0);
    }

    #[test]
    fn oracle_guard_and_poison() {
        let mut mem = FlatMemory::new();
        let base = Addr(0x1000);
        mem.map(base, 1 << 16, "heap").unwrap();
        mem.protect(base, PAGE_SIZE as u64, Perms::GUARD).unwrap();
        assert!(matches!(mem.read_u8(base), Err(MemFault::GuardTrap { .. })));
        mem.protect(base, PAGE_SIZE as u64, Perms::RW).unwrap();
        assert!(mem.read_u8(base).is_ok());
    }

    #[test]
    fn oracle_reports_cow_while_snapshot_lives() {
        let mut mem = FlatMemory::new();
        let base = Addr(0x1000);
        mem.map(base, 1 << 16, "heap").unwrap();
        mem.write_u8(base, 1).unwrap();
        assert_eq!(mem.perms_of(base), Some(Perms::RW));
        let snap = mem.snapshot();
        assert_eq!(mem.perms_of(base), Some(Perms::RW | Perms::COW));
        mem.write_u8(base, 2).unwrap();
        assert_eq!(mem.perms_of(base), Some(Perms::RW));
        drop(snap);
    }
}
