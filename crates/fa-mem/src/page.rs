//! Fixed-size memory pages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size of a simulated page in bytes, matching the x86 page size the paper's
/// Flashback-based checkpointing operates on.
pub const PAGE_SIZE: usize = 4096;

/// Sentinel meaning "no content hash cached" — real hashes are forced
/// nonzero so the sentinel is unambiguous.
const HASH_UNCOMPUTED: u64 = 0;

/// One 4 KiB page of simulated memory.
///
/// Pages are heap-allocated and shared between the live address space and
/// outstanding snapshots via [`Arc`]; the first write after a snapshot
/// replicates the page (`Arc::make_mut`), which is exactly the cost model of
/// fork-based copy-on-write checkpointing.
///
/// Each page lazily caches a hash of its contents so that snapshot digests
/// are incremental: a checkpoint only rehashes the pages written since the
/// previous one (every write path goes through [`Page::bytes_mut`], which
/// invalidates the cache), while clean pages reuse the value computed for an
/// earlier digest — shared across `Arc` clones.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
    /// Cached content hash; [`HASH_UNCOMPUTED`] until first demanded and
    /// after any mutable borrow of the data.
    hash: AtomicU64,
}

impl Page {
    /// Returns a fresh zero-filled page, like an anonymous mapping from the
    /// kernel.
    pub fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
            hash: AtomicU64::new(HASH_UNCOMPUTED),
        }
    }

    /// Returns the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Returns the page contents mutably, invalidating the cached content
    /// hash.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        *self.hash.get_mut() = HASH_UNCOMPUTED;
        &mut self.data
    }

    /// Returns a hash of the page contents, computing and caching it on
    /// first demand. The result is never [`HASH_UNCOMPUTED`].
    pub fn content_hash(&self) -> u64 {
        let cached = self.hash.load(Ordering::Relaxed);
        if cached != HASH_UNCOMPUTED {
            return cached;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for chunk in self.data.chunks_exact(8) {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = (h ^ word).wrapping_mul(0x0000_0100_0000_01b3);
        }
        if h == HASH_UNCOMPUTED {
            h = 0x9e37_79b9_7f4a_7c15;
        }
        self.hash.store(h, Ordering::Relaxed);
        h
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: self.data.clone(),
            // The copy has identical contents, so the cached hash (if any)
            // carries over; `bytes_mut` on either copy re-invalidates.
            hash: AtomicU64::new(self.hash.load(Ordering::Relaxed)),
        }
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

/// A shared, copy-on-write reference to a page.
pub type SharedPage = Arc<Page>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_pages_are_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn cow_via_arc_make_mut() {
        let mut a: SharedPage = Arc::new(Page::zeroed());
        let b = Arc::clone(&a);
        Arc::make_mut(&mut a).bytes_mut()[0] = 0xff;
        assert_eq!(a.bytes()[0], 0xff);
        assert_eq!(b.bytes()[0], 0, "snapshot page must be unaffected");
    }

    #[test]
    fn content_hash_tracks_contents() {
        let mut p = Page::zeroed();
        let zero_hash = p.content_hash();
        assert_ne!(zero_hash, 0);
        assert_eq!(p.content_hash(), zero_hash, "cached value is stable");
        p.bytes_mut()[100] = 7;
        let changed = p.content_hash();
        assert_ne!(changed, zero_hash);
        p.bytes_mut()[100] = 0;
        assert_eq!(p.content_hash(), zero_hash, "same bytes, same hash");
    }

    #[test]
    fn clone_preserves_cached_hash_and_cow_invalidates() {
        let mut a: SharedPage = Arc::new(Page::zeroed());
        let h = a.content_hash();
        let b = Arc::clone(&a);
        // CoW write: the clone made by make_mut starts from the cached
        // hash, but bytes_mut immediately invalidates it.
        Arc::make_mut(&mut a).bytes_mut()[0] = 1;
        assert_ne!(a.content_hash(), h);
        assert_eq!(b.content_hash(), h, "shared original keeps its hash");
    }
}
