//! Fixed-size memory pages.

use std::sync::Arc;

/// Size of a simulated page in bytes, matching the x86 page size the paper's
/// Flashback-based checkpointing operates on.
pub const PAGE_SIZE: usize = 4096;

/// One 4 KiB page of simulated memory.
///
/// Pages are heap-allocated and shared between the live address space and
/// outstanding snapshots via [`Arc`]; the first write after a snapshot
/// replicates the page (`Arc::make_mut`), which is exactly the cost model of
/// fork-based copy-on-write checkpointing.
#[derive(Clone)]
pub struct Page(Box<[u8; PAGE_SIZE]>);

impl Page {
    /// Returns a fresh zero-filled page, like an anonymous mapping from the
    /// kernel.
    pub fn zeroed() -> Self {
        Page(Box::new([0u8; PAGE_SIZE]))
    }

    /// Returns the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.0
    }

    /// Returns the page contents mutably.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.0
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

/// A shared, copy-on-write reference to a page.
pub type SharedPage = Arc<Page>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_pages_are_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn cow_via_arc_make_mut() {
        let mut a: SharedPage = Arc::new(Page::zeroed());
        let b = Arc::clone(&a);
        Arc::make_mut(&mut a).bytes_mut()[0] = 0xff;
        assert_eq!(a.bytes()[0], 0xff);
        assert_eq!(b.bytes()[0], 0, "snapshot page must be unaffected");
    }
}
